#include "fleet/runner.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "common/meminfo.hpp"
#include "fleet/scheduler.hpp"
#include "obs/export.hpp"

namespace envmon::fleet {
inline namespace v2 {

namespace {

// splitmix64: decorrelates per-node seeds from the fleet seed so that
// neighbouring ranks don't draw neighbouring RNG streams.
std::uint64_t mix_seed(std::uint64_t fleet_seed, int rank) {
  std::uint64_t z =
      fleet_seed + std::uint64_t{0x9e3779b97f4a7c15} * (static_cast<std::uint64_t>(rank) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Auto shard count: over-partition 4x so a fast worker always finds a
// laggard to steal; one shard when single-threaded (no one to steal).
int auto_shards(int threads, int nodes) {
  if (threads <= 1) return 1;
  return std::min(nodes, threads * 4);
}

}  // namespace

FleetRunner::FleetRunner() = default;
FleetRunner::~FleetRunner() = default;

Status FleetRunner::configure(FleetConfig config) {
  if (state_ != State::kIdle) {
    return Status::failed_precondition("fleet runner already configured");
  }
  if (config.nodes <= 0) {
    return Status::invalid_argument("fleet needs at least one node");
  }
  if (config.threads <= 0) {
    return Status::invalid_argument("fleet needs at least one worker thread");
  }
  if (config.shards < 0) {
    return Status::invalid_argument("shard count cannot be negative");
  }
  if (config.epoch_window == 0) {
    return Status::invalid_argument("epoch window must be at least 1");
  }
  if (config.epoch.ns() <= 0) {
    return Status::invalid_argument("epoch must be positive");
  }
  if (config.horizon.ns() <= 0) {
    return Status::invalid_argument("horizon must be positive");
  }
  if (config.capabilities.empty()) {
    return Status::invalid_argument("fleet nodes need at least one capability");
  }
  // Baseline for bytes_per_node: everything the fleet allocates from here
  // on (nodes, telemetry, database, staged batches) is the run's growth.
  rss_before_bytes_ = common::current_rss_bytes();

  config_ = std::move(config);
  config_.threads = std::min(config_.threads, config_.nodes);
  if (config_.shards == 0) config_.shards = auto_shards(config_.threads, config_.nodes);
  config_.shards = std::clamp(config_.shards, config_.threads, config_.nodes);

  if (config_.workload == nullptr) {
    default_workload_ = workloads::mmps({.total = config_.horizon});
    config_.workload = &default_workload_;
  }

  defaults_.capabilities = config_.capabilities;
  defaults_.polling_interval = config_.polling_interval;
  defaults_.degradation = config_.degradation;
  defaults_.workload = config_.workload;
  defaults_.ingest = config_.ingest;
  // Size each node's sample spool once, up front.  An over-estimate
  // costs nothing resident (reserved pages are untouched until written);
  // under-estimates fall back to geometric growth.
  {
    const double polling_s =
        config_.polling_interval.value_or(sim::Duration::seconds(1)).to_seconds();
    const double polls =
        polling_s > 0.0 ? config_.horizon.to_seconds() / polling_s + 2.0 : 2.0;
    constexpr double kSamplesPerPollPerBackend = 24.0;
    constexpr double kBytesPerRow = 40.0;
    defaults_.spool_reserve_bytes = static_cast<std::size_t>(
        polls * kSamplesPerPollPerBackend * kBytesPerRow *
        static_cast<double>(config_.capabilities.size()));
  }

  world_ = std::make_unique<smpi::World>(config_.nodes);
  db_ = std::make_unique<tsdb::EnvDatabase>(config_.database);

  if (config_.telemetry) {
    telemetry_ = std::make_unique<obs::FleetTelemetry>(config_.nodes);
    recorders_.reserve(static_cast<std::size_t>(config_.nodes));
    for (int rank = 0; rank < config_.nodes; ++rank) {
      recorders_.push_back(std::make_unique<obs::FlightRecorder>(config_.recorder_capacity));
    }
    fleet_recorder_ = std::make_unique<obs::FlightRecorder>(config_.recorder_capacity);
  }
  if (config_.failure_detector) {
    detector_ = std::make_unique<FailureDetector>(config_.nodes, config_.detector,
                                                  fleet_recorder_.get());
  }

  // Contiguous shards: shard s owns ranks [bounds[s], bounds[s+1]).
  shard_bounds_.assign(static_cast<std::size_t>(config_.shards) + 1, 0);
  const int base = config_.nodes / config_.shards;
  const int extra = config_.nodes % config_.shards;
  for (int s = 0; s < config_.shards; ++s) {
    shard_bounds_[static_cast<std::size_t>(s) + 1] =
        shard_bounds_[static_cast<std::size_t>(s)] + base + (s < extra ? 1 : 0);
  }

  // Nodes build lazily on the worker that first advances their shard;
  // node 0 builds eagerly so configuration errors (bad capability,
  // substrate init failure) surface here, not mid-run on a worker.
  nodes_.resize(static_cast<std::size_t>(config_.nodes));
  if (const Status s = build_node(0); !s.is_ok()) return s;

  if (obs::enabled()) {
    auto& registry = obs::default_registry();
    epoch_seconds_metric_ = &registry.histogram(
        "envmon_fleet_epoch_seconds", "Wall time between fleet epoch merges",
        obs::Histogram::exponential_bounds(1e-5, 4.0, 12));
    epochs_metric_ = &registry.counter("envmon_fleet_epochs_total", "Fleet epochs merged");
    staged_metric_ = &registry.counter("envmon_fleet_records_staged_total",
                                       "Records staged at the epoch merge point");
    self_rows_metric_ =
        &registry.counter("envmon_fleet_rollup_self_rows_total",
                          "Self-scrape rows inserted under envmon.self.*");
    steals_metric_ = &registry.counter(
        "envmon_fleet_shard_steals_total",
        "Shard claims that crossed worker homes (work stealing)");
    window_wait_metric_ =
        &registry.gauge("envmon_fleet_window_wait_seconds",
                        "Cumulative worker wall time parked on the epoch-skew window");
    bytes_per_node_metric_ =
        &registry.gauge("envmon_fleet_bytes_per_node",
                        "Resident-set growth per simulated node over the run");
    if (detector_ != nullptr) {
      nodes_alive_metric_ =
          &registry.gauge("envmon_fleet_nodes_alive", "Nodes the failure detector holds Alive");
      nodes_suspect_metric_ = &registry.gauge("envmon_fleet_nodes_suspect",
                                              "Nodes the failure detector holds Suspect");
      nodes_dead_metric_ =
          &registry.gauge("envmon_fleet_nodes_dead", "Nodes the failure detector holds Dead");
      liveness_transitions_metric_ =
          &registry.counter("envmon_fleet_liveness_transitions_total",
                            "Node liveness state transitions");
    }
  }

  state_ = State::kConfigured;
  return Status::ok();
}

Status FleetRunner::build_node(int rank) {
  std::unique_ptr<FleetNode>& slot = nodes_[static_cast<std::size_t>(rank)];
  if (slot != nullptr) return Status::ok();
  NodeOptions options;
  options.rank = rank;
  options.seed = mix_seed(config_.seed, rank);
  options.defaults = &defaults_;
  if (telemetry_ != nullptr) {
    options.registry = &telemetry_->node_registry(rank);
    options.recorder = recorders_[static_cast<std::size_t>(rank)].get();
  }
  auto node = std::make_unique<FleetNode>(*world_, std::move(options));
  if (const Status s = node->configure(); !s.is_ok()) {
    return Status(s.code(), "node " + std::to_string(rank) + ": " + std::string(s.message()));
  }
  if (config_.fault_script) config_.fault_script(node->injector(), rank);
  slot = std::move(node);
  return Status::ok();
}

Status FleetRunner::run() {
  if (state_ != State::kConfigured) {
    return Status::failed_precondition(state_ == State::kRan ? "fleet runner already ran"
                                        : "fleet runner not configured");
  }
  const auto t0 = std::chrono::steady_clock::now();

  const int threads = config_.threads;
  const int shards = config_.shards;
  const std::uint64_t epoch_count = static_cast<std::uint64_t>(
      (config_.horizon.ns() + config_.epoch.ns() - 1) / config_.epoch.ns());
  const std::uint64_t ring = config_.epoch_window + 1;

  IngestQueue queue(config_.ingest_queue_capacity);
  IngestWorker ingest(*db_, queue);
  ingest.attach_pool(&pool_);
  if (fleet_recorder_ != nullptr) {
    queue.attach_recorder(fleet_recorder_.get(), config_.ingest_deadline_seconds);
    ingest.attach_recorder(fleet_recorder_.get());
  }
  std::thread ingest_thread([&ingest] { ingest.run(); });

  // One deposit slot per (shard, epoch % ring).  A slot is written under
  // exclusive shard ownership and read by the single merger; the skew
  // window guarantees an unmerged slot is never rewritten (epochs that
  // share a slot are `ring` apart, but a shard can only be `window`
  // epochs past the oldest unmerged one).
  struct ShardDeposit {
    std::vector<NodeBatch> nodes;        // staged records, node order
    std::vector<obs::Snapshot> snaps;    // telemetry capture per rank
    std::vector<std::uint8_t> beats;     // heartbeat per rank
    std::size_t rows = 0;
    std::uint64_t epoch = 0;             // last epoch deposited here
  };
  std::vector<std::vector<ShardDeposit>> deposits(
      static_cast<std::size_t>(shards), std::vector<ShardDeposit>(ring));
  // Last epoch complete_epoch() finished with, for snapshot recycling:
  // slots holding epochs <= this are no longer read by any merger.
  std::atomic<std::uint64_t> last_merged{0};
  std::vector<double> shard_capture_seconds(static_cast<std::size_t>(shards), 0.0);

  const sim::SimTime start = sim::SimTime::zero();
  auto epoch_boundary = [&](std::uint64_t epoch) {
    return epoch == epoch_count
               ? start + config_.horizon
               : start + config_.epoch * static_cast<std::int64_t>(epoch);
  };

  // Worker side: advance one shard exactly one epoch and deposit the
  // result.  Everything touched is shard-private (the scheduler grants
  // exclusive ownership) or a one-lock pool round trip.
  auto advance_shard = [&](int shard, std::uint64_t epoch) -> Status {
    const int begin = shard_bounds_[static_cast<std::size_t>(shard)];
    const int end = shard_bounds_[static_cast<std::size_t>(shard) + 1];
    ShardDeposit& dep = deposits[static_cast<std::size_t>(shard)][epoch % ring];
    dep.nodes.clear();
    dep.rows = 0;
    const sim::SimTime target = epoch_boundary(epoch);

    std::vector<std::vector<tsdb::Record>> scratch;
    scratch.reserve(static_cast<std::size_t>(end - begin));
    pool_.take(scratch, static_cast<std::size_t>(end - begin));

    for (int rank = begin; rank < end; ++rank) {
      if (nodes_[static_cast<std::size_t>(rank)] == nullptr) {
        if (const Status s = build_node(rank); !s.is_ok()) return s;
      }
      FleetNode& node = *nodes_[static_cast<std::size_t>(rank)];
      node.advance_to(target);
      NodeBatch batch;
      batch.node = rank;
      if (!scratch.empty()) {
        batch.records = std::move(scratch.back());
        scratch.pop_back();
      }
      node.drain(batch.records);
      if (batch.records.empty()) {
        scratch.push_back(std::move(batch.records));  // reuse for the next rank
      } else {
        dep.rows += batch.records.size();
        dep.nodes.push_back(std::move(batch));
      }
    }
    if (!scratch.empty()) pool_.put(std::move(scratch));

    if (telemetry_ != nullptr) {
      const auto capture_began = std::chrono::steady_clock::now();
      if (dep.snaps.empty()) {
        // Cold slot: adopt the warm snapshots (series strings, vector
        // capacity) of an already-merged sibling slot instead of
        // rebuilding them.  This bounds cold captures per shard by the
        // run's *actual* epoch skew — 1 in a sequential run — rather
        // than by the window.  Safe: this worker owns every slot of the
        // shard, and the merger never rereads epochs <= last_merged
        // (the release store below happens after its last read).
        const std::uint64_t merged = last_merged.load(std::memory_order_acquire);
        for (ShardDeposit& other : deposits[static_cast<std::size_t>(shard)]) {
          if (&other != &dep && !other.snaps.empty() && other.epoch <= merged) {
            dep.snaps.swap(other.snaps);
            break;
          }
        }
      }
      dep.snaps.resize(static_cast<std::size_t>(end - begin));
      for (int rank = begin; rank < end; ++rank) {
        telemetry_->capture_into(rank, dep.snaps[static_cast<std::size_t>(rank - begin)]);
      }
      shard_capture_seconds[static_cast<std::size_t>(shard)] += seconds_since(capture_began);
    }
    if (detector_ != nullptr) {
      dep.beats.resize(static_cast<std::size_t>(end - begin));
      for (int rank = begin; rank < end; ++rank) {
        dep.beats[static_cast<std::size_t>(rank - begin)] =
            nodes_[static_cast<std::size_t>(rank)]->heartbeat() ? 1 : 0;
      }
    }
    dep.epoch = epoch;
    return Status::ok();
  };

  // Merge side: the scheduler guarantees complete() runs exactly once per
  // epoch, in order, never concurrently — so this state needs no locking
  // (sequential calls are synchronized through the scheduler mutex).
  std::size_t staged_rows = 0;
  std::size_t self_rows = 0;
  double fold_seconds = 0.0;
  std::uint64_t transitions_seen = 0;
  auto epoch_began = std::chrono::steady_clock::now();
  std::vector<const obs::Snapshot*> snapshot_ptrs(
      telemetry_ != nullptr ? static_cast<std::size_t>(config_.nodes) : 0, nullptr);
  std::vector<std::uint8_t> heartbeats(
      detector_ != nullptr ? static_cast<std::size_t>(config_.nodes) : 0, 0);

  auto complete_epoch = [&](std::uint64_t epoch) -> Status {
    const sim::SimTime boundary = epoch_boundary(epoch);
    EpochBatch batch;
    batch.epoch = epoch - 1;
    batch.boundary = boundary;
    batch.nodes.reserve(nodes_.size() + 1);
    for (int s = 0; s < shards; ++s) {
      ShardDeposit& dep = deposits[static_cast<std::size_t>(s)][epoch % ring];
      batch.rows += dep.rows;
      for (NodeBatch& node : dep.nodes) batch.nodes.push_back(std::move(node));
      dep.nodes.clear();
      if (telemetry_ != nullptr) {
        const int begin = shard_bounds_[static_cast<std::size_t>(s)];
        const int end = shard_bounds_[static_cast<std::size_t>(s) + 1];
        for (int rank = begin; rank < end; ++rank) {
          snapshot_ptrs[static_cast<std::size_t>(rank)] =
              &dep.snaps[static_cast<std::size_t>(rank - begin)];
        }
      }
      if (detector_ != nullptr) {
        const int begin = shard_bounds_[static_cast<std::size_t>(s)];
        for (std::size_t i = 0; i < dep.beats.size(); ++i) {
          heartbeats[static_cast<std::size_t>(begin) + i] = dep.beats[i];
        }
      }
    }
    // Fold the deposited node snapshots up the tree and append the fleet
    // rollup as one more "node" — index `nodes` places its rows after
    // every real rank in the stable sort's tie order.
    if (telemetry_ != nullptr) {
      const auto fold_began = std::chrono::steady_clock::now();
      telemetry_->fold(snapshot_ptrs);
      if (config_.self_scrape) {
        NodeBatch self;
        self.node = config_.nodes;
        self.records = self_scrape_records(telemetry_->fleet_rollup(), boundary);
        self_rows += self.records.size();
        if (self_rows_metric_ != nullptr) self_rows_metric_->inc(self.records.size());
        batch.rows += self.records.size();
        batch.nodes.push_back(std::move(self));
      }
      fold_seconds += seconds_since(fold_began);
    }
    if (detector_ != nullptr) {
      detector_->observe_epoch(boundary, heartbeats);
      const FailureDetector::Counts& counts = detector_->counts();
      if (nodes_alive_metric_ != nullptr) {
        nodes_alive_metric_->set(static_cast<double>(counts.alive));
        nodes_suspect_metric_->set(static_cast<double>(counts.suspect));
        nodes_dead_metric_->set(static_cast<double>(counts.dead));
        liveness_transitions_metric_->inc(detector_->transitions() - transitions_seen);
      }
      transitions_seen = detector_->transitions();
    }
    staged_rows += batch.rows;
    if (staged_metric_ != nullptr) staged_metric_->inc(batch.rows);
    if (batch.rows > 0) queue.push(std::move(batch));
    if (epochs_metric_ != nullptr) epochs_metric_->inc();
    if (epoch_seconds_metric_ != nullptr) {
      epoch_seconds_metric_->observe(seconds_since(epoch_began));
    }
    epoch_began = std::chrono::steady_clock::now();
    last_merged.store(epoch, std::memory_order_release);
    return Status::ok();
  };

  // A shard that deposited its last epoch finalizes immediately — file
  // rendering runs shard-parallel while other shards still simulate.
  auto finalize_shard = [&](int shard) -> Status {
    const int begin = shard_bounds_[static_cast<std::size_t>(shard)];
    const int end = shard_bounds_[static_cast<std::size_t>(shard) + 1];
    for (int rank = begin; rank < end; ++rank) {
      const Status s = nodes_[static_cast<std::size_t>(rank)]->finalize(
          config_.filesystem, config_.output != nullptr);
      if (!s.is_ok()) return s;
    }
    return Status::ok();
  };

  ShardScheduler::Options scheduler_options;
  scheduler_options.shards = shards;
  scheduler_options.workers = threads;
  scheduler_options.epochs = epoch_count;
  scheduler_options.window = config_.epoch_window;
  ShardScheduler scheduler(scheduler_options,
                           {advance_shard, complete_epoch, finalize_shard});
  const Status scheduled = scheduler.run();

  // Sample the footprint while everything the run allocated is still
  // live: nodes, telemetry tree, staged deposits, and the database.
  report_.rss_bytes = common::current_rss_bytes();
  report_.peak_rss_bytes = common::peak_rss_bytes();

  queue.close();
  ingest_thread.join();
  if (!scheduled.is_ok()) return scheduled;

  // Adopt the final epoch's deposited captures as the telemetry tree's
  // per-node slots: node_capture() then reads exactly what the last fold
  // read, at zero copy cost.
  if (telemetry_ != nullptr) {
    for (int s = 0; s < shards; ++s) {
      ShardDeposit& dep = deposits[static_cast<std::size_t>(s)][epoch_count % ring];
      const int begin = shard_bounds_[static_cast<std::size_t>(s)];
      for (std::size_t i = 0; i < dep.snaps.size(); ++i) {
        telemetry_->store_capture(begin + static_cast<int>(i), std::move(dep.snaps[i]));
      }
    }
  }

  // Deterministic output: files land in rank order regardless of which
  // shard rendered them first.  Each file is released right after its
  // write, so the rendered-text peak drains across the loop instead of
  // holding the whole fleet's CSV at once.
  if (config_.output != nullptr) {
    for (const std::unique_ptr<FleetNode>& node : nodes_) {
      const Status s = config_.output->write(node->file_name(), node->file_content());
      if (!s.is_ok()) return s;
      node->release_file_content();
    }
  }

  report_.nodes = config_.nodes;
  report_.threads = threads;
  report_.shards = shards;
  report_.epochs = epoch_count;
  for (const std::unique_ptr<FleetNode>& node : nodes_) {
    const moneq::NodeProfiler& profiler = node->profiler();
    const moneq::OverheadReport overhead = profiler.overhead();
    report_.polls += overhead.polls;
    report_.samples += profiler.total_samples();
    report_.dropped_samples += profiler.dropped_samples();
    report_.degraded_polls += profiler.degraded_polls();
    report_.gap_markers += profiler.gaps().size();
    report_.initialize_total += overhead.initialize;
    report_.collection_total += overhead.collection;
    report_.finalize_total += overhead.finalize;
  }

  const ShardScheduler::Stats& sched_stats = scheduler.stats();
  report_.shard_steals = sched_stats.steals;
  report_.window_wait_seconds = sched_stats.window_wait_seconds;
  if (steals_metric_ != nullptr) steals_metric_->inc(sched_stats.steals);
  if (window_wait_metric_ != nullptr) window_wait_metric_->set(sched_stats.window_wait_seconds);

  if (detector_ != nullptr) {
    const FailureDetector::Counts& counts = detector_->counts();
    report_.nodes_unknown = counts.unknown;
    report_.nodes_alive = counts.alive;
    report_.nodes_suspect = counts.suspect;
    report_.nodes_dead = counts.dead;
    report_.liveness_transitions = detector_->transitions();
  }

  if (report_.rss_bytes > rss_before_bytes_ && config_.nodes > 0) {
    report_.bytes_per_node = static_cast<double>(report_.rss_bytes - rss_before_bytes_) /
                             static_cast<double>(config_.nodes);
  }
  if (bytes_per_node_metric_ != nullptr) bytes_per_node_metric_->set(report_.bytes_per_node);

  // Post-mortem triggers, most diagnostic first: the earliest quarantine
  // transition on the merged deterministic timeline, else the first node
  // the detector declared Dead, else a (wall-clock) ingest deadline miss.
  // The dump itself contains only deterministic events either way.
  if (fleet_recorder_ != nullptr) {
    std::vector<const obs::FlightRecorder*> all;
    all.reserve(recorders_.size() + 1);
    for (const auto& r : recorders_) all.push_back(r.get());
    all.push_back(fleet_recorder_.get());
    std::string trigger;
    for (const obs::RecorderEvent& event : obs::merge_events(all)) {
      if (event.name == "backend.health" &&
          event.detail.find("-> quarantined") != std::string::npos) {
        trigger = "backend quarantined: node " + std::to_string(event.node) + ", " +
                  event.detail;
        break;
      }
      if (trigger.empty() && event.name == "liveness.transition" &&
          event.detail.find("-> dead") != std::string::npos) {
        trigger =
            "node declared dead: node " + std::to_string(event.node) + ", " + event.detail;
        // Keep scanning: a quarantine anywhere on the timeline outranks
        // a dead declaration (it names the failing backend).
      }
    }
    if (trigger.empty() && queue.deadline_missed()) {
      trigger = "ingest deadline missed";
    }
    if (!trigger.empty()) {
      post_mortem_ = obs::dump_post_mortem(trigger, all);
      report_.post_mortem_triggered = true;
      report_.post_mortem_trigger = std::move(trigger);
      if (config_.output != nullptr && !config_.post_mortem_path.empty()) {
        const Status s = config_.output->write(config_.post_mortem_path, post_mortem_);
        if (!s.is_ok()) return s;
      }
    }
    for (const auto& r : recorders_) {
      report_.recorder_events += r->recorded();
      report_.recorder_dropped += r->dropped();
    }
    report_.recorder_events += fleet_recorder_->recorded();
    report_.recorder_dropped += fleet_recorder_->dropped();
  }

  report_.telemetry_seconds = fold_seconds;
  for (const double s : shard_capture_seconds) report_.telemetry_seconds += s;
  report_.self_scrape_rows = self_rows;

  const IngestWorker::Stats& ingest_stats = ingest.stats();
  report_.records_staged = staged_rows;
  report_.records_applied = ingest_stats.accepted;
  report_.rejected_out_of_order = ingest_stats.rejected_out_of_order;
  report_.rejected_rate_limited = ingest_stats.rejected_rate_limited;
  report_.rejected_unavailable = ingest_stats.rejected_unavailable;
  report_.database_rows = db_->size();
  report_.ingest_stalls = queue.stalls();
  report_.ingest_stall_seconds = queue.stall_seconds();
  report_.wall_seconds = seconds_since(t0);
  if (report_.wall_seconds > 0.0) {
    report_.node_seconds_per_second =
        config_.horizon.to_seconds() * static_cast<double>(config_.nodes) / report_.wall_seconds;
  }

  state_ = State::kRan;
  return Status::ok();
}

Result<FleetReport> FleetRunner::report() const {
  if (state_ != State::kRan) {
    return Status::failed_precondition("fleet has not run");
  }
  return report_;
}

tsdb::EnvDatabase& FleetRunner::database() { return *db_; }

namespace {

// Folds a pre-rendered label body into a metric-name suffix: quotes are
// dropped, '=' and ',' become '.', everything else passes through —
// readable, collision-free for the label alphabets we emit, and stable
// under CSV export.
std::string self_metric_name(const std::string& name, const std::string& labels) {
  std::string out(tsdb::kSelfMetricPrefix);
  out += name;
  if (!labels.empty()) {
    out += '.';
    for (const char c : labels) {
      if (c == '"') continue;
      out += (c == '=' || c == ',') ? '.' : c;
    }
  }
  return out;
}

}  // namespace

std::vector<tsdb::Record> self_scrape_records(const obs::Snapshot& snapshot, sim::SimTime t) {
  const tsdb::Location location = tsdb::rack_location(kSelfTelemetryRack);
  std::vector<tsdb::Record> records;
  records.reserve(snapshot.counters.size() + snapshot.gauges.size() +
                  2 * snapshot.histograms.size());
  for (const auto& c : snapshot.counters) {
    records.push_back(
        {t, location, self_metric_name(c.name, c.labels), static_cast<double>(c.value)});
  }
  for (const auto& g : snapshot.gauges) {
    records.push_back({t, location, self_metric_name(g.name, g.labels), g.value});
  }
  for (const auto& h : snapshot.histograms) {
    records.push_back({t, location, self_metric_name(h.name + ".count", h.labels),
                       static_cast<double>(h.count)});
    records.push_back({t, location, self_metric_name(h.name + ".sum", h.labels), h.sum});
  }
  return records;
}

}  // namespace v2
}  // namespace envmon::fleet
