#include "fleet/runner.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <string>
#include <thread>

#include "obs/export.hpp"

namespace envmon::fleet {
inline namespace v2 {

namespace {

// splitmix64: decorrelates per-node seeds from the fleet seed so that
// neighbouring ranks don't draw neighbouring RNG streams.
std::uint64_t mix_seed(std::uint64_t fleet_seed, int rank) {
  std::uint64_t z =
      fleet_seed + std::uint64_t{0x9e3779b97f4a7c15} * (static_cast<std::uint64_t>(rank) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Barrier waits shorter than this are normal rendezvous jitter, not
// load imbalance; only longer parks count as stalls.
constexpr double kStallFloorSeconds = 1e-3;

}  // namespace

FleetRunner::FleetRunner() = default;
FleetRunner::~FleetRunner() = default;

Status FleetRunner::configure(FleetConfig config) {
  if (state_ != State::kIdle) {
    return Status(StatusCode::kFailedPrecondition, "fleet runner already configured");
  }
  if (config.nodes <= 0) {
    return Status(StatusCode::kInvalidArgument, "fleet needs at least one node");
  }
  if (config.threads <= 0) {
    return Status(StatusCode::kInvalidArgument, "fleet needs at least one worker thread");
  }
  if (config.epoch.ns() <= 0) {
    return Status(StatusCode::kInvalidArgument, "epoch must be positive");
  }
  if (config.horizon.ns() <= 0) {
    return Status(StatusCode::kInvalidArgument, "horizon must be positive");
  }
  if (config.capabilities.empty()) {
    return Status(StatusCode::kInvalidArgument, "fleet nodes need at least one capability");
  }
  config_ = std::move(config);
  config_.threads = std::min(config_.threads, config_.nodes);

  if (config_.workload == nullptr) {
    default_workload_ = workloads::mmps({.total = config_.horizon});
    config_.workload = &default_workload_;
  }

  world_ = std::make_unique<smpi::World>(config_.nodes);
  db_ = std::make_unique<tsdb::EnvDatabase>(config_.database);

  if (config_.telemetry) {
    telemetry_ = std::make_unique<obs::FleetTelemetry>(config_.nodes);
    recorders_.reserve(static_cast<std::size_t>(config_.nodes));
    for (int rank = 0; rank < config_.nodes; ++rank) {
      recorders_.push_back(std::make_unique<obs::FlightRecorder>(config_.recorder_capacity));
    }
    fleet_recorder_ = std::make_unique<obs::FlightRecorder>(config_.recorder_capacity);
  }

  nodes_.reserve(static_cast<std::size_t>(config_.nodes));
  for (int rank = 0; rank < config_.nodes; ++rank) {
    NodeOptions options;
    options.rank = rank;
    options.capabilities = config_.capabilities;
    options.polling_interval = config_.polling_interval;
    options.degradation = config_.degradation;
    options.seed = mix_seed(config_.seed, rank);
    options.workload = config_.workload;
    options.ingest = config_.ingest;
    if (telemetry_ != nullptr) {
      options.registry = &telemetry_->node_registry(rank);
      options.recorder = recorders_[static_cast<std::size_t>(rank)].get();
    }
    auto node = std::make_unique<FleetNode>(*world_, std::move(options));
    if (const Status s = node->configure(); !s.is_ok()) {
      return Status(s.code(), "node " + std::to_string(rank) + ": " + std::string(s.message()));
    }
    if (config_.fault_script) config_.fault_script(node->injector(), rank);
    nodes_.push_back(std::move(node));
  }

  if (obs::enabled()) {
    auto& registry = obs::default_registry();
    epoch_seconds_metric_ = &registry.histogram(
        "envmon_fleet_epoch_seconds", "Wall time per fleet lockstep epoch",
        obs::Histogram::exponential_bounds(1e-5, 4.0, 12));
    epochs_metric_ =
        &registry.counter("envmon_fleet_epochs_total", "Lockstep epochs completed");
    staged_metric_ = &registry.counter("envmon_fleet_records_staged_total",
                                       "Records staged at the epoch barrier");
    self_rows_metric_ =
        &registry.counter("envmon_fleet_rollup_self_rows_total",
                          "Self-scrape rows inserted under envmon.self.*");
    for (int shard = 0; shard < config_.threads; ++shard) {
      const std::string labels = obs::label("shard", std::to_string(shard));
      shard_stall_metrics_.push_back(&registry.counter(
          "envmon_fleet_shard_stalls_total",
          "Epoch-barrier parks longer than the rendezvous floor", labels));
      shard_stall_seconds_metrics_.push_back(&registry.gauge(
          "envmon_fleet_shard_stall_seconds", "Cumulative barrier wait per shard", labels));
    }
  }

  state_ = State::kConfigured;
  return Status::ok();
}

Status FleetRunner::run() {
  if (state_ != State::kConfigured) {
    return Status(StatusCode::kFailedPrecondition,
                  state_ == State::kRan ? "fleet runner already ran"
                                        : "fleet runner not configured");
  }
  const auto t0 = std::chrono::steady_clock::now();

  const int threads = config_.threads;
  const std::uint64_t epoch_count = static_cast<std::uint64_t>(
      (config_.horizon.ns() + config_.epoch.ns() - 1) / config_.epoch.ns());

  // Contiguous shards: shard s owns ranks [bounds[s], bounds[s+1]).
  std::vector<int> bounds(static_cast<std::size_t>(threads) + 1);
  const int base = config_.nodes / threads;
  const int extra = config_.nodes % threads;
  for (int s = 0; s < threads; ++s) {
    bounds[static_cast<std::size_t>(s) + 1] =
        bounds[static_cast<std::size_t>(s)] + base + (s < extra ? 1 : 0);
  }

  IngestQueue queue(config_.ingest_queue_capacity);
  IngestWorker ingest(*db_, queue);
  if (fleet_recorder_ != nullptr) {
    queue.attach_recorder(fleet_recorder_.get(), config_.ingest_deadline_seconds);
    ingest.attach_recorder(fleet_recorder_.get());
  }
  std::thread ingest_thread([&ingest] { ingest.run(); });

  std::vector<std::vector<NodeBatch>> staging(static_cast<std::size_t>(threads));
  std::vector<double> shard_stalls(static_cast<std::size_t>(threads), 0.0);
  std::vector<double> shard_capture_seconds(static_cast<std::size_t>(threads), 0.0);
  std::vector<Status> shard_status(static_cast<std::size_t>(threads), Status::ok());

  // State below is touched only by the barrier completion, which the
  // barrier runs on exactly one thread per phase.
  std::uint64_t epoch_index = 0;
  auto epoch_began = std::chrono::steady_clock::now();
  std::size_t staged_rows = 0;
  std::size_t self_rows = 0;
  double fold_seconds = 0.0;

  auto on_epoch_complete = [&]() noexcept {
    ++epoch_index;
    const sim::SimTime boundary =
        epoch_index == epoch_count
            ? sim::SimTime::zero() + config_.horizon
            : sim::SimTime::zero() + config_.epoch * static_cast<std::int64_t>(epoch_index);
    EpochBatch batch;
    batch.epoch = epoch_index - 1;
    batch.boundary = boundary;
    batch.nodes.reserve(nodes_.size() + 1);
    for (std::vector<NodeBatch>& shard : staging) {
      for (NodeBatch& node : shard) {
        batch.rows += node.records.size();
        batch.nodes.push_back(std::move(node));
      }
      shard.clear();
    }
    // Fold the captured node snapshots up the tree and append the fleet
    // rollup as one more "node" — index `nodes` places its rows after
    // every real rank in the stable sort's tie order.
    if (telemetry_ != nullptr) {
      const auto fold_began = std::chrono::steady_clock::now();
      telemetry_->fold();
      if (config_.self_scrape) {
        NodeBatch self;
        self.node = config_.nodes;
        self.records = self_scrape_records(telemetry_->fleet_rollup(), boundary);
        self_rows += self.records.size();
        if (self_rows_metric_ != nullptr) self_rows_metric_->inc(self.records.size());
        batch.rows += self.records.size();
        batch.nodes.push_back(std::move(self));
      }
      fold_seconds += seconds_since(fold_began);
    }
    staged_rows += batch.rows;
    if (staged_metric_ != nullptr) staged_metric_->inc(batch.rows);
    if (batch.rows > 0) queue.push(std::move(batch));
    if (epochs_metric_ != nullptr) epochs_metric_->inc();
    if (epoch_seconds_metric_ != nullptr) epoch_seconds_metric_->observe(seconds_since(epoch_began));
    epoch_began = std::chrono::steady_clock::now();
  };
  std::barrier barrier(threads, on_epoch_complete);

  auto worker = [&](int shard) {
    const int begin = bounds[static_cast<std::size_t>(shard)];
    const int end = bounds[static_cast<std::size_t>(shard) + 1];
    std::vector<NodeBatch>& stage = staging[static_cast<std::size_t>(shard)];
    for (std::uint64_t e = 1; e <= epoch_count; ++e) {
      const sim::SimTime target =
          e == epoch_count ? sim::SimTime::zero() + config_.horizon
                           : sim::SimTime::zero() + config_.epoch * static_cast<std::int64_t>(e);
      for (int rank = begin; rank < end; ++rank) {
        nodes_[static_cast<std::size_t>(rank)]->advance_to(target);
        NodeBatch node_batch;
        node_batch.node = rank;
        nodes_[static_cast<std::size_t>(rank)]->drain(node_batch.records);
        if (!node_batch.records.empty()) stage.push_back(std::move(node_batch));
      }
      if (telemetry_ != nullptr) {
        const auto capture_began = std::chrono::steady_clock::now();
        for (int rank = begin; rank < end; ++rank) telemetry_->capture(rank);
        shard_capture_seconds[static_cast<std::size_t>(shard)] +=
            seconds_since(capture_began);
      }
      const auto park = std::chrono::steady_clock::now();
      barrier.arrive_and_wait();
      const double waited = seconds_since(park);
      shard_stalls[static_cast<std::size_t>(shard)] += waited;
      if (waited > kStallFloorSeconds && shard < static_cast<int>(shard_stall_metrics_.size())) {
        shard_stall_metrics_[static_cast<std::size_t>(shard)]->inc();
      }
    }
    // Post-run: stop collection and render node files shard-parallel;
    // the caller's thread writes them out in rank order afterwards.
    for (int rank = begin; rank < end; ++rank) {
      const Status s = nodes_[static_cast<std::size_t>(rank)]->finalize(
          config_.filesystem, config_.output != nullptr);
      if (!s.is_ok()) {
        shard_status[static_cast<std::size_t>(shard)] = s;
        return;
      }
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int s = 0; s < threads; ++s) pool.emplace_back(worker, s);
    for (std::thread& t : pool) t.join();
  }

  queue.close();
  ingest_thread.join();

  for (int s = 0; s < threads; ++s) {
    if (s < static_cast<int>(shard_stall_seconds_metrics_.size())) {
      shard_stall_seconds_metrics_[static_cast<std::size_t>(s)]->set(
          shard_stalls[static_cast<std::size_t>(s)]);
    }
    if (!shard_status[static_cast<std::size_t>(s)].is_ok()) {
      return shard_status[static_cast<std::size_t>(s)];
    }
  }

  // Deterministic output: files land in rank order regardless of which
  // shard rendered them first.
  if (config_.output != nullptr) {
    for (const std::unique_ptr<FleetNode>& node : nodes_) {
      const Status s = config_.output->write(node->file_name(), node->file_content());
      if (!s.is_ok()) return s;
    }
  }

  report_.nodes = config_.nodes;
  report_.threads = threads;
  report_.epochs = epoch_count;
  for (const std::unique_ptr<FleetNode>& node : nodes_) {
    const moneq::NodeProfiler& profiler = node->profiler();
    const moneq::OverheadReport overhead = profiler.overhead();
    report_.polls += overhead.polls;
    report_.samples += profiler.samples().size();
    report_.dropped_samples += profiler.dropped_samples();
    report_.degraded_polls += profiler.degraded_polls();
    report_.gap_markers += profiler.gaps().size();
    report_.initialize_total += overhead.initialize;
    report_.collection_total += overhead.collection;
    report_.finalize_total += overhead.finalize;
  }
  // Post-mortem: the first quarantine transition on the merged
  // deterministic timeline wins (a pure function of seed and config);
  // an ingest-deadline miss triggers only when nothing quarantined and
  // is wall-clock dependent by nature — the dump itself still contains
  // only deterministic events.
  if (fleet_recorder_ != nullptr) {
    std::vector<const obs::FlightRecorder*> all;
    all.reserve(recorders_.size() + 1);
    for (const auto& r : recorders_) all.push_back(r.get());
    all.push_back(fleet_recorder_.get());
    std::string trigger;
    for (const obs::RecorderEvent& event : obs::merge_events(all)) {
      if (event.name == "backend.health" &&
          event.detail.find("-> quarantined") != std::string::npos) {
        trigger = "backend quarantined: node " + std::to_string(event.node) + ", " +
                  event.detail;
        break;
      }
    }
    if (trigger.empty() && queue.deadline_missed()) {
      trigger = "ingest deadline missed";
    }
    if (!trigger.empty()) {
      post_mortem_ = obs::dump_post_mortem(trigger, all);
      report_.post_mortem_triggered = true;
      report_.post_mortem_trigger = std::move(trigger);
      if (config_.output != nullptr && !config_.post_mortem_path.empty()) {
        const Status s = config_.output->write(config_.post_mortem_path, post_mortem_);
        if (!s.is_ok()) return s;
      }
    }
    for (const auto& r : recorders_) {
      report_.recorder_events += r->recorded();
      report_.recorder_dropped += r->dropped();
    }
    report_.recorder_events += fleet_recorder_->recorded();
    report_.recorder_dropped += fleet_recorder_->dropped();
  }

  report_.telemetry_seconds = fold_seconds;
  for (const double s : shard_capture_seconds) report_.telemetry_seconds += s;
  report_.self_scrape_rows = self_rows;

  const IngestWorker::Stats& ingest_stats = ingest.stats();
  report_.records_staged = staged_rows;
  report_.records_applied = ingest_stats.accepted;
  report_.rejected_out_of_order = ingest_stats.rejected_out_of_order;
  report_.rejected_rate_limited = ingest_stats.rejected_rate_limited;
  report_.rejected_unavailable = ingest_stats.rejected_unavailable;
  report_.database_rows = db_->size();
  report_.ingest_stalls = queue.stalls();
  report_.ingest_stall_seconds = queue.stall_seconds();
  report_.shard_stall_seconds = std::move(shard_stalls);
  report_.wall_seconds = seconds_since(t0);
  if (report_.wall_seconds > 0.0) {
    report_.node_seconds_per_second =
        config_.horizon.to_seconds() * static_cast<double>(config_.nodes) / report_.wall_seconds;
  }

  state_ = State::kRan;
  return Status::ok();
}

Result<FleetReport> FleetRunner::report() const {
  if (state_ != State::kRan) {
    return Status(StatusCode::kFailedPrecondition, "fleet has not run");
  }
  return report_;
}

tsdb::EnvDatabase& FleetRunner::database() { return *db_; }

namespace {

// Folds a pre-rendered label body into a metric-name suffix: quotes are
// dropped, '=' and ',' become '.', everything else passes through —
// readable, collision-free for the label alphabets we emit, and stable
// under CSV export.
std::string self_metric_name(const std::string& name, const std::string& labels) {
  std::string out(tsdb::kSelfMetricPrefix);
  out += name;
  if (!labels.empty()) {
    out += '.';
    for (const char c : labels) {
      if (c == '"') continue;
      out += (c == '=' || c == ',') ? '.' : c;
    }
  }
  return out;
}

}  // namespace

std::vector<tsdb::Record> self_scrape_records(const obs::Snapshot& snapshot, sim::SimTime t) {
  const tsdb::Location location = tsdb::rack_location(kSelfTelemetryRack);
  std::vector<tsdb::Record> records;
  records.reserve(snapshot.counters.size() + snapshot.gauges.size() +
                  2 * snapshot.histograms.size());
  for (const auto& c : snapshot.counters) {
    records.push_back(
        {t, location, self_metric_name(c.name, c.labels), static_cast<double>(c.value)});
  }
  for (const auto& g : snapshot.gauges) {
    records.push_back({t, location, self_metric_name(g.name, g.labels), g.value});
  }
  for (const auto& h : snapshot.histograms) {
    records.push_back({t, location, self_metric_name(h.name + ".count", h.labels),
                       static_cast<double>(h.count)});
    records.push_back({t, location, self_metric_name(h.name + ".sum", h.labels), h.sum});
  }
  return records;
}

}  // namespace v2
}  // namespace envmon::fleet
