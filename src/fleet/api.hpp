#pragma once
// envmon::fleet — the versioned public surface for fleet-scale collection.
//
// The paper's MonEQ results (Table III) are about scale: per-node
// collection on up to 48 racks of Mira with sub-1% overhead.  Version 1
// of this reproduction's public surface was the MonEQ C API (capi.hpp):
// one bound profiler, int status codes, single-threaded.  Version 2 is
// this namespace: a FleetRunner owns the whole profiler lifecycle
// (configure → run → report), errors are common::Status, and the fleet
// is simulated in parallel across worker threads while staying
// byte-deterministic (see runner.hpp for the execution model).
//
// Versioning: `inline namespace v2` keeps envmon::fleet::FleetRunner
// spelling stable while allowing a future v3 to coexist; the constants
// below let callers assert against the surface they compiled for.  The
// MonEQ_* C shims that bridged v1 callers were removed once the in-tree
// migration finished; the paper's two-line Listing 1 is now spelled
// profiler.initialize() / profiler.finalize() (DESIGN.md §9).

#include "fleet/runner.hpp"

namespace envmon::fleet {

// v2.1: work-stealing shard scheduler (FleetConfig::{shards,
// epoch_window}), fleet failure detector (failure_detector, detector;
// FleetReport liveness counts), and memory accounting (rss_bytes,
// bytes_per_node).  Pure extension — v2.0 callers compile unchanged.
inline constexpr int kApiVersionMajor = 2;
inline constexpr int kApiVersionMinor = 1;

[[nodiscard]] constexpr const char* api_version_string() { return "envmon.fleet/v2.1"; }

}  // namespace envmon::fleet
