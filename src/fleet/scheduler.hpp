#pragma once
// ShardScheduler — the fleet's sharded, work-stealing epoch scheduler.
//
// The PR-4 engine advanced every shard in lockstep: all workers parked at
// a std::barrier each epoch, so fleet throughput was the *slowest*
// shard's throughput every single epoch and the measured multi-thread
// speedup was ~1.0x (BENCH_fleet.json at the PR-6 seed).  This scheduler
// removes the rendezvous:
//
//   * The fleet's nodes are over-partitioned into S >= workers contiguous
//     shards.  A shard is the unit of both work and stealing — workers
//     never split a shard, so any one node is only ever advanced by one
//     thread at a time and per-node state needs no synchronization.
//   * Each worker has a contiguous "home" block of shards (cache
//     affinity).  A worker repeatedly claims the most-lagging claimable
//     shard — home shards win ties; claiming a shard whose home is
//     another worker counts as a steal — advances it exactly ONE epoch,
//     deposits the result, and releases it.  Laggards are therefore
//     served by whichever worker is free, not by whoever happens to own
//     them.
//   * Shards may skew: a shard can run up to `window` epochs ahead of the
//     oldest epoch not yet merged.  The bound keeps staged memory finite
//     and is the only thing that ever makes a worker wait.
//   * Epochs complete strictly in order.  When the last shard deposits
//     epoch E, that worker becomes the merger and drains every
//     fully-deposited epoch in sequence, invoking `complete(E)` outside
//     the scheduler lock.  complete() is the fleet's sole merge point —
//     the deterministic node-order merge into the ingest queue and the
//     telemetry fold both live there (runner.cpp), which is what keeps
//     files + tsdb byte-identical at any worker count.
//
// The scheduler knows nothing about nodes, telemetry, or ingest: it
// schedules (shard, epoch) pairs through three callbacks.  That keeps it
// independently unit-testable (tests/fleet_scheduler_test.cpp forces the
// steal path with an artificially slow shard).

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/status.hpp"

namespace envmon::fleet {
inline namespace v2 {

class ShardScheduler {
 public:
  struct Options {
    int shards = 1;            // over-partition count (>= 1)
    int workers = 1;           // worker threads (worker 0 runs on the caller)
    std::uint64_t epochs = 1;  // epochs every shard must complete
    // Max epochs any shard may run ahead of the oldest unmerged epoch
    // (>= 1).  Bounds staged batches and capture snapshots in flight.
    std::uint64_t window = 4;
  };

  struct Callbacks {
    // Advance `shard` to the boundary of `epoch` (1-based) and stage its
    // results.  Called with exclusive ownership of the shard on a worker
    // thread; a non-OK status aborts the run.
    std::function<Status(int shard, std::uint64_t epoch)> advance;
    // Every shard has deposited `epoch`; merge it.  Called exactly once
    // per epoch, in strictly increasing order, never concurrently, and
    // outside the scheduler lock (it may block on ingest backpressure).
    std::function<Status(std::uint64_t epoch)> complete;
    // `shard` has deposited its final epoch; finalize its nodes (render
    // files).  Exclusive ownership, worker thread, may be concurrent with
    // complete() of earlier epochs.  Optional.
    std::function<Status(int shard)> finalize;
  };

  struct Stats {
    std::uint64_t steals = 0;            // claims of another worker's home shard
    std::uint64_t epochs_completed = 0;  // complete() calls that returned OK
    double window_wait_seconds = 0.0;    // summed over workers
  };

  ShardScheduler(Options options, Callbacks callbacks);
  ShardScheduler(const ShardScheduler&) = delete;
  ShardScheduler& operator=(const ShardScheduler&) = delete;

  // Runs the whole schedule; blocking.  Spawns workers-1 threads and uses
  // the calling thread as worker 0.  Returns the first callback error
  // (remaining work is abandoned, in-flight callbacks finish first).
  Status run();

  // Valid after run() returns.
  [[nodiscard]] const Stats& stats() const { return stats_; }

  // The worker whose home block contains `shard` under the same
  // contiguous split run() uses (exposed for tests and the runner's
  // affinity bookkeeping).
  [[nodiscard]] int home_worker(int shard) const;

 private:
  struct ShardState {
    std::uint64_t epochs_done = 0;
    bool claimed = false;
  };

  void worker_loop(int worker);
  // Picks the most-lagging claimable shard for `worker`; -1 if none.
  // Caller holds mutex_.
  [[nodiscard]] int pick_shard(int worker) const;
  // Drains fully-deposited epochs in order.  Caller holds lock_;
  // complete() itself runs unlocked.
  void drain_completions(std::unique_lock<std::mutex>& lock);
  void record_error(const Status& status);

  Options options_;
  Callbacks callbacks_;

  std::mutex mutex_;
  std::condition_variable claimable_cv_;
  std::vector<ShardState> shards_;
  // Ring of per-epoch deposit counts for epochs (completed_, completed_ +
  // window]; slot = epoch % (window + 1).
  std::vector<int> arrivals_;
  std::uint64_t completed_ = 0;  // last epoch fully merged
  bool merging_ = false;
  bool aborted_ = false;
  Status first_error_ = Status::ok();
  Stats stats_;
};

}  // namespace v2
}  // namespace envmon::fleet
