#pragma once
// The fleet's concurrent batched ingest path into tsdb::EnvDatabase.
//
// The store itself is single-threaded by design (one writer, ordered
// timestamps — the DB2 stand-in).  Fleet workers therefore never touch
// it directly: each worker stages its shard's records during an epoch,
// the epoch barrier hands one ordered EpochBatch to a bounded queue, and
// a dedicated ingest thread applies batches in epoch order — node order
// within an epoch, timestamp-stable-sorted across nodes — so the store's
// contents are byte-identical no matter how many workers produced them.
//
// The queue is bounded: when the applier falls behind by `capacity`
// epochs, the barrier's producer side blocks (backpressure) instead of
// letting staged records grow without limit — the nvidia-smi failure
// mode of an unbounded decoupled sampler (arXiv:2312.02741) is exactly
// what this prevents.  Stall counts and stalled wall time are exported
// as metrics.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "sim/time.hpp"
#include "tsdb/database.hpp"

namespace envmon::fleet {
inline namespace v2 {

// One node's records for one epoch, already in that node's time order.
struct NodeBatch {
  int node = 0;
  std::vector<tsdb::Record> records;
};

// Recycles record-vector capacity between the ingest thread and the
// shard workers.  A 100k-node epoch stages up to one vector per node;
// without recycling every epoch re-grows them from scratch.  Workers
// take a chunk per shard-epoch (one lock round-trip, not one per node)
// and the ingest thread returns the emptied buffers after applying a
// batch.  Bounded: buffers past `max_buffers` are simply freed.
class RecordBufferPool {
 public:
  explicit RecordBufferPool(std::size_t max_buffers = 1 << 17) : max_buffers_(max_buffers) {}

  // Appends up to `want` recycled buffers (empty, capacity retained) to
  // `out`; returns how many were supplied.  Callers make up the balance
  // with fresh vectors.
  std::size_t take(std::vector<std::vector<tsdb::Record>>& out, std::size_t want);
  // Returns emptied buffers to the pool in one lock round-trip.
  void put(std::vector<std::vector<tsdb::Record>>&& buffers);

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<tsdb::Record>> free_;
  std::size_t max_buffers_;
};

// Everything the fleet staged during one epoch, ordered by node index.
struct EpochBatch {
  std::uint64_t epoch = 0;
  std::vector<NodeBatch> nodes;
  std::size_t rows = 0;
  // Virtual-clock end of the epoch; stamps the flight-recorder events the
  // ingest side emits while applying this batch.
  sim::SimTime boundary{};
};

// Bounded MPSC queue of epoch batches (in practice one producer — the
// epoch-barrier completion — and one consumer, the ingest thread).
class IngestQueue {
 public:
  // `capacity` is in epochs; 0 is promoted to 1.
  explicit IngestQueue(std::size_t capacity);

  // When attached, queue stalls become kTiming flight-recorder events
  // ("queue"/"queue.stall"); a single stall longer than
  // `deadline_seconds` (when set) additionally records
  // "queue.deadline_missed" and latches deadline_missed().  Timing
  // events never land in the deterministic post-mortem stream — stall
  // durations depend on host scheduling, not the virtual clock.
  void attach_recorder(obs::FlightRecorder* recorder,
                       std::optional<double> deadline_seconds = std::nullopt) {
    recorder_ = recorder;
    deadline_seconds_ = deadline_seconds;
  }
  [[nodiscard]] bool deadline_missed() const {
    return deadline_missed_.load(std::memory_order_relaxed);
  }

  // Blocks while full.  Returns false (dropping the batch) after close().
  bool push(EpochBatch batch);

  // Blocks while empty; std::nullopt once closed and drained.
  [[nodiscard]] std::optional<EpochBatch> pop();

  // Wakes all waiters; further pushes fail, pops drain what remains.
  void close();

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::uint64_t stalls() const { return stalls_.load(std::memory_order_relaxed); }
  [[nodiscard]] double stall_seconds() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<EpochBatch> items_;
  std::size_t capacity_;
  bool closed_ = false;
  std::atomic<std::uint64_t> stalls_{0};
  double stall_seconds_ = 0.0;  // guarded by mutex_
  obs::FlightRecorder* recorder_ = nullptr;
  std::optional<double> deadline_seconds_;
  std::atomic<bool> deadline_missed_{false};

  obs::Gauge* depth_metric_ = nullptr;
  obs::Counter* stalls_metric_ = nullptr;
};

// The consumer side: drains the queue into the database, preserving the
// deterministic order (epoch, node, timestamp-stable).
//
// Every `seal_interval` applied batches the worker asks the store to
// seal series heads holding at least `seal_min_rows` rows into
// immutable compressed blocks, bounding the mutable tier during long
// collection runs.  The schedule counts applied batches on the single
// ingest thread, so it is deterministic regardless of worker count —
// and sealing never changes query results (database.hpp).
class IngestWorker {
 public:
  static constexpr std::uint64_t kDefaultSealInterval = 64;
  static constexpr std::size_t kDefaultSealMinRows = 1024;

  IngestWorker(tsdb::EnvDatabase& db, IngestQueue& queue,
               std::uint64_t seal_interval = kDefaultSealInterval,
               std::size_t seal_min_rows = kDefaultSealMinRows);

  // When attached, seal and retention actions become deterministic
  // flight-recorder events stamped with the applied batch's epoch
  // boundary ("tsdb"/"tsdb.seal", "tsdb"/"tsdb.retention", node = -1).
  void attach_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  // When attached, applied batches' record buffers are cleared and
  // returned to the pool instead of freed.
  void attach_pool(RecordBufferPool* pool) { pool_ = pool; }

  // Consumes until the queue is closed and drained.  Run on one thread.
  void run();

  struct Stats {
    std::uint64_t batches = 0;
    std::size_t accepted = 0;
    std::size_t rejected_out_of_order = 0;
    std::size_t rejected_rate_limited = 0;
    std::size_t rejected_unavailable = 0;
    std::size_t blocks_sealed = 0;  // epoch-boundary seals this worker requested
    std::uint64_t flushes = 0;      // durable flushes at epoch-seal boundaries
  };
  // Safe to read after run() returns (or the running thread is joined).
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void apply(EpochBatch&& batch);

  tsdb::EnvDatabase* db_;
  IngestQueue* queue_;
  std::uint64_t seal_interval_;
  std::size_t seal_min_rows_;
  Stats stats_;
  obs::FlightRecorder* recorder_ = nullptr;
  RecordBufferPool* pool_ = nullptr;
  std::vector<tsdb::Record> rows_;  // reused merge buffer
  std::vector<std::vector<tsdb::Record>> recycle_;  // reused return chunk
  obs::Counter* applied_metric_ = nullptr;
};

}  // namespace v2
}  // namespace envmon::fleet
