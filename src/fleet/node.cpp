#include "fleet/node.hpp"

namespace envmon::fleet {
inline namespace v2 {

namespace {

// BG/Q addressing for a rank, mirroring moneq::node_location().
constexpr int kCardsPerBoard = 32;
constexpr int kBoardsPerMidplane = 16;
constexpr int kMidplanesPerRack = 2;

}  // namespace

FleetNode::FleetNode(const smpi::World& world, NodeOptions options)
    : world_(&world),
      options_(std::move(options)),
      injector_(std::make_unique<fault::Injector>(engine_, options_.seed)),
      location_(moneq::node_location(options_.rank)),
      file_name_(moneq::node_file_name(options_.rank)) {}

Status FleetNode::build_substrate(moneq::BackendConfig& config,
                                  moneq::Capability capability) {
  const sim::SimTime start = sim::SimTime::zero();
  switch (capability) {
    case moneq::Capability::kBgqEmon: {
      const int board_index = (options_.rank / kCardsPerBoard) % kBoardsPerMidplane;
      const int midplane =
          (options_.rank / (kCardsPerBoard * kBoardsPerMidplane)) % kMidplanesPerRack;
      const int rack = options_.rank / (kCardsPerBoard * kBoardsPerMidplane * kMidplanesPerRack);
      board_ = std::make_unique<bgq::NodeBoard>(rack, midplane, board_index);
      if (options_.defaults->workload != nullptr) {
        board_->model().run_workload(options_.defaults->workload, start);
      }
      emon_ = std::make_unique<bgq::EmonSession>(*board_);
      emon_->attach_fault_hook(*injector_);
      config.emon = emon_.get();
      return Status::ok();
    }
    case moneq::Capability::kRaplMsr: {
      rapl::PackageConfig package_config;
      package_config.seed = options_.seed;
      package_ = std::make_unique<rapl::CpuPackage>(engine_, package_config);
      if (options_.defaults->workload != nullptr) {
        package_->run_workload(options_.defaults->workload, start);
      }
      rapl_reader_ =
          std::make_unique<rapl::MsrRaplReader>(*package_, rapl::Credentials{true, 0});
      rapl_reader_->attach_fault_hook(*injector_);
      config.rapl = rapl_reader_.get();
      return Status::ok();
    }
    case moneq::Capability::kNvml: {
      nvml_ = std::make_unique<nvml::NvmlLibrary>(engine_);
      auto device = std::make_shared<nvml::GpuDevice>(nvml::k20_spec(), options_.seed);
      if (options_.defaults->workload != nullptr) {
        device->run_workload(options_.defaults->workload, start);
      }
      nvml_->attach_device(std::move(device));
      nvml_->attach_fault_hook(*injector_);
      if (nvml_->init() != nvml::NvmlReturn::kSuccess) {
        return Status::unavailable("nvml init failed");
      }
      nvml::NvmlDeviceHandle handle;
      if (nvml_->device_get_handle_by_index(0, &handle) != nvml::NvmlReturn::kSuccess) {
        return Status::unavailable("nvml device handle unavailable");
      }
      config.nvml = nvml_.get();
      config.nvml_handle = handle;
      config.nvml_label = "gpu_board";
      return Status::ok();
    }
    case moneq::Capability::kMicSysMgmt: {
      if (phi_ == nullptr) {
        phi_ = std::make_unique<mic::PhiCard>(engine_);
        if (options_.defaults->workload != nullptr) phi_->run_workload(options_.defaults->workload, start);
      }
      scif_ = std::make_unique<mic::ScifNetwork>();
      sysmgmt_ = std::make_unique<mic::SysMgmtService>(*phi_, *scif_, 1);
      auto client = mic::SysMgmtClient::connect(*scif_, 1);
      if (!client.is_ok()) return client.status();
      mic_client_.emplace(std::move(client.value()));
      mic_client_->attach_fault_hook(*injector_);
      config.mic_client = &*mic_client_;
      return Status::ok();
    }
    case moneq::Capability::kMicDaemon: {
      if (phi_ == nullptr) {
        phi_ = std::make_unique<mic::PhiCard>(engine_);
        if (options_.defaults->workload != nullptr) phi_->run_workload(options_.defaults->workload, start);
      }
      micras_ = std::make_unique<mic::MicrasDaemon>(*phi_);
      micras_->attach_fault_hook(*injector_);
      micras_->start();
      config.mic_daemon = micras_.get();
      return Status::ok();
    }
  }
  return Status::invalid_argument("unknown capability");
}

Status FleetNode::configure() {
  if (profiler_ != nullptr) {
    return Status::failed_precondition("node already configured");
  }
  if (options_.defaults == nullptr || options_.defaults->capabilities.empty()) {
    return Status::invalid_argument("node has no capabilities");
  }
  moneq::BackendConfig config;
  for (const moneq::Capability capability : options_.defaults->capabilities) {
    if (const Status s = build_substrate(config, capability); !s.is_ok()) return s;
    auto backend = moneq::make_backend(capability, config);
    if (!backend.is_ok()) return backend.status();
    backends_.push_back(std::move(backend.value()));
  }

  moneq::ProfilerOptions profiler_options;
  profiler_options.polling_interval = options_.defaults->polling_interval;
  profiler_options.degradation = options_.defaults->degradation;
  // Drained samples are spooled into the node file and released each
  // epoch: at 100k nodes, retaining every Sample struct for the whole
  // horizon is what blows the memory budget.
  profiler_options.spool_samples = true;
  profiler_options.spool_reserve_bytes = options_.defaults->spool_reserve_bytes;
  profiler_options.registry = options_.registry;
  profiler_options.recorder = options_.recorder;
  profiler_options.recorder_node = options_.rank;
  if (options_.recorder != nullptr) {
    injector_->attach_recorder(options_.recorder, options_.rank);
  }
  profiler_ = std::make_unique<moneq::NodeProfiler>(engine_, *world_, options_.rank,
                                                    profiler_options);
  for (auto& backend : backends_) {
    if (const Status s = profiler_->add_backend(*backend); !s.is_ok()) return s;
  }
  return profiler_->initialize();
}

void FleetNode::drain(std::vector<tsdb::Record>& out) {
  // In spool mode the buffer holds exactly the samples collected since
  // the previous drain; releasing afterwards renders them into the node
  // file spool and frees the structs.
  const std::vector<moneq::Sample>& samples = profiler_->samples();
  if (options_.defaults->ingest == IngestMode::kPerSample) {
    for (const moneq::Sample& s : samples) {
      out.push_back({s.t, location_, "moneq_" + s.domain, s.value});
    }
  } else {
    // One record per poll tick: every sample of a tick carries the same
    // timestamp, so groups are contiguous runs of equal t.
    std::size_t i = 0;
    while (i < samples.size()) {
      const sim::SimTime tick = samples[i].t;
      double watts = 0.0;
      bool any_power = false;
      for (; i < samples.size() && samples[i].t == tick; ++i) {
        if (samples[i].quantity == moneq::Quantity::kPowerWatts) {
          watts += samples[i].value;
          any_power = true;
        }
      }
      if (any_power) {
        out.push_back({tick, location_, "moneq_node_power_watts", watts});
      }
    }
  }
  profiler_->release_samples();
}

bool FleetNode::heartbeat() const {
  if (profiler_ == nullptr) return false;
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (profiler_->backend_health(i).state() != moneq::BackendState::kQuarantined) return true;
  }
  return false;
}

Status FleetNode::finalize(const smpi::FileSystemModel* fs, bool render) {
  const Status s = profiler_->finalize(fs, nullptr);
  if (!s.is_ok()) return s;
  if (render) {
    // Moves the spool out of the profiler: the rendered CSV exists once,
    // here, until the runner writes and releases it.
    file_content_ = profiler_->take_file();
  }
  return Status::ok();
}

}  // namespace v2
}  // namespace envmon::fleet
