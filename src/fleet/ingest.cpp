#include "fleet/ingest.hpp"

#include <algorithm>
#include <chrono>

namespace envmon::fleet {
inline namespace v2 {

IngestQueue::IngestQueue(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {
  if (obs::enabled()) {
    auto& registry = obs::default_registry();
    depth_metric_ = &registry.gauge("envmon_fleet_queue_depth",
                                    "Epoch batches staged in the fleet ingest queue");
    stalls_metric_ = &registry.counter(
        "envmon_fleet_ingest_stalls_total",
        "Epoch-barrier pushes that blocked on a full ingest queue");
  }
}

bool IngestQueue::push(EpochBatch batch) {
  std::unique_lock lock(mutex_);
  if (items_.size() >= capacity_ && !closed_) {
    stalls_.fetch_add(1, std::memory_order_relaxed);
    if (stalls_metric_ != nullptr) stalls_metric_->inc();
    const auto began = std::chrono::steady_clock::now();
    not_full_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
    const double stalled =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - began).count();
    stall_seconds_ += stalled;
    if (recorder_ != nullptr) {
      recorder_->record(batch.boundary, -1, "queue", "queue.stall",
                        "epoch " + std::to_string(batch.epoch),
                        obs::EventClass::kTiming);
      if (deadline_seconds_ && stalled > *deadline_seconds_) {
        deadline_missed_.store(true, std::memory_order_relaxed);
        recorder_->record(batch.boundary, -1, "queue", "queue.deadline_missed",
                          "epoch " + std::to_string(batch.epoch),
                          obs::EventClass::kTiming);
      }
    }
  }
  if (closed_) return false;
  items_.push_back(std::move(batch));
  if (depth_metric_ != nullptr) depth_metric_->set(static_cast<double>(items_.size()));
  not_empty_.notify_one();
  return true;
}

std::optional<EpochBatch> IngestQueue::pop() {
  std::unique_lock lock(mutex_);
  not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
  if (items_.empty()) return std::nullopt;
  EpochBatch batch = std::move(items_.front());
  items_.pop_front();
  if (depth_metric_ != nullptr) depth_metric_->set(static_cast<double>(items_.size()));
  not_full_.notify_one();
  return batch;
}

void IngestQueue::close() {
  {
    const std::scoped_lock lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t IngestQueue::depth() const {
  const std::scoped_lock lock(mutex_);
  return items_.size();
}

double IngestQueue::stall_seconds() const {
  const std::scoped_lock lock(mutex_);
  return stall_seconds_;
}

std::size_t RecordBufferPool::take(std::vector<std::vector<tsdb::Record>>& out,
                                   std::size_t want) {
  const std::scoped_lock lock(mutex_);
  const std::size_t n = std::min(want, free_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(free_.back()));
    free_.pop_back();
  }
  return n;
}

void RecordBufferPool::put(std::vector<std::vector<tsdb::Record>>&& buffers) {
  const std::scoped_lock lock(mutex_);
  for (std::vector<tsdb::Record>& buffer : buffers) {
    if (free_.size() >= max_buffers_) break;
    free_.push_back(std::move(buffer));
  }
  buffers.clear();
}

std::size_t RecordBufferPool::size() const {
  const std::scoped_lock lock(mutex_);
  return free_.size();
}

IngestWorker::IngestWorker(tsdb::EnvDatabase& db, IngestQueue& queue,
                           std::uint64_t seal_interval, std::size_t seal_min_rows)
    : db_(&db), queue_(&queue), seal_interval_(seal_interval), seal_min_rows_(seal_min_rows) {
  if (obs::enabled()) {
    applied_metric_ = &obs::default_registry().counter(
        "envmon_fleet_records_applied_total",
        "Records the ingest thread applied to the environmental database");
  }
}

void IngestWorker::run() {
  while (auto batch = queue_->pop()) {
    apply(std::move(*batch));
  }
}

void IngestWorker::apply(EpochBatch&& batch) {
  // Per-node streams are already time-ordered; concatenating in node
  // order and stable-sorting by timestamp yields the one global order
  // the store accepts (non-decreasing timestamps, ties by node index) —
  // independent of which worker staged what.
  std::vector<tsdb::Record>& rows = rows_;
  rows.clear();
  rows.reserve(batch.rows);
  for (NodeBatch& node : batch.nodes) {
    rows.insert(rows.end(), std::make_move_iterator(node.records.begin()),
                std::make_move_iterator(node.records.end()));
    if (pool_ != nullptr) {
      node.records.clear();  // destroy moved-from shells, keep capacity
      recycle_.push_back(std::move(node.records));
    }
  }
  if (pool_ != nullptr && !recycle_.empty()) pool_->put(std::move(recycle_));
  std::stable_sort(rows.begin(), rows.end(),
                   [](const tsdb::Record& a, const tsdb::Record& b) {
                     return a.timestamp.ns() < b.timestamp.ns();
                   });
  const std::size_t size_before = db_->size();
  const auto result = db_->insert_batch(rows);
  ++stats_.batches;
  stats_.accepted += result.accepted;
  stats_.rejected_out_of_order += result.rejected_out_of_order;
  stats_.rejected_rate_limited += result.rejected_rate_limited;
  stats_.rejected_unavailable += result.rejected_unavailable;
  if (applied_metric_ != nullptr) applied_metric_->inc(result.accepted);
  // Retention runs inside insert: accepted rows that don't all show up in
  // the post-insert size mean the store aged something out this batch.
  if (recorder_ != nullptr && size_before + result.accepted != db_->size()) {
    const std::size_t dropped = size_before + result.accepted - db_->size();
    recorder_->record(batch.boundary, -1, "tsdb", "tsdb.retention",
                      "epoch " + std::to_string(batch.epoch) + ": dropped " +
                          std::to_string(dropped) + " rows");
  }
  // Epoch-boundary seal: flush grown heads into immutable blocks on a
  // batch-count schedule (deterministic — this is the only db writer).
  if (seal_interval_ > 0 && stats_.batches % seal_interval_ == 0) {
    const std::size_t sealed = db_->seal_blocks(seal_min_rows_);
    stats_.blocks_sealed += sealed;
    if (recorder_ != nullptr && sealed > 0) {
      recorder_->record(batch.boundary, -1, "tsdb", "tsdb.seal",
                        "epoch " + std::to_string(batch.epoch) + ": sealed " +
                            std::to_string(sealed) + " blocks");
    }
    // A durable store flushes on the same schedule: each epoch seal
    // pushes the sealed blocks' extents and WAL records to disk, so a
    // crash loses at most one seal interval of fleet data even under
    // FsyncPolicy::kNone.
    if (db_->durable() && db_->flush().is_ok()) ++stats_.flushes;
  }
}

}  // namespace v2
}  // namespace envmon::fleet
