#include "tsdb/metric_table.hpp"

namespace envmon::tsdb {

MetricId MetricTable::intern(std::string_view name) {
  if (const auto it = ids_.find(name); it != ids_.end()) return it->second;
  const auto id = static_cast<MetricId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<MetricId> MetricTable::find(std::string_view name) const {
  const auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

std::size_t MetricTable::bytes_used() const {
  std::size_t bytes = 0;
  for (const auto& n : names_) bytes += sizeof(std::string) + n.capacity();
  // The id map roughly doubles the name storage plus one bucket per entry.
  bytes += ids_.size() * (sizeof(std::string) + sizeof(MetricId) + sizeof(void*));
  return bytes;
}

}  // namespace envmon::tsdb
