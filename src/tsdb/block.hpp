#pragma once
// Sealed immutable blocks — the cold tier of a Series.
//
// A Series accumulates appends in a small mutable head; once the head
// reaches Block::kMaxRows (or the database flushes it explicitly) the
// rows are sealed into a Block and never mutated again — retention can
// drop a whole block or re-materialize a smaller one, nothing else.
// Sealing freezes three independent column streams (delta-of-delta
// timestamps, delta-of-delta seq, XOR doubles; see codec.hpp) plus the
// aggregates the query engine pushes down to:
//
//  * a block summary — row count, ts min/max, seq first/last, value
//    min/max and the row-order folds of value and value² — answering
//    "does this block overlap the query?" and whole-block aggregates
//    without touching the streams, and
//  * per-subchunk partial sums — the value column is cut into
//    kSubchunkRows-row subchunks, each XOR stream restarted and its
//    bit offset recorded, so downsample() can take a subchunk's
//    precomputed sum (bucket fully covers it) or decode just that
//    subchunk (bucket boundary) without decoding the rest.
//
// The folds follow the canonical fold grammar in simd.hpp — a 4-lane
// tree within each subchunk (which is also the vectorized
// implementation), combined left-to-right across subchunks — and the
// query engine aggregates at subchunk granularity with the same
// grammar, which is what makes summary pushdown bit-identical to
// decode-then-fold on every dispatch variant.
//
// `compress = false` seals the same structure around plain column
// copies — identical layout, summaries, and query semantics, no codec.
// The benches use that as the flat-scan reference configuration.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "tsdb/codec.hpp"

namespace envmon::tsdb {

struct BlockSummary {
  std::uint32_t rows = 0;
  std::uint32_t finite_rows = 0;  // non-NaN rows; min/max valid iff > 0
  std::int64_t ts_min = 0;        // first row (rows are time-sorted)
  std::int64_t ts_max = 0;        // last row
  std::uint64_t seq_first = 0;
  std::uint64_t seq_last = 0;
  double value_min = 0.0;  // NaN rows are skipped by min/max; zero
  double value_max = 0.0;  // results carry the canonical sign (simd.hpp)
  double value_sum = 0.0;     // canonical fold (simd.hpp), NaN included
  double value_sum_sq = 0.0;  // same grammar over value*value
};

class Block {
 public:
  static constexpr std::size_t kMaxRows = 4096;
  static constexpr std::size_t kSubchunkRows = 16;

  // Seals time-sorted columns (ts ascending, seq strictly ascending).
  [[nodiscard]] static Block seal(std::span<const std::int64_t> ts,
                                  std::span<const double> values,
                                  std::span<const std::uint64_t> seq, bool compress);

  [[nodiscard]] const BlockSummary& summary() const { return summary_; }
  [[nodiscard]] std::size_t rows() const { return summary_.rows; }
  [[nodiscard]] bool compressed() const { return compressed_; }

  [[nodiscard]] std::size_t subchunk_count() const { return subchunk_sums_.size(); }
  [[nodiscard]] double subchunk_sum(std::size_t chunk) const { return subchunk_sums_[chunk]; }
  // Rows in subchunk `chunk` (kSubchunkRows except possibly the last).
  [[nodiscard]] std::size_t subchunk_rows(std::size_t chunk) const {
    const std::size_t begin = chunk * kSubchunkRows;
    const std::size_t end = begin + kSubchunkRows;
    return (end <= summary_.rows ? end : summary_.rows) - begin;
  }

  // Full-column decodes; `out` is assign()ed to rows() entries.
  void decode_timestamps(std::vector<std::int64_t>& out) const;
  void decode_seq(std::vector<std::uint64_t>& out) const;
  void decode_values(std::vector<double>& out) const;
  // Values of one subchunk only (bucket-boundary decode); writes
  // subchunk_rows(chunk) doubles to `out`.
  void decode_subchunk_values(std::size_t chunk, double* out) const;
  // Rows [begin, end) of the value column — decodes only the subchunks
  // the range touches (each once), not the whole column.
  void decode_values_range(std::size_t begin, std::size_t end, double* out) const;

  // Heap bytes held (streams or raw columns, offsets, subchunk sums).
  [[nodiscard]] std::size_t bytes_used() const;

  // --- Durable storage serialization (DESIGN.md §13) ---
  //
  // A block's on-disk extent payload is everything EXCEPT the seq
  // column: flags, row counts, the value-derived summary fields,
  // subchunk sums, and the ts/value streams.  Two blocks holding the
  // same timestamps and values therefore serialize to identical bytes
  // and share one content-addressed extent — seq (the global insertion
  // number, unique per block instance) travels as a small per-reference
  // sidecar stream next to the reference instead.
  void encode_extent(std::vector<std::uint8_t>& out) const;
  // The seq column sidecar (delta-of-delta stream when compressed, raw
  // little-endian u64s otherwise, matching the block's own mode).
  void encode_seq_stream(std::vector<std::uint8_t>& out) const;
  // Rebuilds a block from an extent payload plus its reference's seq
  // sidecar.  Bounds-checked and total: malformed input yields nullopt,
  // never out-of-bounds reads.  seq_first/seq_last restore the summary
  // fields the extent deliberately omits.
  [[nodiscard]] static std::optional<Block> decode_extent(
      std::span<const std::uint8_t> payload, std::span<const std::uint8_t> seq_stream,
      std::uint64_t seq_first, std::uint64_t seq_last);

 private:
  friend class BlockValueCursor;

  BlockSummary summary_;
  bool compressed_ = true;

  // Compressed representation: three independent bitstreams; the value
  // stream restarts its XOR state at every subchunk, with the starting
  // bit offset recorded for random access.
  std::vector<std::uint8_t> ts_stream_;
  std::vector<std::uint8_t> seq_stream_;
  std::vector<std::uint8_t> value_stream_;
  std::vector<std::uint32_t> value_chunk_offsets_;  // bit offset per subchunk

  // Raw representation (compress = false).
  std::vector<std::int64_t> raw_ts_;
  std::vector<std::uint64_t> raw_seq_;
  std::vector<double> raw_values_;

  std::vector<double> subchunk_sums_;
};

// Value-column reader that decodes each subchunk at most once across
// any sequence of row-range or per-subchunk reads.  Callers that walk a
// block in row order — the parallel query executor's narrowed [a, e)
// scan, downsample bucket edges that split a subchunk, cold
// rematerialization — previously re-decoded from the subchunk head on
// every mid-subchunk call; the cursor keeps the current subchunk's 16
// decoded rows and serves repeat hits from memory.  On uncompressed
// blocks it reads straight from the raw column, no copies.
class BlockValueCursor {
 public:
  explicit BlockValueCursor(const Block& block) : block_(&block) {}

  // Copies rows [begin, end) of the value column into `out`
  // (end <= block.rows()).
  void read(std::size_t begin, std::size_t end, double* out);

  // The decoded rows of subchunk `chunk` (block.subchunk_rows(chunk)
  // doubles); valid until the next cursor call.
  [[nodiscard]] const double* subchunk(std::size_t chunk);

 private:
  const Block* block_;
  std::size_t cached_chunk_ = static_cast<std::size_t>(-1);
  double buf_[Block::kSubchunkRows] = {};
};

}  // namespace envmon::tsdb
