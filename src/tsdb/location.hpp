#pragma once
// Location keys for environmental records.
//
// The BG/Q environmental database keys every sensor sample by its physical
// location ("R00-M0-N04-J17" = rack 0, midplane 0, node board 4, compute
// card 17 — the scheme IBM documents in the BG/Q system administration
// redbook).  We parse and generate that scheme, and reuse it loosely for
// the other platforms ("HOST-S0" for a CPU socket, "HOST-GPU0", ...).

#include <optional>
#include <string>
#include <string_view>

namespace envmon::tsdb {

struct Location {
  int rack = -1;      // Rxx
  int midplane = -1;  // Mx
  int board = -1;     // Nxx (node board)
  int card = -1;      // Jxx (compute card)

  [[nodiscard]] std::string to_string() const;

  // Hierarchy tests: a location "contains" another if it is an ancestor
  // (e.g. R00-M0 contains R00-M0-N04-J17).
  [[nodiscard]] bool contains(const Location& other) const;

  friend bool operator==(const Location&, const Location&) = default;
};

// Parses strings like "R00", "R00-M1", "R00-M1-N04", "R00-M1-N04-J17".
[[nodiscard]] std::optional<Location> parse_location(std::string_view s);

[[nodiscard]] Location rack_location(int rack);
[[nodiscard]] Location midplane_location(int rack, int midplane);
[[nodiscard]] Location board_location(int rack, int midplane, int board);
[[nodiscard]] Location card_location(int rack, int midplane, int board, int card);

}  // namespace envmon::tsdb
