#include "tsdb/codec.hpp"

#include <bit>

namespace envmon::tsdb {

namespace {

// Control-code buckets for delta-of-delta residuals, widest first bit
// pattern.  `bits` is the two's-complement payload width; a residual
// fits when it round-trips through sign extension at that width.
struct DodBucket {
  std::uint64_t prefix;
  unsigned prefix_bits;
  unsigned bits;
};
constexpr DodBucket kDodBuckets[] = {
    {0b10, 2, 7},      // |dod| <~ 64: per-tick jitter
    {0b110, 3, 14},    // scheduling hiccups
    {0b1110, 4, 24},   // interval changes
    {0b11110, 5, 40},  // large regime changes (ns-scale interval swaps)
};
constexpr unsigned kDodEscapePrefixBits = 5;  // 0b11111 + 64 raw bits

[[nodiscard]] constexpr bool fits_signed(std::int64_t v, unsigned bits) {
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  return v >= lo && v <= hi;
}

[[nodiscard]] constexpr std::int64_t sign_extend(std::uint64_t raw, unsigned bits) {
  const std::uint64_t mask = std::uint64_t{1} << (bits - 1);
  const std::uint64_t value = raw & ((std::uint64_t{1} << bits) - 1);
  return static_cast<std::int64_t>((value ^ mask) - mask);
}

}  // namespace

void BitWriter::put_bits(std::uint64_t value, unsigned count) {
  // Mask so callers can pass unshifted values.
  if (count < 64) value &= (std::uint64_t{1} << count) - 1;
  while (count > 0) {
    const unsigned used = static_cast<unsigned>(bit_size_ & 7u);
    if (used == 0) bytes_.push_back(0);
    const unsigned room = 8 - used;
    const unsigned take = count < room ? count : room;
    const std::uint64_t chunk = value >> (count - take);
    bytes_.back() = static_cast<std::uint8_t>(
        bytes_.back() | ((chunk & ((1u << take) - 1u)) << (room - take)));
    bit_size_ += take;
    count -= take;
  }
}

std::uint64_t BitReader::get_bits(unsigned count) {
  std::uint64_t value = 0;
  while (count > 0) {
    const std::size_t byte = bit_pos_ >> 3;
    if (byte >= bytes_.size()) {
      exhausted_ = true;
      value <<= count;  // zero-fill: total function, no OOB read
      bit_pos_ += count;
      return value;
    }
    const unsigned used = static_cast<unsigned>(bit_pos_ & 7u);
    const unsigned room = 8 - used;
    const unsigned take = count < room ? count : room;
    const unsigned shift = room - take;
    const std::uint8_t chunk =
        static_cast<std::uint8_t>((static_cast<unsigned>(bytes_[byte]) >> shift) &
                                  ((1u << take) - 1u));
    value = (value << take) | chunk;
    bit_pos_ += take;
    count -= take;
  }
  return value;
}

void DeltaOfDeltaEncoder::append(std::int64_t value, BitWriter& out) {
  if (first_) {
    first_ = false;
    prev_ = value;
    out.put_bits(static_cast<std::uint64_t>(value), 64);
    return;
  }
  // Deltas may overflow int64 on adversarial inputs (fuzzing): do the
  // arithmetic in uint64, where wraparound is defined and the decoder's
  // matching wraparound restores the exact value.
  const std::int64_t delta = static_cast<std::int64_t>(
      static_cast<std::uint64_t>(value) - static_cast<std::uint64_t>(prev_));
  const std::int64_t dod = static_cast<std::int64_t>(
      static_cast<std::uint64_t>(delta) - static_cast<std::uint64_t>(prev_delta_));
  prev_ = value;
  prev_delta_ = delta;
  if (dod == 0) {
    out.put_bit(false);
    return;
  }
  for (const auto& bucket : kDodBuckets) {
    if (fits_signed(dod, bucket.bits)) {
      out.put_bits(bucket.prefix, bucket.prefix_bits);
      out.put_bits(static_cast<std::uint64_t>(dod), bucket.bits);
      return;
    }
  }
  out.put_bits((1u << kDodEscapePrefixBits) - 1u, kDodEscapePrefixBits);
  out.put_bits(static_cast<std::uint64_t>(dod), 64);
}

std::int64_t DeltaOfDeltaDecoder::next(BitReader& in) {
  if (first_) {
    first_ = false;
    prev_ = static_cast<std::int64_t>(in.get_bits(64));
    return prev_;
  }
  std::int64_t dod = 0;
  if (in.get_bit()) {
    unsigned bucket = 0;
    while (bucket + 1 < kDodEscapePrefixBits && in.get_bit()) ++bucket;
    if (bucket < std::size(kDodBuckets)) {
      dod = sign_extend(in.get_bits(kDodBuckets[bucket].bits), kDodBuckets[bucket].bits);
    } else {
      dod = static_cast<std::int64_t>(in.get_bits(64));
    }
  }
  prev_delta_ = static_cast<std::int64_t>(static_cast<std::uint64_t>(prev_delta_) +
                                          static_cast<std::uint64_t>(dod));
  prev_ = static_cast<std::int64_t>(static_cast<std::uint64_t>(prev_) +
                                    static_cast<std::uint64_t>(prev_delta_));
  return prev_;
}

void XorEncoder::append(double value, BitWriter& out) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  if (first_) {
    first_ = false;
    prev_bits_ = bits;
    out.put_bits(bits, 64);
    return;
  }
  const std::uint64_t x = bits ^ prev_bits_;
  prev_bits_ = bits;
  if (x == 0) {
    out.put_bit(false);
    return;
  }
  out.put_bit(true);
  unsigned leading = static_cast<unsigned>(std::countl_zero(x));
  const unsigned trailing = static_cast<unsigned>(std::countr_zero(x));
  if (leading > 31) leading = 31;  // 5-bit header field
  if (window_valid_ && leading >= window_leading_ && trailing >= window_trailing_) {
    // Fits the previous window: control '0' + meaningful bits only.
    out.put_bit(false);
    out.put_bits(x >> window_trailing_, 64 - window_leading_ - window_trailing_);
    return;
  }
  window_leading_ = leading;
  window_trailing_ = trailing;
  window_valid_ = true;
  const unsigned meaningful = 64 - leading - trailing;
  out.put_bit(true);
  out.put_bits(leading, 5);
  out.put_bits(meaningful - 1, 6);
  out.put_bits(x >> trailing, meaningful);
}

double XorDecoder::next(BitReader& in) {
  if (first_) {
    first_ = false;
    prev_bits_ = in.get_bits(64);
    return std::bit_cast<double>(prev_bits_);
  }
  if (!in.get_bit()) return std::bit_cast<double>(prev_bits_);
  if (in.get_bit()) {
    window_leading_ = static_cast<unsigned>(in.get_bits(5));
    window_trailing_ = 0;
    const unsigned meaningful = static_cast<unsigned>(in.get_bits(6)) + 1;
    if (window_leading_ + meaningful <= 64) {
      window_trailing_ = 64 - window_leading_ - meaningful;
    } else {
      window_leading_ = 64 - meaningful;  // corrupt header: clamp, stay total
    }
    window_valid_ = true;
  } else if (!window_valid_) {
    // Corrupt stream: window reference before any window definition.
    window_leading_ = 0;
    window_trailing_ = 0;
    window_valid_ = true;
  }
  const unsigned meaningful = 64 - window_leading_ - window_trailing_;
  const std::uint64_t x = in.get_bits(meaningful) << window_trailing_;
  prev_bits_ ^= x;
  return std::bit_cast<double>(prev_bits_);
}

}  // namespace envmon::tsdb
