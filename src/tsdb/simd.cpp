// Runtime dispatch for the vectorized decode & fold engine.
//
// The variant is chosen once, on first use: probe the CPU (best of
// AVX2 > SSE4.2 > scalar among the variants compiled in), then apply
// the ENVMON_SIMD override if it names an available variant.  An
// override naming an unavailable variant is ignored — tests that pin a
// variant must check dispatched_variant() rather than assume.

#include "tsdb/simd.hpp"

#include <cstdlib>
#include <cstring>

namespace envmon::tsdb::simd {

const Kernels& scalar_kernels();
#if defined(ENVMON_SIMD_X86)
const Kernels& sse42_kernels();
const Kernels& avx2_kernels();
#endif

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kScalar: return "scalar";
    case Variant::kSse42: return "sse42";
    case Variant::kAvx2: return "avx2";
  }
  return "scalar";
}

bool variant_available(Variant v) {
#if defined(ENVMON_SIMD_X86)
  switch (v) {
    case Variant::kScalar: return true;
    case Variant::kSse42: return __builtin_cpu_supports("sse4.2") != 0;
    case Variant::kAvx2: return __builtin_cpu_supports("avx2") != 0;
  }
  return false;
#else
  return v == Variant::kScalar;
#endif
}

const Kernels& kernels(Variant v) {
#if defined(ENVMON_SIMD_X86)
  if (v == Variant::kAvx2 && variant_available(Variant::kAvx2)) return avx2_kernels();
  if (v == Variant::kSse42 && variant_available(Variant::kSse42)) return sse42_kernels();
#else
  (void)v;
#endif
  return scalar_kernels();
}

namespace {

[[nodiscard]] std::uint64_t bits_of(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, 8);
  return b;
}

[[nodiscard]] double canonical_quiet_nan() {
  constexpr std::uint64_t kQuietNan = 0x7ff8'0000'0000'0000ull;
  double d;
  std::memcpy(&d, &kQuietNan, 8);
  return d;
}

}  // namespace

void FoldCombine::add(const SubchunkFold& f) {
  sum += f.sum;
  sum_sq += f.sum_sq;
  if (f.finite > 0) {
    if (finite == 0) {
      min = f.min;
      max = f.max;
    } else {
      if (f.min < min) min = f.min;
      if (f.max > max) max = f.max;
    }
    if (f.min == 0.0 && bits_of(f.min) != 0) min_has_neg_zero = true;
    if (f.max == 0.0 && bits_of(f.max) == 0) max_has_pos_zero = true;
    finite += f.finite;
  }
}

SubchunkFold FoldCombine::finish() const {
  SubchunkFold out;
  out.sum = sum != sum ? canonical_quiet_nan() : sum;
  out.sum_sq = sum_sq != sum_sq ? canonical_quiet_nan() : sum_sq;
  out.min = min;
  out.max = max;
  out.finite = finite;
  if (finite > 0 && out.min == 0.0) out.min = min_has_neg_zero ? -0.0 : 0.0;
  if (finite > 0 && out.max == 0.0) out.max = max_has_pos_zero ? 0.0 : -0.0;
  return out;
}

namespace {

Variant choose_variant() {
  Variant best = Variant::kScalar;
  if (variant_available(Variant::kSse42)) best = Variant::kSse42;
  if (variant_available(Variant::kAvx2)) best = Variant::kAvx2;
  const char* force = std::getenv("ENVMON_SIMD");
  if (force != nullptr && *force != '\0') {
    if (std::strcmp(force, "scalar") == 0 || std::strcmp(force, "portable") == 0) {
      best = Variant::kScalar;
    } else if ((std::strcmp(force, "sse42") == 0 || std::strcmp(force, "sse4.2") == 0) &&
               variant_available(Variant::kSse42)) {
      best = Variant::kSse42;
    } else if (std::strcmp(force, "avx2") == 0 && variant_available(Variant::kAvx2)) {
      best = Variant::kAvx2;
    }
  }
  return best;
}

}  // namespace

Variant dispatched_variant() {
  static const Variant v = choose_variant();
  return v;
}

const Kernels& active() {
  static const Kernels& k = kernels(dispatched_variant());
  return k;
}

}  // namespace envmon::tsdb::simd
