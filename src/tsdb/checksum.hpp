#pragma once
// Checksums and content addresses for the durable storage layer.
//
// Two different integrity mechanisms, for two different questions:
//
//  * crc32c() — CRC-32C (Castagnoli polynomial, the iSCSI/ext4/LevelDB
//    choice) over segment extent payloads and WAL record payloads.
//    Answers "did these bytes survive the disk?"; verified on every
//    extent load and every WAL record replayed.
//  * ContentHash / content_hash() — a 128-bit mixing hash over the
//    compressed extent payload.  Answers "have I stored these bytes
//    already?" — the dedup index key that gives sealed blocks their
//    content-addressed identity (DESIGN.md §13).  Correctness never
//    rests on collision resistance: on an index hit the store compares
//    the stored extent byte-for-byte before reusing it, so a collision
//    costs one compare, not corruption.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace envmon::tsdb {

// CRC-32C over `bytes`, seeded with `seed` (0 for a fresh checksum;
// pass a previous result to continue an incremental computation).
[[nodiscard]] std::uint32_t crc32c(std::span<const std::uint8_t> bytes,
                                   std::uint32_t seed = 0);

struct ContentHash {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  friend auto operator<=>(const ContentHash&, const ContentHash&) = default;
  [[nodiscard]] std::string to_hex() const;
};

[[nodiscard]] ContentHash content_hash(std::span<const std::uint8_t> bytes);

}  // namespace envmon::tsdb
