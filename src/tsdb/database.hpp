#pragma once
// The environmental database.
//
// Blue Gene systems store periodically sampled sensor data, with timestamp
// and location, in an IBM DB2 relational database (the "environmental
// database", paper §II-A).  We stand in for DB2 with an in-memory tagged
// time-series store supporting the queries the study needs: range scans
// filtered by location prefix and metric, downsampling, and retention.
// The paper's observation that "a shorter polling interval ... would
// exceed the server's processing capacity" is modeled via an ingest-rate
// capacity check.

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/time.hpp"
#include "tsdb/location.hpp"

namespace envmon::tsdb {

struct Record {
  sim::SimTime timestamp;
  Location location;
  std::string metric;  // e.g. "input_power_watts", "coolant_flow_lpm"
  double value = 0.0;
};

struct QueryFilter {
  std::optional<Location> location_prefix;  // ancestor location
  std::optional<std::string> metric;
  std::optional<sim::SimTime> from;  // inclusive
  std::optional<sim::SimTime> to;    // inclusive
};

struct DatabaseOptions {
  // Maximum sustained ingest rate; beyond this inserts are rejected,
  // modeling the DB2 server's processing-capacity ceiling.
  double max_insert_rate_per_second = 10'000.0;
  // Sliding window over which the rate is evaluated.
  sim::Duration rate_window = sim::Duration::seconds(60);
  // Records older than this (relative to the newest record) are dropped.
  std::optional<sim::Duration> retention;
};

class EnvDatabase {
 public:
  // Registers insert/reject counters on obs::default_registry() unless
  // obs is disabled.
  explicit EnvDatabase(DatabaseOptions options = {});

  // When attached, every accepted insert lands on the tracer's event
  // ring (at the record's own timestamp — the db has no clock).
  void attach_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Inserts one record.  Fails with kResourceExhausted when the ingest
  // rate ceiling is exceeded.
  Status insert(const Record& record);

  // Range scan; results ordered by (timestamp, insert order).
  [[nodiscard]] std::vector<Record> query(const QueryFilter& filter) const;

  // Average of `metric` under `location_prefix` in fixed-width buckets.
  struct Bucket {
    sim::SimTime start;
    double mean = 0.0;
    std::size_t count = 0;
  };
  [[nodiscard]] std::vector<Bucket> downsample(const QueryFilter& filter,
                                               sim::Duration bucket_width) const;

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] std::size_t rejected_inserts() const { return rejected_; }

  // Applies retention; normally called internally on insert.
  void vacuum();

 private:
  [[nodiscard]] bool over_ingest_rate(sim::SimTime now) const;

  DatabaseOptions options_;
  std::vector<Record> records_;  // append-only, timestamp-ordered
  std::size_t rejected_ = 0;
  obs::Counter* inserts_metric_ = nullptr;
  obs::Counter* rejected_metric_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace envmon::tsdb
