#pragma once
// The environmental database.
//
// Blue Gene systems store periodically sampled sensor data, with timestamp
// and location, in an IBM DB2 relational database (the "environmental
// database", paper §II-A).  We stand in for DB2 with an in-memory tagged
// time-series store supporting the queries the study needs: range scans
// filtered by location prefix and metric, downsampling, aggregation, and
// retention.  The paper's observation that "a shorter polling interval
// ... would exceed the server's processing capacity" is modeled via an
// ingest-rate capacity check.
//
// Storage engine: records are sharded into per-(location, metric) series
// with metric names interned to dense ids (metric_table.hpp) and the
// shards indexed under a location-prefix tree (shard_index.hpp).  Each
// series is two-tier (series.hpp): a small mutable head buffer plus
// sealed immutable blocks of up to 4K rows compressed with Gorilla-style
// codecs (block.hpp, codec.hpp) — delta-of-delta timestamps and seq,
// XOR doubles — cut into 16-row subchunks with precomputed partial sums.
//
// query() resolves candidate series through the tree in O(matching
// series), prunes sealed blocks by summary, fans decode-and-filter over
// blocks across a small worker pool (query_threads), and merges on the
// global insertion sequence — results are byte-identical to a flat
// timestamp-ordered scan at any thread count.  downsample() and
// aggregate() push down to block/subchunk summaries: a bucket that fully
// covers a subchunk takes its precomputed sum without decoding values
// (aggregation pushdown), and only bucket-boundary subchunks decode.
// Aggregation is defined at subchunk granularity (DESIGN.md §10), which
// makes the pushdown, full-decode, compressed, and raw paths produce
// bit-identical results.  Downsample results are memoized in a small LRU
// cache keyed by (filter, bucket width), invalidated by any mutation —
// including retention drops.

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/time.hpp"
#include "tsdb/block.hpp"
#include "tsdb/location.hpp"
#include "tsdb/metric_table.hpp"
#include "tsdb/segment.hpp"
#include "tsdb/series.hpp"
#include "tsdb/shard_index.hpp"
#include "tsdb/wal.hpp"
#include "tsdb/wire.hpp"

namespace envmon::tsdb {

struct Record {
  sim::SimTime timestamp;
  Location location;
  std::string metric;  // e.g. "input_power_watts", "coolant_flow_lpm"
  double value = 0.0;
};

// Reserved metric namespace for the collector's own telemetry: the fleet
// engine self-scrapes its rolled-up health snapshot into the store each
// epoch under `envmon.self.*`.  Records in the namespace bypass the
// modeled DB2 ingest-rate ceiling and do not consume rate-window budget —
// watching the watcher must not eat the processing capacity whose limits
// the paper's polling-interval analysis is about.  Ordering and
// retention rules apply unchanged.
inline constexpr std::string_view kSelfMetricPrefix = "envmon.self.";

[[nodiscard]] inline bool is_self_metric(std::string_view metric) {
  return metric.substr(0, kSelfMetricPrefix.size()) == kSelfMetricPrefix;
}

struct QueryFilter {
  std::optional<Location> location_prefix;  // ancestor location
  std::optional<std::string> metric;
  std::optional<sim::SimTime> from;  // inclusive
  std::optional<sim::SimTime> to;    // inclusive
};

struct DatabaseOptions {
  // Maximum sustained ingest rate; beyond this inserts are rejected,
  // modeling the DB2 server's processing-capacity ceiling.
  double max_insert_rate_per_second = 10'000.0;
  // Sliding window over which the rate is evaluated.
  sim::Duration rate_window = sim::Duration::seconds(60);
  // Records older than this (relative to the newest record) are dropped.
  std::optional<sim::Duration> retention;
  // Distinct downsample results memoized between mutations.
  std::size_t downsample_cache_capacity = 16;
  // Sealed blocks hold codec bitstreams when true; raw column copies
  // when false (identical layout and semantics — the benches use the
  // raw mode as the flat-scan reference engine).
  bool compress_blocks = true;
  // Serve fully-covered downsample buckets / aggregate windows from
  // block and subchunk summaries instead of decoding values.  Results
  // are bit-identical either way; off is the reference configuration.
  bool aggregation_pushdown = true;
  // Worker threads query() may fan sealed-block decodes over.  1 =
  // serial.  Output is byte-identical at any setting.
  std::size_t query_threads = 1;
  // Minimum candidate rows before query() spawns workers at all.
  std::size_t parallel_query_min_rows = 16'384;
  // Durable-storage knobs; all ignored until open() attaches a
  // directory (the store is purely in-memory otherwise).
  struct DurabilityOptions {
    // When the layer fsyncs (wal.hpp).  Write *ordering* — active
    // segment before the WAL records that reference its extents — holds
    // under every policy.
    FsyncPolicy fsync_policy = FsyncPolicy::kOnSeal;
    // The WAL is rotated (checkpoint into a fresh file, older files
    // deleted) once it grows past this.
    std::size_t wal_rotate_bytes = 16u << 20;
    // Active segment files seal and rotate past this (segment.hpp).
    std::size_t segment_rotate_bytes = 8u << 20;
    // Resident-byte bound for sealed blocks: past it, durable clean
    // blocks are evicted (oldest seq first) and re-materialized from
    // their mapped extents on demand.  0 = unbounded, no eviction.
    std::size_t max_resident_sealed_bytes = 0;
  };
  DurabilityOptions durability;
};

class EnvDatabase {
 public:
  // Registers insert/reject/seal/pushdown counters plus query latency /
  // rows-scanned histograms on obs::default_registry() unless obs is
  // disabled.
  explicit EnvDatabase(DatabaseOptions options = {});

  // When attached, every accepted insert lands on the tracer's event
  // ring (at the record's own timestamp — the db has no clock).
  void attach_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Routes inserts through `injector` (site fault::sites::kTsdb by
  /// default): an injected failure rejects the insert — one intercept
  /// per insert() and per insert_batch() call, modeling the DB2 server
  /// being unreachable.  The store has no cost meter, so delay and
  /// corruption schedules are ignored here.
  void attach_fault_hook(fault::Injector& injector,
                         std::string site = std::string(fault::sites::kTsdb)) {
    fault_hook_.attach(injector, std::move(site));
  }

  // --- Durable storage lifecycle (DESIGN.md §13) ---
  //
  // open() attaches `dir` (created if missing) and recovers whatever a
  // previous instance left there: segment files are indexed (O(1) via
  // their footers), the newest WAL holding a valid leading checkpoint
  // is replayed — truncating at the first torn or corrupt record — and
  // queries then return byte-identical results to the uninterrupted
  // run, up to the last durable record.  Must be called on an empty
  // database, before any insert.
  struct RecoveryInfo {
    bool recovered = false;  // a prior state was restored from dir
    std::uint64_t wal_frames_replayed = 0;
    std::uint64_t wal_bytes_replayed = 0;
    bool wal_truncated = false;  // a torn/corrupt tail was discarded
    std::uint64_t rows_recovered = 0;
    std::uint64_t blocks_recovered = 0;  // sealed blocks re-referenced
    double recovery_seconds = 0.0;
  };
  Status open(const std::string& dir);
  // Writes out buffered WAL records and fsyncs segment-then-WAL.
  Status flush();
  // Checkpoints into a fresh WAL and closes all files.  A database that
  // is destroyed *without* close() models a crash: nothing is written
  // at destruction, and the next open() replays the WAL.
  Status close();
  [[nodiscard]] bool durable() const { return durable_ != nullptr; }
  [[nodiscard]] const RecoveryInfo& recovery_info() const { return recovery_; }

  // Durable-layer introspection (zeros when not durable).
  struct DurableStats {
    std::uint64_t wal_bytes = 0;          // framed bytes appended this run
    std::uint64_t wal_frames = 0;
    std::uint64_t segments_open = 0;      // live segment files
    std::uint64_t extents_appended = 0;   // physical extent writes
    std::uint64_t dedup_hits = 0;         // seals served by an existing extent
    std::uint64_t cold_loads = 0;         // evicted-block materializations
    std::uint64_t quarantined = 0;        // checksum/decode failures
    std::uint64_t segments_deleted = 0;   // dead segment files unlinked
    std::uint64_t evicted_blocks = 0;
    std::uint64_t disk_bytes = 0;
    std::uint64_t resident_sealed_bytes = 0;
  };
  [[nodiscard]] DurableStats durable_stats() const;

  // Evicts durable clean sealed blocks (oldest seq first) until the
  // resident sealed tier is at most `target_bytes`; returns blocks
  // evicted.  Runs automatically when max_resident_sealed_bytes is set.
  std::size_t evict_sealed_blocks(std::size_t target_bytes);

  // Inserts one record.  Fails with kResourceExhausted when the ingest
  // rate ceiling is exceeded, kInvalidArgument when out of order.
  Status insert(const Record& record);

  // Batch ingest: per-record validation with skip-and-continue semantics
  // (a rejected record is counted and dropped; the rest of the batch
  // still lands), amortizing the capacity check, metric interning, the
  // shard-index walk (once per run of same-series records, which also
  // pre-reserves the head buffer for the run), and the retention pass
  // (run once, after the batch) across the batch.  This is the path the
  // collection layers use: one call per poll.
  struct BatchResult {
    std::size_t accepted = 0;
    std::size_t rejected_out_of_order = 0;
    std::size_t rejected_rate_limited = 0;
    std::size_t rejected_unavailable = 0;  // injected server outage
    [[nodiscard]] std::size_t rejected() const {
      return rejected_out_of_order + rejected_rate_limited + rejected_unavailable;
    }
    [[nodiscard]] bool all_accepted() const { return rejected() == 0; }
    // Reject categories mapped onto the shared Status taxonomy
    // (common/status.hpp).  The envmond wire protocol forwards these
    // exact codes in BatchReply, so a remote producer observes the same
    // StatusCode an in-process insert_batch() caller would.
    [[nodiscard]] std::array<std::pair<StatusCode, std::size_t>, 3> by_code() const {
      return {{{StatusCode::kInvalidArgument, rejected_out_of_order},
               {StatusCode::kResourceExhausted, rejected_rate_limited},
               {StatusCode::kUnavailable, rejected_unavailable}}};
    }
  };
  BatchResult insert_batch(std::span<const Record> records);

  // Seals every series head holding at least `min_rows` rows into an
  // immutable block; returns blocks created.  The fleet ingest worker
  // calls this on epoch boundaries; benches flush with min_rows = 1.
  // Query results are unaffected (sealing preserves rows, ordering, and
  // the subchunk aggregation grid).
  std::size_t seal_blocks(std::size_t min_rows = 1);

  // Range scan; results ordered by (timestamp, insert order).
  [[nodiscard]] std::vector<Record> query(const QueryFilter& filter) const;

  // Average of `metric` under `location_prefix` in fixed-width buckets.
  struct Bucket {
    sim::SimTime start;
    double mean = 0.0;
    std::size_t count = 0;
  };
  [[nodiscard]] std::vector<Bucket> downsample(const QueryFilter& filter,
                                               sim::Duration bucket_width) const;

  // Whole-window aggregate with summary pushdown: a sealed block fully
  // inside the filter window contributes its summary without decoding.
  // min/max skip NaN rows; mean/variance come from the same left-to-
  // right folds the decode path would produce (bit-identical).
  struct Aggregate {
    std::size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    double sum_sq = 0.0;
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };
  [[nodiscard]] Aggregate aggregate(const QueryFilter& filter) const;

  [[nodiscard]] std::size_t size() const { return total_rows_; }
  [[nodiscard]] std::size_t rejected_inserts() const { return rejected_; }

  // Applies retention; normally called internally on insert.  Whole
  // expired blocks drop without decoding; at most one boundary block
  // per series is re-materialized.
  void vacuum();

  // Engine introspection (benches and tests; cumulative since construction).
  struct QueryStats {
    std::uint64_t queries = 0;         // query() + downsample() + aggregate() calls
    std::uint64_t rows_scanned = 0;    // rows matched after index + time narrowing
    std::uint64_t rows_decoded = 0;    // value-column rows actually decoded
    std::uint64_t series_touched = 0;  // candidate series resolved by the index
    std::uint64_t cache_hits = 0;      // downsample results served from cache
    std::uint64_t cache_misses = 0;
    std::uint64_t blocks_sealed = 0;   // head seals (auto + explicit)
    std::uint64_t pushdown_rows = 0;   // rows aggregated from summaries alone
    std::uint64_t pushdown_chunks = 0; // subchunk/block summaries consumed
  };
  [[nodiscard]] const QueryStats& query_stats() const { return stats_; }
  [[nodiscard]] std::size_t series_count() const { return series_.size(); }
  [[nodiscard]] std::size_t metric_count() const { return metrics_.size(); }
  // Live sealed blocks across all series (O(series)).
  [[nodiscard]] std::size_t sealed_block_count() const;
  // Approximate heap footprint of the store: head columns, sealed block
  // streams, interned names, the ingest-rate window, and the downsample
  // cache (whose entries used to go unaccounted).
  [[nodiscard]] std::size_t bytes_used() const;

 private:
  struct DownsampleKey {
    std::array<int, 4> prefix{-1, -1, -1, -1};  // rack/midplane/board/card
    bool has_prefix = false;
    std::optional<MetricId> metric;
    std::optional<std::int64_t> from_ns, to_ns;
    std::int64_t width_ns = 0;
    friend auto operator<=>(const DownsampleKey&, const DownsampleKey&) = default;
  };
  struct CacheEntry {
    std::vector<Bucket> buckets;
    std::uint64_t last_used = 0;
  };
  // One unit of decode work for the query executor: a sealed block of
  // one series, or its head (block < 0).
  struct ScanPart {
    std::uint32_t sid = 0;
    std::int32_t block = -1;
    std::size_t est_rows = 0;
  };
  struct DecodedRow {
    std::uint64_t seq = 0;
    std::int64_t ts_ns = 0;
    double value = 0.0;
    std::uint32_t sid = 0;
  };

  // Durable-layer plumbing (all no-ops until open()).
  struct Durable {
    std::string dir;
    BlockStore store;
    WalWriter wal;
    std::uint32_t wal_number = 0;  // current wal-NNNNNN.log
    // Accepted inserts buffered for the next kInsertBatch frame (one
    // frame per insert()/insert_batch() call, or earlier if a seal or
    // vacuum record needs the rows on disk first).
    wire::Writer pending;
    std::size_t pending_rows = 0;
    std::uint64_t metrics_logged = 0;  // metric defs already in the WAL
    std::uint64_t evicted_blocks = 0;
    // A seal or retention record was written since the last fsync; the
    // kOnSeal policy syncs at these barriers.
    bool barrier = false;
  };

  [[nodiscard]] bool over_ingest_rate(sim::SimTime now);
  void note_accept(const Record& record, std::uint32_t sid);
  void append_row(const Record& record, MetricId metric);
  // Resolves (location, metric) to a series id, creating the series —
  // store-attached when durable — on first use.
  std::uint32_t ensure_series(const Location& location, MetricId metric);
  std::size_t apply_retention_cutoff(std::int64_t cutoff_ns);
  // WAL emission.  Ordering rules: metric defs precede the first frame
  // using the id; buffered inserts flush before any seal/vacuum frame
  // that depends on them.
  void dlog_frame(WalRecordType type, std::span<const std::uint8_t> payload);
  void dlog_insert(const Record& record, MetricId metric);
  void dlog_flush_inserts();
  void dlog_seal(std::uint32_t sid);
  void dlog_vacuum(std::int64_t cutoff_ns);
  // fsync pair in dependency order: active segment, then WAL.
  Status sync_durable();
  void after_durable_write();
  // Checkpoint rotation: full state into a fresh WAL (tmp + rename),
  // older WAL files deleted.
  void encode_checkpoint(wire::Writer& out) const;
  bool decode_checkpoint(std::span<const std::uint8_t> payload);
  Status write_checkpoint_wal();
  // Replay machinery.
  Status recover(RecoveryInfo& info);
  bool apply_wal_frame(WalRecordType type, std::span<const std::uint8_t> payload);
  void reset_state();
  void maybe_evict();
  void update_durable_metrics();
  // Candidate series ids for a filter, in deterministic index order;
  // false when the filter names a metric that was never ingested.
  bool resolve_series(const QueryFilter& filter, std::vector<std::uint32_t>& sids) const;
  void collect_parts(std::span<const std::uint32_t> sids, std::optional<std::int64_t> from_ns,
                     std::optional<std::int64_t> to_ns, std::vector<ScanPart>& parts) const;
  void note_query(std::uint64_t rows_scanned, double elapsed_ms) const;
  void note_seal(std::size_t blocks);
  void update_footprint_metrics();

  DatabaseOptions options_;
  MetricTable metrics_;
  std::vector<Series> series_;
  ShardIndex index_;
  std::unique_ptr<Durable> durable_;
  RecoveryInfo recovery_;
  bool replaying_ = false;  // inside recover(): no re-logging, no tracer

  // Accepted-record timestamps inside the rate window, trimmed lazily
  // from the front (time only moves forward).  Unlike the flat store's
  // binary search over live records, this is O(1) amortized — and
  // records dropped by *retention* stay counted until they age out of
  // the window, so vacuum() cannot retroactively free ingest budget.
  std::deque<std::int64_t> rate_window_;

  std::size_t total_rows_ = 0;
  std::uint64_t next_seq_ = 0;
  bool any_accepted_ = false;
  std::int64_t last_ts_ns_ = 0;    // newest accepted timestamp
  std::int64_t oldest_ts_ns_ = 0;  // oldest retained timestamp (vacuum early-out)
  std::size_t rejected_ = 0;
  std::uint64_t generation_ = 0;  // bumped on mutation; invalidates the cache

  mutable QueryStats stats_;
  mutable std::map<DownsampleKey, CacheEntry> downsample_cache_;
  mutable std::uint64_t cache_generation_ = 0;
  mutable std::uint64_t cache_tick_ = 0;

  obs::Counter* inserts_metric_ = nullptr;
  obs::Counter* rejected_metric_ = nullptr;
  obs::Counter* cache_hits_metric_ = nullptr;
  obs::Counter* cache_misses_metric_ = nullptr;
  obs::Counter* seals_metric_ = nullptr;
  obs::Counter* pushdown_metric_ = nullptr;
  obs::Histogram* query_latency_metric_ = nullptr;
  obs::Histogram* rows_scanned_metric_ = nullptr;
  obs::Gauge* series_gauge_ = nullptr;
  obs::Gauge* bytes_used_gauge_ = nullptr;
  obs::Gauge* bytes_per_record_gauge_ = nullptr;
  obs::Counter* wal_bytes_metric_ = nullptr;
  obs::Counter* dedup_metric_ = nullptr;
  obs::Counter* cold_loads_metric_ = nullptr;
  obs::Counter* quarantined_metric_ = nullptr;
  obs::Counter* evicted_metric_ = nullptr;
  obs::Gauge* segments_open_gauge_ = nullptr;
  obs::Gauge* disk_bytes_gauge_ = nullptr;
  obs::Gauge* recovery_seconds_gauge_ = nullptr;
  obs::Counter* decode_rows_metric_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  fault::Hook fault_hook_;
};

}  // namespace envmon::tsdb
