#include "tsdb/shard_index.hpp"

#include <array>

namespace envmon::tsdb {

namespace {

std::array<int, 4> fields_of(const Location& loc) {
  return {loc.rack, loc.midplane, loc.board, loc.card};
}

}  // namespace

std::uint32_t& ShardIndex::slot(const Location& location, MetricId metric) {
  Node* node = &root_;
  for (const int field : fields_of(location)) {
    node = &node->children[field];
  }
  const auto [it, created] = node->series.try_emplace(metric, kNoSeries);
  if (created) ++series_count_;
  return it->second;
}

std::uint32_t ShardIndex::find(const Location& location, MetricId metric) const {
  const Node* node = &root_;
  for (const int field : fields_of(location)) {
    const auto it = node->children.find(field);
    if (it == node->children.end()) return kNoSeries;
    node = &it->second;
  }
  const auto it = node->series.find(metric);
  return it == node->series.end() ? kNoSeries : it->second;
}

void ShardIndex::collect_node(const Node& node, const int* fields, int level,
                              std::optional<MetricId> metric,
                              std::vector<std::uint32_t>& out) {
  if (level == 4) {
    if (metric) {
      if (const auto it = node.series.find(*metric); it != node.series.end()) {
        out.push_back(it->second);
      }
    } else {
      for (const auto& [id, sid] : node.series) out.push_back(sid);
    }
    return;
  }
  const int want = fields == nullptr ? -1 : fields[level];
  if (want >= 0) {
    // A set filter level matches only that child: a record whose level is
    // unset (-1) is *not* contained by a prefix that pins the level.
    if (const auto it = node.children.find(want); it != node.children.end()) {
      collect_node(it->second, fields, level + 1, metric, out);
    }
    return;
  }
  for (const auto& [field, child] : node.children) {
    collect_node(child, fields, level + 1, metric, out);
  }
}

void ShardIndex::collect(const std::optional<Location>& prefix,
                         std::optional<MetricId> metric,
                         std::vector<std::uint32_t>& out) const {
  if (prefix) {
    const auto fields = fields_of(*prefix);
    collect_node(root_, fields.data(), 0, metric, out);
  } else {
    collect_node(root_, nullptr, 0, metric, out);
  }
}

}  // namespace envmon::tsdb
