#include "tsdb/block.hpp"

#include <cmath>
#include <cstring>

#include "tsdb/simd.hpp"
#include "tsdb/wire.hpp"

namespace envmon::tsdb {

namespace {
constexpr std::uint8_t kExtentFlagCompressed = 0x01;
}

Block Block::seal(std::span<const std::int64_t> ts, std::span<const double> values,
                  std::span<const std::uint64_t> seq, bool compress) {
  Block block;
  block.compressed_ = compress;
  const std::size_t n = ts.size();
  auto& s = block.summary_;
  s.rows = static_cast<std::uint32_t>(n);
  if (n > 0) {
    s.ts_min = ts.front();
    s.ts_max = ts.back();
    s.seq_first = seq.front();
    s.seq_last = seq.back();
  }
  // Canonical fold grammar (simd.hpp): fold each subchunk with the
  // dispatched kernel, combine left-to-right.  Every variant produces
  // the same bits, so sealed bytes never depend on the host ISA.
  const std::size_t chunks = (n + kSubchunkRows - 1) / kSubchunkRows;
  const auto& kernels = simd::active();
  simd::FoldCombine combine;
  block.subchunk_sums_.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * kSubchunkRows;
    const std::size_t end = begin + kSubchunkRows < n ? begin + kSubchunkRows : n;
    simd::SubchunkFold fold;
    kernels.fold_subchunk(values.data() + begin, end - begin, fold);
    block.subchunk_sums_.push_back(fold.sum);
    combine.add(fold);
  }
  const simd::SubchunkFold total = combine.finish();
  s.finite_rows = total.finite;
  s.value_min = total.min;
  s.value_max = total.max;
  s.value_sum = total.sum;
  s.value_sum_sq = total.sum_sq;

  if (!compress) {
    block.raw_ts_.assign(ts.begin(), ts.end());
    block.raw_seq_.assign(seq.begin(), seq.end());
    block.raw_values_.assign(values.begin(), values.end());
    return block;
  }

  BitWriter ts_writer;
  DeltaOfDeltaEncoder ts_encoder;
  for (const std::int64_t t : ts) ts_encoder.append(t, ts_writer);
  block.ts_stream_ = ts_writer.take();
  block.ts_stream_.shrink_to_fit();

  BitWriter seq_writer;
  DeltaOfDeltaEncoder seq_encoder;
  for (const std::uint64_t q : seq) {
    seq_encoder.append(static_cast<std::int64_t>(q), seq_writer);
  }
  block.seq_stream_ = seq_writer.take();
  block.seq_stream_.shrink_to_fit();

  BitWriter value_writer;
  block.value_chunk_offsets_.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    block.value_chunk_offsets_.push_back(static_cast<std::uint32_t>(value_writer.bit_size()));
    XorEncoder encoder;  // restart per subchunk: decodable without prefix
    const std::size_t begin = c * kSubchunkRows;
    const std::size_t end = begin + kSubchunkRows < n ? begin + kSubchunkRows : n;
    for (std::size_t i = begin; i < end; ++i) encoder.append(values[i], value_writer);
  }
  block.value_stream_ = value_writer.take();
  block.value_stream_.shrink_to_fit();
  return block;
}

void Block::decode_timestamps(std::vector<std::int64_t>& out) const {
  if (!compressed_) {
    out.assign(raw_ts_.begin(), raw_ts_.end());
    return;
  }
  out.resize(summary_.rows);
  simd::active().decode_dod(ts_stream_.data(), ts_stream_.size(), summary_.rows, out.data());
}

void Block::decode_seq(std::vector<std::uint64_t>& out) const {
  if (!compressed_) {
    out.assign(raw_seq_.begin(), raw_seq_.end());
    return;
  }
  out.resize(summary_.rows);
  // seq values are encoded as int64 deltas; the bit patterns round-trip.
  simd::active().decode_dod(seq_stream_.data(), seq_stream_.size(), summary_.rows,
                            reinterpret_cast<std::int64_t*>(out.data()));
}

void Block::decode_values(std::vector<double>& out) const {
  if (!compressed_) {
    out.assign(raw_values_.begin(), raw_values_.end());
    return;
  }
  out.resize(summary_.rows);
  simd::active().decode_xor_column(value_stream_.data(), value_stream_.size(),
                                   value_chunk_offsets_.data(), value_chunk_offsets_.size(),
                                   summary_.rows, out.data());
}

void Block::decode_subchunk_values(std::size_t chunk, double* out) const {
  const std::size_t count = subchunk_rows(chunk);
  if (!compressed_) {
    const double* src = raw_values_.data() + chunk * kSubchunkRows;
    for (std::size_t i = 0; i < count; ++i) out[i] = src[i];
    return;
  }
  simd::active().decode_xor_subchunk(value_stream_.data(), value_stream_.size(),
                                     value_chunk_offsets_[chunk], count, out);
}

void Block::decode_values_range(std::size_t begin, std::size_t end, double* out) const {
  BlockValueCursor cursor(*this);
  cursor.read(begin, end, out);
}

const double* BlockValueCursor::subchunk(std::size_t chunk) {
  if (!block_->compressed_) {
    return block_->raw_values_.data() + chunk * Block::kSubchunkRows;
  }
  if (chunk != cached_chunk_) {
    block_->decode_subchunk_values(chunk, buf_);
    cached_chunk_ = chunk;
  }
  return buf_;
}

void BlockValueCursor::read(std::size_t begin, std::size_t end, double* out) {
  while (begin < end) {
    const std::size_t chunk = begin / Block::kSubchunkRows;
    const std::size_t chunk_begin = chunk * Block::kSubchunkRows;
    const std::size_t chunk_end = chunk_begin + block_->subchunk_rows(chunk);
    const std::size_t stop = end < chunk_end ? end : chunk_end;
    const double* src = subchunk(chunk);
    std::memcpy(out, src + (begin - chunk_begin), (stop - begin) * sizeof(double));
    out += stop - begin;
    begin = stop;
  }
}

void Block::encode_extent(std::vector<std::uint8_t>& out) const {
  wire::Writer w;
  w.u8(compressed_ ? kExtentFlagCompressed : 0);
  w.u32(summary_.rows);
  w.u32(summary_.finite_rows);
  w.i64(summary_.ts_min);
  w.i64(summary_.ts_max);
  w.f64(summary_.value_min);
  w.f64(summary_.value_max);
  w.f64(summary_.value_sum);
  w.f64(summary_.value_sum_sq);
  w.u32(static_cast<std::uint32_t>(subchunk_sums_.size()));
  for (const double s : subchunk_sums_) w.f64(s);
  if (compressed_) {
    w.blob(ts_stream_);
    w.blob(value_stream_);
    for (const std::uint32_t off : value_chunk_offsets_) w.u32(off);
  } else {
    for (const std::int64_t t : raw_ts_) w.i64(t);
    for (const double v : raw_values_) w.f64(v);
  }
  out = w.take();
}

void Block::encode_seq_stream(std::vector<std::uint8_t>& out) const {
  if (compressed_) {
    out = seq_stream_;
    return;
  }
  wire::Writer w;
  for (const std::uint64_t q : raw_seq_) w.u64(q);
  out = w.take();
}

std::optional<Block> Block::decode_extent(std::span<const std::uint8_t> payload,
                                          std::span<const std::uint8_t> seq_stream,
                                          std::uint64_t seq_first, std::uint64_t seq_last) {
  wire::Reader r(payload);
  Block block;
  const std::uint8_t flags = r.u8();
  block.compressed_ = (flags & kExtentFlagCompressed) != 0;
  auto& s = block.summary_;
  s.rows = r.u32();
  s.finite_rows = r.u32();
  s.ts_min = r.i64();
  s.ts_max = r.i64();
  s.value_min = r.f64();
  s.value_max = r.f64();
  s.value_sum = r.f64();
  s.value_sum_sq = r.f64();
  s.seq_first = seq_first;
  s.seq_last = seq_last;
  if (!r.ok() || s.rows == 0 || s.rows > kMaxRows || s.finite_rows > s.rows ||
      (flags & ~kExtentFlagCompressed) != 0) {
    return std::nullopt;
  }
  const std::size_t chunks = (s.rows + kSubchunkRows - 1) / kSubchunkRows;
  if (r.u32() != chunks) return std::nullopt;
  block.subchunk_sums_.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) block.subchunk_sums_.push_back(r.f64());
  if (block.compressed_) {
    const auto ts = r.blob();
    const auto values = r.blob();
    block.ts_stream_.assign(ts.begin(), ts.end());
    block.value_stream_.assign(values.begin(), values.end());
    block.value_chunk_offsets_.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) block.value_chunk_offsets_.push_back(r.u32());
    block.seq_stream_.assign(seq_stream.begin(), seq_stream.end());
  } else {
    block.raw_ts_.reserve(s.rows);
    for (std::uint32_t i = 0; i < s.rows; ++i) block.raw_ts_.push_back(r.i64());
    block.raw_values_.reserve(s.rows);
    for (std::uint32_t i = 0; i < s.rows; ++i) block.raw_values_.push_back(r.f64());
    if (seq_stream.size() != static_cast<std::size_t>(s.rows) * sizeof(std::uint64_t)) {
      return std::nullopt;
    }
    wire::Reader sq(seq_stream);
    block.raw_seq_.reserve(s.rows);
    for (std::uint32_t i = 0; i < s.rows; ++i) block.raw_seq_.push_back(sq.u64());
  }
  if (!r.done()) return std::nullopt;
  return block;
}

std::size_t Block::bytes_used() const {
  return ts_stream_.capacity() + seq_stream_.capacity() + value_stream_.capacity() +
         value_chunk_offsets_.capacity() * sizeof(std::uint32_t) +
         raw_ts_.capacity() * sizeof(std::int64_t) +
         raw_seq_.capacity() * sizeof(std::uint64_t) +
         raw_values_.capacity() * sizeof(double) +
         subchunk_sums_.capacity() * sizeof(double);
}

}  // namespace envmon::tsdb
