#pragma once
// Record-oriented write-ahead log for the environmental database's
// mutable head (DESIGN.md §13).
//
// The WAL is a logical redo log: it records *accepted* mutations only —
// insert batches (the validated records, in acceptance order), seal
// markers (which extent a head became, with its per-reference seq
// sidecar), metric-id definitions, and retention cutoffs.  Replaying a
// WAL from its leading checkpoint record rebuilds the exact in-memory
// state, with sealed blocks left cold (extent references into segment
// files, not payload copies).
//
// Framing: every record is `u32 length | u32 crc32c | payload` where
// payload[0] is the record type.  The reader stops at the first frame
// whose length is implausible, whose bytes are short (torn tail), or
// whose CRC fails — and reports the clean prefix length so recovery can
// physically truncate the file there.  fsync is the caller's policy
// decision (FsyncPolicy): the writer only promises write ordering.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace envmon::tsdb {

// When the durable layer calls fsync on the WAL (and, ordered before
// it, the active segment).
enum class FsyncPolicy {
  kNone,    // only flush()/close(); kill -9 keeps all writes, power loss may not
  kOnSeal,  // every seal / retention barrier (the default)
  kAlways,  // every insert call; the kill -9 recovery gate runs under this
};

// Hard ceiling on one framed record (type byte + payload).  The writer
// rejects larger appends up front and the reader treats larger length
// prefixes as corruption — enforcing both sides keeps an oversized
// checkpoint from being written successfully only to be deemed corrupt
// (and silently discarded) at the next recovery.
inline constexpr std::uint32_t kWalMaxFrameBytes = 256u << 20;

// WAL record types (payload[0]).
enum class WalRecordType : std::uint8_t {
  kCheckpoint = 1,   // full-state snapshot; always a WAL file's first record
  kMetricDef = 2,    // {u32 id, string name} — precedes the id's first use
  kInsertBatch = 3,  // accepted records, in acceptance order
  kSeal = 4,         // head -> sealed block (series key, summary, extent ref, seq)
  kVacuum = 5,       // retention cutoff applied to every series
};

class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Creates a fresh WAL at `path` (the checkpoint flow writes to a
  // temporary name and renames once the checkpoint record is synced) or
  // opens an existing one for append at `resume_bytes` (the clean
  // prefix the reader found).
  Status create(const std::string& path);
  Status open_for_append(const std::string& path, std::uint64_t resume_bytes);

  // Appends one framed record; no fsync.  kInvalidArgument (before any
  // byte is written) when the frame would exceed kWalMaxFrameBytes.
  Status append(WalRecordType type, std::span<const std::uint8_t> payload);
  Status sync();
  Status close();

  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_; }
  [[nodiscard]] std::uint64_t frames_written() const { return frames_; }
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string path_;
  std::uint64_t bytes_ = 0;
  std::uint64_t frames_ = 0;
};

// Reads a WAL front to back, yielding clean frames until the first
// corruption (which ends iteration; valid_bytes() marks the boundary).
class WalReader {
 public:
  struct Frame {
    WalRecordType type;
    std::span<const std::uint8_t> payload;  // past the type byte
  };

  // Loads the whole file into memory (WAL files are rotation-bounded).
  Status open(const std::string& path);

  // Next clean frame, or nullopt at end-of-log / first corruption.
  [[nodiscard]] std::optional<Frame> next();

  // Bytes of clean prefix consumed so far (header + whole clean frames).
  [[nodiscard]] std::uint64_t valid_bytes() const { return valid_bytes_; }
  // True once a torn or corrupt frame ended iteration early.
  [[nodiscard]] bool truncated() const { return truncated_; }
  [[nodiscard]] std::uint64_t file_bytes() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
  std::uint64_t pos_ = 0;
  std::uint64_t valid_bytes_ = 0;
  bool truncated_ = false;
};

// Truncates `path` to `bytes` (recovery discarding a torn WAL tail).
Status truncate_file(const std::string& path, std::uint64_t bytes);

}  // namespace envmon::tsdb
