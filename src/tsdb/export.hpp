#pragma once
// CSV export/import for the environmental database — the practical
// interchange path: on the real system, administrators pull slices of
// the DB2 environmental tables into CSV for offline analysis.

#include <string>
#include <string_view>

#include "common/status.hpp"
#include "tsdb/database.hpp"

namespace envmon::tsdb {

// Renders the records matching `filter` as CSV with header
// timestamp_s,location,metric,value.
[[nodiscard]] std::string export_csv(const EnvDatabase& db, const QueryFilter& filter = {});

// Parses an exported CSV back into records and inserts them into `db`
// (which must accept them in timestamp order).  Returns the number of
// records inserted; fails on malformed rows or rejected inserts.
[[nodiscard]] Result<std::size_t> import_csv(std::string_view text, EnvDatabase& db);

}  // namespace envmon::tsdb
