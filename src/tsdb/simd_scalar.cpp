// Portable scalar variant — always compiled, always available; the
// reference the other variants must match bit for bit.
#define ENVMON_SIMD_KERNEL_NS scalar_impl
#include "tsdb/simd_kernels.hh"

namespace envmon::tsdb::simd {

const Kernels& scalar_kernels() {
  static const Kernels k = scalar_impl::make_kernels(Variant::kScalar);
  return k;
}

}  // namespace envmon::tsdb::simd
