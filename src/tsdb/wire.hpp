#pragma once
// Little-endian byte (de)serialization for the durable storage layer.
//
// Every on-disk integer in the segment and WAL formats (DESIGN.md §13)
// is fixed-width little-endian; doubles are their IEEE-754 bit patterns.
// Writer appends into a growable buffer; Reader is bounds-checked and
// *total*: reading past the end yields zeros and latches ok() == false
// instead of undefined behavior, so the recovery path can feed it
// arbitrary garbage (the WAL/segment fuzz tests do exactly that).

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace envmon::tsdb::wire {

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_le(bits);
  }
  void bytes(std::span<const std::uint8_t> b) { buf_.insert(buf_.end(), b.begin(), b.end()); }
  // Length-prefixed (u32) byte string.
  void blob(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    bytes(b);
  }
  void str(std::string_view s) {
    blob({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] bool empty() const { return buf_.empty(); }
  [[nodiscard]] std::span<const std::uint8_t> span() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  void clear() { buf_.clear(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (unsigned i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() { return static_cast<std::uint8_t>(get_le(1)); }
  [[nodiscard]] std::uint32_t u32() { return static_cast<std::uint32_t>(get_le(4)); }
  [[nodiscard]] std::uint64_t u64() { return get_le(8); }
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  // Length-prefixed byte string; an over-long prefix fails the read.
  [[nodiscard]] std::span<const std::uint8_t> blob() {
    const std::uint32_t n = u32();
    if (pos_ + n > bytes_.size()) {
      ok_ = false;
      pos_ = bytes_.size();
      return {};
    }
    const auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  [[nodiscard]] std::string str() {
    const auto b = blob();
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  // True once the payload is fully and exactly consumed.
  [[nodiscard]] bool done() const { return ok_ && pos_ == bytes_.size(); }

 private:
  std::uint64_t get_le(unsigned width) {
    if (pos_ + width > bytes_.size()) {
      ok_ = false;
      pos_ = bytes_.size();
      return 0;
    }
    std::uint64_t v = 0;
    for (unsigned i = 0; i < width; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += width;
    return v;
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace envmon::tsdb::wire
