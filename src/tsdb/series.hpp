#pragma once
// One shard of the environmental database: a single (location, metric)
// time series in structure-of-arrays layout.
//
// Inserts are globally timestamp-ordered (the database rejects
// out-of-order records), so every column here is sorted by construction:
// `ts_ns` ascends, and `seq` — the record's global insertion number —
// ascends too.  That makes time-range resolution a binary search and
// lets the database rebuild the flat store's (timestamp, insert order)
// result ordering by merging shards on `seq`.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "tsdb/location.hpp"
#include "tsdb/metric_table.hpp"

namespace envmon::tsdb {

class Series {
 public:
  Series(const Location& location, MetricId metric)
      : location_(location), metric_(metric) {}

  void append(std::int64_t ts_ns, double value, std::uint64_t seq) {
    ts_ns_.push_back(ts_ns);
    values_.push_back(value);
    seq_.push_back(seq);
  }

  // Drops the prefix with ts < cutoff_ns (retention); returns rows dropped.
  std::size_t drop_before(std::int64_t cutoff_ns);

  // Index range [first, last) of rows with from <= ts <= to (either bound
  // optional).  Binary search: O(log rows), not O(rows).
  struct RowRange {
    std::size_t first = 0;
    std::size_t last = 0;
    [[nodiscard]] std::size_t size() const { return last - first; }
  };
  [[nodiscard]] RowRange range(std::optional<std::int64_t> from_ns,
                               std::optional<std::int64_t> to_ns) const;

  [[nodiscard]] const Location& location() const { return location_; }
  [[nodiscard]] MetricId metric() const { return metric_; }
  [[nodiscard]] std::size_t size() const { return ts_ns_.size(); }
  [[nodiscard]] bool empty() const { return ts_ns_.empty(); }
  [[nodiscard]] std::int64_t ts_ns(std::size_t i) const { return ts_ns_[i]; }
  [[nodiscard]] double value(std::size_t i) const { return values_[i]; }
  [[nodiscard]] std::uint64_t seq(std::size_t i) const { return seq_[i]; }
  [[nodiscard]] std::int64_t front_ts_ns() const { return ts_ns_.front(); }

  // Approximate heap bytes held by the three columns.
  [[nodiscard]] std::size_t bytes_used() const {
    return ts_ns_.capacity() * sizeof(std::int64_t) +
           values_.capacity() * sizeof(double) + seq_.capacity() * sizeof(std::uint64_t);
  }

 private:
  Location location_;
  MetricId metric_;
  std::vector<std::int64_t> ts_ns_;
  std::vector<double> values_;
  std::vector<std::uint64_t> seq_;
};

}  // namespace envmon::tsdb
