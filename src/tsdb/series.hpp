#pragma once
// One shard of the environmental database: a single (location, metric)
// time series in a two-tier layout — a small mutable head buffer in
// structure-of-arrays form plus a run of sealed immutable blocks
// (block.hpp) holding everything older.
//
// Inserts are globally timestamp-ordered (the database rejects
// out-of-order records), so rows are sorted by construction: `ts_ns`
// ascends and `seq` — the record's global insertion number — ascends
// too, across blocks and head alike.  The head auto-seals into a block
// when it reaches Block::kMaxRows; the database can also flush shorter
// heads explicitly (epoch boundaries, benches).  Time-range resolution
// is a summary comparison per block plus a binary search in the head.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "tsdb/block.hpp"
#include "tsdb/location.hpp"
#include "tsdb/metric_table.hpp"

namespace envmon::tsdb {

class Series {
 public:
  Series(const Location& location, MetricId metric, bool compress)
      : location_(location), metric_(metric), compress_(compress) {}

  // Appends one row; returns true when the append sealed a full head
  // into a new block (the database counts seals).
  bool append(std::int64_t ts_ns, double value, std::uint64_t seq);

  // Grows the head for `extra` upcoming rows (batch ingest calls this
  // once per run of same-series records).  Bounded by the block size —
  // the head never holds more than Block::kMaxRows rows.
  void reserve_head(std::size_t extra);

  // Seals the head into a block if it holds at least `min_rows` rows;
  // returns true if a block was created.
  bool seal_head(std::size_t min_rows);

  // Drops rows with ts < cutoff_ns (retention); returns rows dropped.
  // Whole expired blocks are dropped without decoding; at most one
  // boundary block (straddling the cutoff) is decoded and
  // re-materialized as a smaller sealed block.
  std::size_t drop_before(std::int64_t cutoff_ns);

  [[nodiscard]] const Location& location() const { return location_; }
  [[nodiscard]] MetricId metric() const { return metric_; }
  [[nodiscard]] std::size_t size() const { return block_rows_ + head_ts_.size(); }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::int64_t front_ts_ns() const {
    return blocks_.empty() ? head_ts_.front() : blocks_.front().summary().ts_min;
  }

  // Sealed tier.
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] const Block& block(std::size_t i) const { return blocks_[i]; }

  // Mutable tier (the query engine reads the head columns in place).
  [[nodiscard]] std::size_t head_rows() const { return head_ts_.size(); }
  [[nodiscard]] const std::vector<std::int64_t>& head_ts() const { return head_ts_; }
  [[nodiscard]] const std::vector<double>& head_values() const { return head_values_; }
  [[nodiscard]] const std::vector<std::uint64_t>& head_seq() const { return head_seq_; }

  // Head index range [first, last) with from <= ts <= to (either bound
  // optional).  Binary search: O(log head rows).
  struct RowRange {
    std::size_t first = 0;
    std::size_t last = 0;
    [[nodiscard]] std::size_t size() const { return last - first; }
  };
  [[nodiscard]] RowRange head_range(std::optional<std::int64_t> from_ns,
                                    std::optional<std::int64_t> to_ns) const;

  // Approximate heap bytes held: head column capacities plus sealed
  // block bytes (cached — O(1), maintained on seal/drop).
  [[nodiscard]] std::size_t bytes_used() const {
    return head_ts_.capacity() * sizeof(std::int64_t) +
           head_values_.capacity() * sizeof(double) +
           head_seq_.capacity() * sizeof(std::uint64_t) +
           blocks_.capacity() * sizeof(Block) + block_bytes_;
  }

 private:
  void push_block(Block block);

  Location location_;
  MetricId metric_;
  bool compress_;
  std::vector<Block> blocks_;
  std::size_t block_rows_ = 0;   // total rows across sealed blocks
  std::size_t block_bytes_ = 0;  // cached sum of Block::bytes_used()
  std::vector<std::int64_t> head_ts_;
  std::vector<double> head_values_;
  std::vector<std::uint64_t> head_seq_;
};

}  // namespace envmon::tsdb
