#pragma once
// One shard of the environmental database: a single (location, metric)
// time series in a two-tier layout — a small mutable head buffer in
// structure-of-arrays form plus a run of sealed immutable blocks
// (block.hpp) holding everything older.
//
// Inserts are globally timestamp-ordered (the database rejects
// out-of-order records), so rows are sorted by construction: `ts_ns`
// ascends and `seq` — the record's global insertion number — ascends
// too, across blocks and head alike.  The head auto-seals into a block
// when it reaches Block::kMaxRows; the database can also flush shorter
// heads explicitly (epoch boundaries, benches).  Time-range resolution
// is a summary comparison per block plus a binary search in the head.
//
// With a BlockStore attached (EnvDatabase::open), every sealed block
// also gets a durable extent reference: sealing serializes the block's
// seq-independent payload into a segment file (deduplicating identical
// content across series — segment.hpp) and keeps the tiny seq sidecar
// stream here.  A sealed block whose payload is on disk can then be
// *evicted* — its in-memory Block dropped, only the 64-byte summary and
// the sidecar staying resident — and is lazily re-materialized from the
// mapped extent when a query touches it.  A materialization whose CRC
// fails quarantines the block: its rows vanish from query results (and
// a counter trips) instead of feeding garbage downstream.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "tsdb/block.hpp"
#include "tsdb/location.hpp"
#include "tsdb/metric_table.hpp"
#include "tsdb/segment.hpp"

namespace envmon::tsdb {

class Series {
 public:
  Series(const Location& location, MetricId metric, bool compress)
      : location_(location), metric_(metric), compress_(compress) {}

  // Durable mode: sealed blocks are serialized into `store` and become
  // evictable.  Attach before the first seal.
  void attach_store(BlockStore* store) { store_ = store; }

  // Appends one row; returns true when the append sealed a full head
  // into a new block (the database counts seals and WAL-logs them).
  bool append(std::int64_t ts_ns, double value, std::uint64_t seq);

  // Replay-path append: never auto-seals (the WAL's own seal records
  // re-create blocks at exactly the pre-crash boundaries).
  void append_raw(std::int64_t ts_ns, double value, std::uint64_t seq);

  // Grows the head for `extra` upcoming rows (batch ingest calls this
  // once per run of same-series records).  Bounded by the block size —
  // the head never holds more than Block::kMaxRows rows.
  void reserve_head(std::size_t extra);

  // Seals the head into a block if it holds at least `min_rows` rows;
  // returns true if a block was created.
  bool seal_head(std::size_t min_rows);

  // Replay path: adopts an already-durable sealed block (cold — no
  // in-memory Block) from its WAL seal record.  `rows_from_head` head
  // rows are consumed; returns false if the head does not hold exactly
  // that prefix (corrupt WAL).
  bool adopt_sealed(const BlockSummary& summary, const ExtentRef& ref,
                    std::vector<std::uint8_t> seq_stream, std::size_t rows_from_head);

  // Checkpoint-restore path: appends a cold durable block directly (the
  // checkpoint recorded it sealed; no head rows are involved).
  void restore_sealed(const BlockSummary& summary, const ExtentRef& ref,
                      std::vector<std::uint8_t> seq_stream);

  // Drops rows with ts < cutoff_ns (retention); returns rows dropped.
  // Whole expired blocks are dropped without decoding (their extent
  // references released — retention on disk is refcounted extent
  // drops); at most one boundary block (straddling the cutoff) is
  // decoded and re-materialized as a smaller sealed block.
  std::size_t drop_before(std::int64_t cutoff_ns);

  [[nodiscard]] const Location& location() const { return location_; }
  [[nodiscard]] MetricId metric() const { return metric_; }
  [[nodiscard]] std::size_t size() const { return block_rows_ + head_ts_.size(); }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::int64_t front_ts_ns() const {
    return sealed_.empty() ? head_ts_.front() : sealed_.front().summary.ts_min;
  }

  // Sealed tier.
  [[nodiscard]] std::size_t block_count() const { return sealed_.size(); }
  // Summary access never touches disk (pruning stays O(1) per block).
  [[nodiscard]] const BlockSummary& block_summary(std::size_t i) const {
    return sealed_[i].summary;
  }
  // The block's columns: resident blocks return immediately; evicted
  // ones lazily re-materialize from their mapped extent (safe from
  // parallel query workers).  nullptr when the extent fails its
  // checksum — the block is then quarantined and skipped.
  [[nodiscard]] const Block* block(std::size_t i) const;
  [[nodiscard]] bool block_resident(std::size_t i) const {
    return sealed_[i].hot.load(std::memory_order_acquire) != nullptr;
  }
  [[nodiscard]] bool block_quarantined(std::size_t i) const {
    return sealed_[i].quarantined.load(std::memory_order_relaxed);
  }
  // Durable reference of block `i` (nullptr when not durable) and its
  // seq sidecar — checkpoint/WAL encoding reads these.
  [[nodiscard]] const ExtentRef* block_ref(std::size_t i) const {
    return sealed_[i].ref ? &*sealed_[i].ref : nullptr;
  }
  [[nodiscard]] const std::vector<std::uint8_t>& block_seq_stream(std::size_t i) const {
    return sealed_[i].seq_stream;
  }

  // Drops the in-memory copy of a durable, clean block (write path
  // only; queries may be re-materializing other entries, never this
  // one's writer).  Returns bytes released.
  std::size_t evict_block(std::size_t i);
  // Resident heap bytes of the sealed tier (hot blocks + sidecars).
  [[nodiscard]] std::size_t resident_sealed_bytes() const;

  // Mutable tier (the query engine reads the head columns in place).
  [[nodiscard]] std::size_t head_rows() const { return head_ts_.size(); }
  [[nodiscard]] const std::vector<std::int64_t>& head_ts() const { return head_ts_; }
  [[nodiscard]] const std::vector<double>& head_values() const { return head_values_; }
  [[nodiscard]] const std::vector<std::uint64_t>& head_seq() const { return head_seq_; }

  // Head index range [first, last) with from <= ts <= to (either bound
  // optional).  Binary search: O(log head rows).
  struct RowRange {
    std::size_t first = 0;
    std::size_t last = 0;
    [[nodiscard]] std::size_t size() const { return last - first; }
  };
  [[nodiscard]] RowRange head_range(std::optional<std::int64_t> from_ns,
                                    std::optional<std::int64_t> to_ns) const;

  // Approximate heap bytes held: head column capacities plus the
  // resident sealed tier (hot blocks, refs, seq sidecars).
  [[nodiscard]] std::size_t bytes_used() const;

 private:
  // One sealed block: always the summary; the Block itself while
  // resident; the extent reference + seq sidecar while durable.  `hot`
  // is an owning atomic pointer so parallel query workers can race to
  // materialize without a per-entry mutex (first store wins, losers
  // delete their copy).
  struct Sealed {
    BlockSummary summary;
    std::optional<ExtentRef> ref;
    std::vector<std::uint8_t> seq_stream;
    mutable std::atomic<Block*> hot{nullptr};
    mutable std::atomic<bool> quarantined{false};

    Sealed() = default;
    Sealed(Sealed&& o) noexcept
        : summary(o.summary),
          ref(std::move(o.ref)),
          seq_stream(std::move(o.seq_stream)),
          hot(o.hot.exchange(nullptr, std::memory_order_acq_rel)),
          quarantined(o.quarantined.load(std::memory_order_relaxed)) {}
    Sealed& operator=(Sealed&& o) noexcept {
      if (this != &o) {
        summary = o.summary;
        ref = std::move(o.ref);
        seq_stream = std::move(o.seq_stream);
        delete hot.exchange(o.hot.exchange(nullptr, std::memory_order_acq_rel),
                            std::memory_order_acq_rel);
        quarantined.store(o.quarantined.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      }
      return *this;
    }
    ~Sealed() { delete hot.load(std::memory_order_acquire); }
  };

  void push_block(Block block);
  void clear_head();

  Location location_;
  MetricId metric_;
  bool compress_;
  BlockStore* store_ = nullptr;
  std::vector<Sealed> sealed_;
  std::size_t block_rows_ = 0;  // total rows across sealed blocks
  std::vector<std::int64_t> head_ts_;
  std::vector<double> head_values_;
  std::vector<std::uint64_t> head_seq_;
};

}  // namespace envmon::tsdb
