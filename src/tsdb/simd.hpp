#pragma once
// Runtime-dispatched vectorized decode & fold engine (DESIGN.md §15).
//
// The storage engine's hot read path — XOR value decode, delta-of-delta
// timestamp/seq decode, and the min/max/sum/sumsq folds behind
// aggregate(), downsample() pushdown misses, and seal-time summary
// construction — runs through a table of kernels chosen once at startup
// from what the CPU offers: AVX2, SSE4.2, or a portable scalar
// fallback.  Every variant is bound by one contract:
//
//   byte identity — for any input bytes (including garbage), a variant
//   produces exactly the bit pattern the scalar reference decoders in
//   codec.hpp produce, and every fold reproduces the canonical fold
//   grammar (below) bit for bit.  Variants differ in speed only; sealed
//   bytes and query/downsample/aggregate output never depend on the
//   host's instruction set.
//
// The batch decoders beat the reference classes not by vectorizing the
// (inherently serial) bit parsing but by (a) a 64-bit buffered bit
// reader whose peeked word holds at least 57 valid stream bits, so
// whole rows — control bits, window header, payload — are carved out
// of one load instead of one byte-loop per field, (b) a run fast path
// that turns a run of zero control bits (repeated values — the common
// case for slowly-varying sensor data) into one count-leading-zeros
// plus a broadcast store, and (c) the per-16-row XOR restart offsets,
// which make every subchunk's stream self-contained so column decode,
// aggregate(), and downsample() can start at any subchunk without
// replaying the block prefix.  The folds are where the SIMD lanes do
// arithmetic: the canonical fold grammar is shaped so a 4-lane
// vertical reduction IS the definition.
//
// Canonical fold grammar (one subchunk run, n <= 16 rows):
//   sum     = for a full 16-row subchunk, the 4-lane tree
//             (l0 + l1) + (l2 + l3) where lane lj folds v[j], v[j+4],
//             v[j+8], v[j+12] left-to-right from 0.0; for n < 16
//             (block tails, head tails, bucket edges) a plain
//             left-to-right fold from 0.0.  The split is what lets a
//             pre-seal head fold agree with the eventual seal-time fold
//             no matter where the seal cuts: a 10-row run folds the
//             same way whether it is a head tail today or a sealed
//             block's short last subchunk tomorrow.  A NaN result
//             canonicalizes to the default quiet NaN
//             (0x7ff8000000000000) — compilers may commute FP adds and
//             x86 propagates the *first* NaN operand's payload, so raw
//             payloads are not reproducible across codegen.
//   sum_sq  = the same shapes over v[i]*v[i], same NaN rule
//   min/max = over non-NaN rows; a zero result resolves to -0.0 for
//             min and +0.0 for max when that sign of zero was present
//             in the rows, making the fold order-independent even when
//             -0.0 and +0.0 mix (a sign that never occurred is never
//             produced)
//   finite  = count of non-NaN rows
// Block-level summaries fold the subchunk results left-to-right in
// subchunk order (block.hpp) — which is what makes summary pushdown
// bit-identical to decode-then-fold on every variant.
//
// Dispatch is forceable for testing: ENVMON_SIMD=scalar|sse42|avx2
// pins the active variant (ignored, with the best variant kept, when
// the CPU lacks the requested one).

#include <cstddef>
#include <cstdint>

namespace envmon::tsdb::simd {

enum class Variant : std::uint8_t { kScalar = 0, kSse42 = 1, kAvx2 = 2 };
inline constexpr std::size_t kVariantCount = 3;

[[nodiscard]] const char* variant_name(Variant v);

// Canonical per-subchunk fold result (grammar above).
struct SubchunkFold {
  double sum = 0.0;
  double sum_sq = 0.0;
  double min = 0.0;  // valid iff finite > 0
  double max = 0.0;
  std::uint32_t finite = 0;  // non-NaN rows
};

// One variant's kernel table.  All decoders are total: reads past the
// end of `stream` behave as if the stream were zero-padded (exactly the
// codec.hpp BitReader semantics), so corrupt lengths or offsets yield
// arbitrary values but never out-of-bounds reads.
struct Kernels {
  Variant variant;

  // Canonical fold over one subchunk (n <= 16).
  void (*fold_subchunk)(const double* v, std::size_t n, SubchunkFold& out);
  // Canonical sum alone (the downsample full-subchunk decode path).
  double (*sum_subchunk)(const double* v, std::size_t n);

  // Decodes a whole XOR value column: `chunks` subchunk streams whose
  // starting bit offsets are `chunk_offsets[c]`, kSubchunkRows rows per
  // subchunk except the last; writes exactly `rows` doubles.
  void (*decode_xor_column)(const std::uint8_t* stream, std::size_t stream_bytes,
                            const std::uint32_t* chunk_offsets, std::size_t chunks,
                            std::size_t rows, double* out);
  // Decodes one XOR subchunk from `bit_offset`; writes `rows` doubles.
  void (*decode_xor_subchunk)(const std::uint8_t* stream, std::size_t stream_bytes,
                              std::size_t bit_offset, std::size_t rows, double* out);
  // Decodes `rows` values of a delta-of-delta stream (timestamps, seq).
  void (*decode_dod)(const std::uint8_t* stream, std::size_t stream_bytes, std::size_t rows,
                     std::int64_t* out);
};

// Left-to-right combiner of subchunk folds into a block- or
// range-level fold (the second layer of the canonical grammar).  One
// compiled copy lives in simd.cpp so seal-time summaries, aggregation
// pushdown, and the decode-then-fold path all run literally the same
// instructions — finish() re-applies the canonical NaN and ±0 rules,
// which keeps the combine order-stable even through inf/NaN mixes.
struct FoldCombine {
  void add(const SubchunkFold& f);
  [[nodiscard]] SubchunkFold finish() const;

  double sum = 0.0;
  double sum_sq = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::uint32_t finite = 0;
  bool min_has_neg_zero = false;
  bool max_has_pos_zero = false;
};

// The variant chosen at startup (CPU probe, then ENVMON_SIMD override).
[[nodiscard]] const Kernels& active();
[[nodiscard]] Variant dispatched_variant();

// A specific variant's kernels — benches and the identity property
// suite iterate these.  Asking for an unavailable variant returns the
// scalar table (which is always available).
[[nodiscard]] const Kernels& kernels(Variant v);

// Compiled in AND supported by this CPU.
[[nodiscard]] bool variant_available(Variant v);

}  // namespace envmon::tsdb::simd
