#include "tsdb/export.hpp"

#include <sstream>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "obs/metrics.hpp"

namespace envmon::tsdb {

namespace {

// Export/import are cold paths, so re-resolving the counter per call
// (one registry mutex hop) is fine.
void count_rows(const char* name, const char* help, std::size_t n) {
  if (n > 0 && obs::enabled()) {
    obs::default_registry().counter(name, help).inc(static_cast<std::uint64_t>(n));
  }
}

}  // namespace

std::string export_csv(const EnvDatabase& db, const QueryFilter& filter) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row("timestamp_s", "location", "metric", "value");
  std::size_t rows = 0;
  for (const auto& record : db.query(filter)) {
    csv.row(format_double(record.timestamp.to_seconds(), 6), record.location.to_string(),
            record.metric, format_double(record.value, 6));
    ++rows;
  }
  count_rows("envmon_tsdb_export_rows_total",
             "Records rendered by environmental database CSV exports", rows);
  return os.str();
}

Result<std::size_t> import_csv(std::string_view text, EnvDatabase& db) {
  auto table = parse_csv(text);
  if (!table) return table.status();
  const auto& header = table.value().header;
  if (header.size() != 4 || header[0] != "timestamp_s") {
    return Status::invalid_argument("not an environmental database export");
  }
  std::size_t inserted = 0;
  for (const auto& row : table.value().rows) {
    if (row.size() != 4) {
      return Status::invalid_argument("malformed export row");
    }
    double t = 0.0, value = 0.0;
    if (!parse_double(row[0], t) || !parse_double(row[3], value)) {
      return Status::invalid_argument("unparseable numeric field");
    }
    const auto location = parse_location(row[1]);
    if (!location) {
      return Status::invalid_argument("bad location: " + row[1]);
    }
    const Status s =
        db.insert(Record{sim::SimTime::from_seconds(t), *location, row[2], value});
    if (!s.is_ok()) return s;
    ++inserted;
  }
  count_rows("envmon_tsdb_import_rows_total",
             "Records inserted from environmental database CSV imports", inserted);
  return inserted;
}

}  // namespace envmon::tsdb
