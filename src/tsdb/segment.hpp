#pragma once
// Memory-mapped, checksummed segment files — the durable cold tier.
//
// Sealed blocks are immutable, so their on-disk home is an append-only
// *segment* file holding *extents*: length-prefixed, CRC32C-checksummed
// byte payloads (the seq-independent serialization of one sealed block —
// see Block::encode_extent).  Extents are content-addressed: the store
// keys every extent by the 128-bit hash of its payload, so sealing a
// block whose bytes are already on disk (identical series replicated
// across tenants, say) re-references the existing extent instead of
// writing it again — the content-addressed store discipline of Nix,
// applied to time-series blocks.  References are counted in memory and
// recomputed from the WAL on open; when every extent in a *sealed*
// segment is dead, retention drops the whole file with one unlink —
// deferred until the next durable checkpoint, so the WAL on disk never
// references a file that no longer exists.
//
// One segment is *active* at a time: appends go there until it reaches
// `rotate_bytes`, then a footer index (every extent's hash/offset/
// length/CRC) is written, the file is fsynced and never written again,
// and a new active segment opens.  A sealed segment reopens in O(1) by
// its footer; a segment that died before its footer (crash) is
// recovered by a header-to-header scan that stops at the first torn or
// corrupt extent.  Reads are served through a read-only mmap of the
// file, remapped lazily as the active segment grows, so a cold block
// load touches only the pages of its own extent.
//
// Byte-level layout: DESIGN.md §13.  Thread safety: appends and
// refcount changes are single-writer (the database's own discipline);
// load() takes an internal mutex so parallel query workers can
// materialize cold blocks concurrently.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "tsdb/checksum.hpp"

namespace envmon::tsdb {

// Where one sealed block's payload lives on disk.  `hash` is the block's
// content address; (segment_id, offset, length, crc) pin the extent the
// store resolved it to.
struct ExtentRef {
  std::uint32_t segment_id = 0;
  std::uint64_t offset = 0;  // of the payload (past the extent header)
  std::uint32_t length = 0;  // payload bytes
  std::uint32_t crc = 0;     // CRC32C over the payload
  ContentHash hash;
  friend bool operator==(const ExtentRef&, const ExtentRef&) = default;
};

// One mapped segment file.  Owns the fd and the read-only mapping.
class SegmentFile {
 public:
  struct ExtentEntry {
    ContentHash hash;
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
    std::uint32_t crc = 0;
  };

  SegmentFile() = default;
  ~SegmentFile();
  SegmentFile(const SegmentFile&) = delete;
  SegmentFile& operator=(const SegmentFile&) = delete;

  // Creates a fresh active segment (truncating any existing file).
  Status create(const std::string& path, std::uint32_t id);
  // Opens an existing file: O(1) via the footer when present and valid,
  // otherwise a scan that recovers every whole, checksum-clean extent
  // and ignores the torn tail.  `entries` receives the live directory.
  Status open(const std::string& path, std::uint32_t id,
              std::vector<ExtentEntry>& entries);

  // Appends one extent (header + payload); returns its payload offset.
  // Active segments only.
  Status append(std::span<const std::uint8_t> payload, const ContentHash& hash,
                std::uint32_t crc, std::uint64_t& offset);
  // Writes the footer index and fsyncs; the segment becomes immutable.
  Status seal(std::span<const ExtentEntry> entries);
  Status sync();

  // Payload bytes of one extent via the mapping (remaps if the file has
  // grown past the current view).  Empty span when out of bounds.
  [[nodiscard]] std::span<const std::uint8_t> payload(std::uint64_t offset,
                                                      std::uint32_t length) const;

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] std::uint64_t size() const { return size_; }
  [[nodiscard]] bool sealed() const { return sealed_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  Status map_at_least(std::uint64_t bytes) const;
  void unmap() const;

  std::string path_;
  std::uint32_t id_ = 0;
  int fd_ = -1;
  std::uint64_t size_ = 0;  // bytes written (file size)
  bool sealed_ = false;
  // Read-side mapping, grown lazily; mutable so const reads can remap.
  mutable void* map_ = nullptr;
  mutable std::uint64_t map_size_ = 0;
};

// The segment directory: dedup index, refcounts, rotation, retention.
class BlockStore {
 public:
  struct Options {
    std::size_t rotate_bytes = 8u << 20;  // active segment seals past this
  };

  struct Stats {
    std::uint64_t extents_appended = 0;  // physical extent writes
    std::uint64_t dedup_hits = 0;        // appends served by an existing extent
    std::uint64_t loads = 0;             // cold extent reads (materializations)
    std::uint64_t load_failures = 0;     // CRC/bounds failures (quarantines)
    std::uint64_t segments_deleted = 0;  // dead segment files unlinked
  };

  BlockStore() = default;

  // Opens `dir` (which must exist), loading every `segment-*.seg`:
  // sealed ones by footer, unsealed ones by scan.  Extents start with
  // refcount zero; replay re-references the live ones via add_ref().
  Status open(const std::string& dir, const Options& options);
  // Seals the active segment (if any) and closes all files.
  Status close();
  [[nodiscard]] bool is_open() const { return open_; }

  // Optional observability: counters bumped on dedup hits, cold loads,
  // and quarantines.
  void attach_metrics(obs::Counter* dedup, obs::Counter* cold_loads,
                      obs::Counter* quarantined) {
    dedup_metric_ = dedup;
    cold_loads_metric_ = cold_loads;
    quarantined_metric_ = quarantined;
  }

  // Stores `payload` (or re-references a byte-identical existing
  // extent), bumping its refcount.  Rotates the active segment as
  // needed.
  Status append(std::span<const std::uint8_t> payload, ExtentRef& ref, bool& dedup_hit);

  // Recovery path: re-reference an extent named by a WAL record.  Fails
  // if the ref does not match a known extent (unknown segment, bad
  // offset/len/crc) — the recovery loop treats that as WAL corruption.
  Status add_ref(const ExtentRef& ref);

  // Zeroes every refcount (recovery restarting replay from a different
  // WAL after a partial, failed attempt polluted the counts).
  void clear_refs();

  // Drops one reference.  A segment whose live extents hit zero is only
  // *marked* dead — its file must outlive every WAL record that still
  // references its extents, so the unlink is deferred to the
  // gc_dead_segments() the database runs behind the next durable
  // checkpoint.  Until then the dead extents stay dedup-revivable.
  void release(const ExtentRef& ref);

  // True when some sealed, non-active segment has no live extents —
  // the database's cue to rotate a checkpoint so the dead files can be
  // reclaimed.
  [[nodiscard]] bool has_dead_segments() const;

  // Reads and CRC-verifies one extent payload.  kInternal on checksum
  // mismatch or bounds violation (the caller quarantines the block).
  // Safe to call from parallel query workers.
  Status load(const ExtentRef& ref, std::vector<std::uint8_t>& payload);

  // Counts a quarantine whose payload read succeeded but whose decode
  // did not (structurally invalid extent bytes behind a valid CRC).
  void note_decode_failure();

  // Unlinks sealed segments with no live extents.  Only safe once a
  // checkpoint referencing no extent of those segments is durable (a
  // checkpoint encodes live refs only, so every zero-ref segment
  // qualifies) — the database calls this at the tail of a successful
  // checkpoint rotation, never in between.
  void gc_dead_segments();

  // fsync the active segment (ordering: extents are made durable before
  // the WAL records that reference them).
  Status sync();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  [[nodiscard]] std::size_t extent_count() const { return index_.size(); }
  [[nodiscard]] std::uint64_t disk_bytes() const;
  [[nodiscard]] std::uint64_t live_extent_bytes() const;

 private:
  struct Extent {
    ExtentRef ref;
    std::uint32_t refs = 0;
  };
  struct Segment {
    std::unique_ptr<SegmentFile> file;
    std::uint32_t live_extents = 0;
    std::vector<SegmentFile::ExtentEntry> entries;  // for the footer at seal
  };

  Status rotate();
  SegmentFile* segment(std::uint32_t id);
  [[nodiscard]] std::string segment_path(std::uint32_t id) const;

  std::string dir_;
  Options options_;
  bool open_ = false;
  std::map<std::uint32_t, Segment> segments_;
  std::uint32_t active_id_ = 0;  // 0 = none
  std::uint32_t next_id_ = 1;
  // Content index: every on-disk extent (live or revivable), keyed by
  // hash; collisions chain and are resolved by byte compare.
  std::multimap<ContentHash, Extent> index_;
  std::mutex load_mutex_;
  Stats stats_;
  obs::Counter* dedup_metric_ = nullptr;
  obs::Counter* cold_loads_metric_ = nullptr;
  obs::Counter* quarantined_metric_ = nullptr;
};

}  // namespace envmon::tsdb
