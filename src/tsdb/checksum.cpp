#include "tsdb/checksum.hpp"

#include <array>

namespace envmon::tsdb {

namespace {

// Reflected CRC-32C table (polynomial 0x1EDC6F41, reflected 0x82F63B78),
// generated at static-init time.
constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrc32cTable = make_crc32c_table();

// splitmix64 finalizer — the avalanche step of the per-rank seeding the
// fleet engine already uses; here it stirs 8-byte chunks into each hash
// lane.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

std::uint32_t crc32c_table_impl(std::span<const std::uint8_t> bytes, std::uint32_t c) {
  for (const std::uint8_t b : bytes) {
    c = kCrc32cTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c;
}

#if defined(__x86_64__)
// SSE4.2 carries CRC-32C in hardware (the instruction exists *because*
// of this polynomial).  8 bytes per crc32q against 1 byte per table
// lookup matters here: the WAL frames every record and the envmond wire
// protocol frames every message with this checksum.
__attribute__((target("sse4.2")))
std::uint32_t crc32c_hw_impl(std::span<const std::uint8_t> bytes, std::uint32_t c) {
  std::uint64_t crc = c;
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    std::uint64_t chunk;
    __builtin_memcpy(&chunk, p, 8);
    crc = __builtin_ia32_crc32di(crc, chunk);
    p += 8;
    n -= 8;
  }
  auto c32 = static_cast<std::uint32_t>(crc);
  while (n > 0) {
    c32 = __builtin_ia32_crc32qi(c32, *p);
    ++p;
    --n;
  }
  return c32;
}

bool crc32c_hw_available() { return __builtin_cpu_supports("sse4.2") != 0; }
#else
bool crc32c_hw_available() { return false; }
std::uint32_t crc32c_hw_impl(std::span<const std::uint8_t> bytes, std::uint32_t c) {
  return crc32c_table_impl(bytes, c);
}
#endif

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> bytes, std::uint32_t seed) {
  static const bool hw = crc32c_hw_available();
  const std::uint32_t c = seed ^ 0xFFFFFFFFu;
  return (hw ? crc32c_hw_impl(bytes, c) : crc32c_table_impl(bytes, c)) ^ 0xFFFFFFFFu;
}

std::string ContentHash::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = i < 8 ? hi : lo;
    const unsigned shift = 8u * (7u - static_cast<unsigned>(i % 8));
    const auto byte = static_cast<std::uint8_t>(word >> shift);
    out[2 * static_cast<std::size_t>(i)] = kDigits[byte >> 4];
    out[2 * static_cast<std::size_t>(i) + 1] = kDigits[byte & 0xF];
  }
  return out;
}

ContentHash content_hash(std::span<const std::uint8_t> bytes) {
  // Two independently seeded 64-bit lanes over the same chunks.  Each
  // 8-byte (little-endian) chunk is absorbed with a multiply + splitmix
  // avalanche; the tail chunk is zero-padded with the length mixed in so
  // "abc" and "abc\0" hash differently.
  std::uint64_t h1 = 0x9e3779b97f4a7c15ull;
  std::uint64_t h2 = 0xc2b2ae3d27d4eb4full;
  const std::size_t n = bytes.size();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t chunk = 0;
    for (unsigned b = 0; b < 8; ++b) {
      chunk |= static_cast<std::uint64_t>(bytes[i + b]) << (8 * b);
    }
    h1 = mix64(h1 ^ chunk) * 0xff51afd7ed558ccdull;
    h2 = mix64(h2 + chunk) ^ (h2 >> 29);
  }
  std::uint64_t tail = 0;
  for (unsigned b = 0; i + b < n; ++b) {
    tail |= static_cast<std::uint64_t>(bytes[i + b]) << (8 * b);
  }
  h1 = mix64(h1 ^ tail ^ n);
  h2 = mix64(h2 + tail + n);
  return ContentHash{mix64(h1 ^ (h2 >> 32)), mix64(h2 ^ (h1 << 17))};
}

}  // namespace envmon::tsdb
