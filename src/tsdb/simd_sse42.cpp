// SSE4.2 variant (compiled with -msse4.2; folds use 2-wide __m128d
// lanes, two registers deep to keep the canonical 4-lane shape).
#define ENVMON_SIMD_KERNEL_NS sse42_impl
#define ENVMON_SIMD_KERNEL_SSE2 1
#include "tsdb/simd_kernels.hh"

namespace envmon::tsdb::simd {

const Kernels& sse42_kernels() {
  static const Kernels k = sse42_impl::make_kernels(Variant::kSse42);
  return k;
}

}  // namespace envmon::tsdb::simd
