#include "tsdb/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "tsdb/checksum.hpp"
#include "tsdb/wire.hpp"

namespace envmon::tsdb {

namespace {

constexpr std::uint32_t kWalMagic = 0x4C575645;  // "EVWL"
constexpr std::uint32_t kWalFormatVersion = 1;
constexpr std::uint64_t kWalHeaderBytes = 16;
constexpr std::uint64_t kFrameHeaderBytes = 8;

Status io_error(const char* what) {
  return Status::internal(std::string(what) + ": " + std::strerror(errno));
}

bool write_all(int fd, std::span<const std::uint8_t> bytes) {
  const std::uint8_t* src = bytes.data();
  std::size_t len = bytes.size();
  while (len > 0) {
    const ssize_t n = ::write(fd, src, len);
    if (n <= 0) return false;
    src += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::create(const std::string& path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) return io_error("create wal");
  path_ = path;
  wire::Writer header;
  header.u32(kWalMagic);
  header.u32(kWalFormatVersion);
  header.u64(0);  // reserved
  if (!write_all(fd_, header.span())) return io_error("write wal header");
  bytes_ = kWalHeaderBytes;
  frames_ = 0;
  return Status::ok();
}

Status WalWriter::open_for_append(const std::string& path, std::uint64_t resume_bytes) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd_ < 0) return io_error("open wal for append");
  path_ = path;
  if (::lseek(fd_, static_cast<off_t>(resume_bytes), SEEK_SET) < 0) {
    return io_error("seek wal");
  }
  bytes_ = resume_bytes;
  frames_ = 0;
  return Status::ok();
}

Status WalWriter::append(WalRecordType type, std::span<const std::uint8_t> payload) {
  if (fd_ < 0) return Status::failed_precondition("wal is not open");
  // The reader rejects frames past the ceiling, so writing one would
  // produce a log that recovery silently truncates — fail loudly here,
  // before any byte lands.  (>= because the type byte rides the frame.)
  if (payload.size() >= kWalMaxFrameBytes) {
    return Status::invalid_argument("wal record exceeds the maximum frame size");
  }
  wire::Writer frame;
  frame.u32(static_cast<std::uint32_t>(payload.size() + 1));
  // CRC covers the type byte plus the payload.
  std::uint32_t crc = crc32c({reinterpret_cast<const std::uint8_t*>(&type), 1});
  crc = crc32c(payload, crc);
  frame.u32(crc);
  frame.u8(static_cast<std::uint8_t>(type));
  frame.bytes(payload);
  if (!write_all(fd_, frame.span())) return io_error("append wal record");
  bytes_ += frame.size();
  ++frames_;
  return Status::ok();
}

Status WalWriter::sync() {
  if (fd_ < 0) return Status::ok();
  if (::fsync(fd_) != 0) return io_error("fsync wal");
  return Status::ok();
}

Status WalWriter::close() {
  if (fd_ < 0) return Status::ok();
  const int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) return io_error("close wal");
  return Status::ok();
}

Status WalReader::open(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return Status::not_found("cannot stat wal file");
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return io_error("open wal");
  buffer_.resize(size);
  std::size_t got = 0;
  while (got < buffer_.size()) {
    const ssize_t n = ::read(fd, buffer_.data() + got, buffer_.size() - got);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  if (got != buffer_.size()) return io_error("read wal");

  pos_ = 0;
  valid_bytes_ = 0;
  truncated_ = false;
  if (buffer_.size() < kWalHeaderBytes) {
    return Status::internal("wal shorter than its header");
  }
  wire::Reader header(std::span<const std::uint8_t>(buffer_).first(kWalHeaderBytes));
  if (header.u32() != kWalMagic || header.u32() != kWalFormatVersion) {
    return Status::internal("wal header magic/version mismatch");
  }
  pos_ = kWalHeaderBytes;
  valid_bytes_ = kWalHeaderBytes;
  return Status::ok();
}

std::optional<WalReader::Frame> WalReader::next() {
  if (truncated_) return std::nullopt;
  if (pos_ + kFrameHeaderBytes > buffer_.size()) {
    truncated_ = pos_ != buffer_.size();  // trailing partial header is torn
    return std::nullopt;
  }
  wire::Reader header(std::span<const std::uint8_t>(buffer_).subspan(pos_, kFrameHeaderBytes));
  const std::uint32_t length = header.u32();
  const std::uint32_t crc = header.u32();
  if (length == 0 || length > kWalMaxFrameBytes ||
      pos_ + kFrameHeaderBytes + length > buffer_.size()) {
    truncated_ = true;
    return std::nullopt;
  }
  const auto body = std::span<const std::uint8_t>(buffer_).subspan(
      pos_ + kFrameHeaderBytes, length);
  if (crc32c(body) != crc) {
    truncated_ = true;
    return std::nullopt;
  }
  pos_ += kFrameHeaderBytes + length;
  valid_bytes_ = pos_;
  return Frame{static_cast<WalRecordType>(body[0]), body.subspan(1)};
}

Status truncate_file(const std::string& path, std::uint64_t bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(bytes)) != 0) {
    return io_error("truncate wal tail");
  }
  return Status::ok();
}

}  // namespace envmon::tsdb
