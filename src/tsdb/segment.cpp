#include "tsdb/segment.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "tsdb/wire.hpp"

namespace envmon::tsdb {

namespace {

// On-disk constants (DESIGN.md §13).  All integers little-endian.
constexpr std::uint32_t kSegmentMagic = 0x47535645;  // "EVSG"
constexpr std::uint32_t kFooterMagic = 0x46535645;   // "EVSF"
constexpr std::uint32_t kExtentMagic = 0x58455645;   // "EVEX"
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint64_t kSegmentHeaderBytes = 24;
constexpr std::uint64_t kExtentHeaderBytes = 32;
constexpr std::uint64_t kFooterEntryBytes = 32;
constexpr std::uint64_t kTrailerBytes = 24;
// Sanity ceiling on one extent; a 4096-row block is a few KB even raw.
constexpr std::uint32_t kMaxExtentBytes = 64u << 20;

Status io_error(const char* what) {
  return Status::internal(std::string(what) + ": " + std::strerror(errno));
}

// Reads exactly `len` bytes at `offset`; false on short read or error.
bool pread_exact(int fd, void* buf, std::size_t len, std::uint64_t offset) {
  auto* dst = static_cast<std::uint8_t*>(buf);
  while (len > 0) {
    const ssize_t n = ::pread(fd, dst, len, static_cast<off_t>(offset));
    if (n <= 0) return false;
    dst += n;
    offset += static_cast<std::uint64_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_all(int fd, std::span<const std::uint8_t> bytes) {
  const std::uint8_t* src = bytes.data();
  std::size_t len = bytes.size();
  while (len > 0) {
    const ssize_t n = ::write(fd, src, len);
    if (n <= 0) return false;
    src += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

// Best-effort directory fsync so creates/unlinks/renames are durable.
void sync_parent_dir(const std::string& path) {
  const std::filesystem::path dir = std::filesystem::path(path).parent_path();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

SegmentFile::~SegmentFile() {
  unmap();
  if (fd_ >= 0) ::close(fd_);
}

void SegmentFile::unmap() const {
  if (map_ != nullptr) {
    ::munmap(map_, map_size_);
    map_ = nullptr;
    map_size_ = 0;
  }
}

Status SegmentFile::map_at_least(std::uint64_t bytes) const {
  if (map_size_ >= bytes && map_ != nullptr) return Status::ok();
  unmap();
  void* m = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd_, 0);
  if (m == MAP_FAILED) return io_error("mmap segment");
  map_ = m;
  map_size_ = size_;
  return Status::ok();
}

Status SegmentFile::create(const std::string& path, std::uint32_t id) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) return io_error("create segment");
  path_ = path;
  id_ = id;
  wire::Writer header;
  header.u32(kSegmentMagic);
  header.u32(kFormatVersion);
  header.u32(id);
  header.u32(0);  // reserved
  header.u64(0);  // reserved
  if (!write_all(fd_, header.span())) return io_error("write segment header");
  size_ = kSegmentHeaderBytes;
  sync_parent_dir(path);
  return Status::ok();
}

Status SegmentFile::open(const std::string& path, std::uint32_t id,
                         std::vector<ExtentEntry>& entries) {
  entries.clear();
  fd_ = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd_ < 0) return io_error("open segment");
  path_ = path;
  id_ = id;
  struct stat st{};
  if (::fstat(fd_, &st) != 0) return io_error("stat segment");
  size_ = static_cast<std::uint64_t>(st.st_size);
  if (size_ < kSegmentHeaderBytes) {
    return Status::internal("segment shorter than its header");
  }
  std::uint8_t raw_header[kSegmentHeaderBytes];
  if (!pread_exact(fd_, raw_header, sizeof(raw_header), 0)) {
    return io_error("read segment header");
  }
  wire::Reader header({raw_header, sizeof(raw_header)});
  if (header.u32() != kSegmentMagic || header.u32() != kFormatVersion ||
      header.u32() != id) {
    return Status::internal("segment header magic/version/id mismatch");
  }

  // Fast path: a valid footer is the whole directory.
  if (size_ >= kSegmentHeaderBytes + kTrailerBytes) {
    std::uint8_t raw_trailer[kTrailerBytes];
    if (!pread_exact(fd_, raw_trailer, sizeof(raw_trailer), size_ - kTrailerBytes)) {
      return io_error("read segment trailer");
    }
    wire::Reader trailer({raw_trailer, sizeof(raw_trailer)});
    const std::uint64_t index_offset = trailer.u64();
    const std::uint32_t count = trailer.u32();
    const std::uint32_t index_crc = trailer.u32();
    const std::uint32_t version = trailer.u32();
    const std::uint32_t magic = trailer.u32();
    const std::uint64_t index_bytes = static_cast<std::uint64_t>(count) * kFooterEntryBytes;
    if (magic == kFooterMagic && version == kFormatVersion &&
        index_offset >= kSegmentHeaderBytes &&
        index_offset + index_bytes + kTrailerBytes == size_) {
      std::vector<std::uint8_t> raw_index(index_bytes);
      if (index_bytes > 0 &&
          !pread_exact(fd_, raw_index.data(), raw_index.size(), index_offset)) {
        return io_error("read segment index");
      }
      if (crc32c(raw_index) == index_crc) {
        wire::Reader index(raw_index);
        entries.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          ExtentEntry e;
          e.hash.hi = index.u64();
          e.hash.lo = index.u64();
          e.offset = index.u64();
          e.length = index.u32();
          e.crc = index.u32();
          entries.push_back(e);
        }
        sealed_ = true;
        return Status::ok();
      }
    }
  }

  // No (valid) footer: the segment died before sealing.  Recover every
  // whole, checksum-clean extent front-to-back; the first torn or
  // corrupt one ends the scan, and the file is truncated to the clean
  // prefix so a later seal() can stamp a footer after it.
  std::uint64_t pos = kSegmentHeaderBytes;
  std::vector<std::uint8_t> payload;
  while (pos + kExtentHeaderBytes <= size_) {
    std::uint8_t raw_extent[kExtentHeaderBytes];
    if (!pread_exact(fd_, raw_extent, sizeof(raw_extent), pos)) break;
    wire::Reader extent({raw_extent, sizeof(raw_extent)});
    if (extent.u32() != kExtentMagic) break;
    const std::uint32_t length = extent.u32();
    const std::uint32_t crc = extent.u32();
    (void)extent.u32();  // reserved
    ContentHash hash;
    hash.hi = extent.u64();
    hash.lo = extent.u64();
    if (length == 0 || length > kMaxExtentBytes ||
        pos + kExtentHeaderBytes + length > size_) {
      break;
    }
    payload.resize(length);
    if (!pread_exact(fd_, payload.data(), length, pos + kExtentHeaderBytes)) break;
    if (crc32c(payload) != crc) break;
    entries.push_back(ExtentEntry{hash, pos + kExtentHeaderBytes, length, crc});
    pos += kExtentHeaderBytes + length;
  }
  if (pos < size_) {
    if (::ftruncate(fd_, static_cast<off_t>(pos)) != 0) {
      return io_error("truncate torn segment tail");
    }
    size_ = pos;
  }
  return Status::ok();
}

Status SegmentFile::append(std::span<const std::uint8_t> payload, const ContentHash& hash,
                           std::uint32_t crc, std::uint64_t& offset) {
  if (sealed_) return Status::failed_precondition("segment is sealed");
  wire::Writer header;
  header.u32(kExtentMagic);
  header.u32(static_cast<std::uint32_t>(payload.size()));
  header.u32(crc);
  header.u32(0);  // reserved
  header.u64(hash.hi);
  header.u64(hash.lo);
  if (::lseek(fd_, static_cast<off_t>(size_), SEEK_SET) < 0) {
    return io_error("seek segment");
  }
  if (!write_all(fd_, header.span()) || !write_all(fd_, payload)) {
    return io_error("append extent");
  }
  offset = size_ + kExtentHeaderBytes;
  size_ += kExtentHeaderBytes + payload.size();
  return Status::ok();
}

Status SegmentFile::seal(std::span<const ExtentEntry> entries) {
  if (sealed_) return Status::ok();
  wire::Writer index;
  for (const ExtentEntry& e : entries) {
    index.u64(e.hash.hi);
    index.u64(e.hash.lo);
    index.u64(e.offset);
    index.u32(e.length);
    index.u32(e.crc);
  }
  wire::Writer trailer;
  trailer.u64(size_);  // index_offset
  trailer.u32(static_cast<std::uint32_t>(entries.size()));
  trailer.u32(crc32c(index.span()));
  trailer.u32(kFormatVersion);
  trailer.u32(kFooterMagic);
  if (::lseek(fd_, static_cast<off_t>(size_), SEEK_SET) < 0) {
    return io_error("seek segment");
  }
  if (!write_all(fd_, index.span()) || !write_all(fd_, trailer.span())) {
    return io_error("write segment footer");
  }
  size_ += index.size() + trailer.size();
  if (::fsync(fd_) != 0) return io_error("fsync sealed segment");
  sealed_ = true;
  return Status::ok();
}

Status SegmentFile::sync() {
  if (::fsync(fd_) != 0) return io_error("fsync segment");
  return Status::ok();
}

std::span<const std::uint8_t> SegmentFile::payload(std::uint64_t offset,
                                                   std::uint32_t length) const {
  if (offset + length > size_) return {};
  if (!map_at_least(offset + length).is_ok()) return {};
  return {static_cast<const std::uint8_t*>(map_) + offset, length};
}

std::string BlockStore::segment_path(std::uint32_t id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "segment-%06u.seg", id);
  return dir_ + "/" + name;
}

Status BlockStore::open(const std::string& dir, const Options& options) {
  dir_ = dir;
  options_ = options;
  segments_.clear();
  index_.clear();
  active_id_ = 0;
  next_id_ = 1;

  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned id = 0;
    if (std::sscanf(name.c_str(), "segment-%06u.seg", &id) != 1) continue;
    // Every parsed id advances the allocator — including ids whose file
    // fails to open below — so a later rotate() can never reuse the id
    // and O_TRUNC a file that was left in place for inspection.
    next_id_ = std::max(next_id_, id + 1);
    Segment seg;
    seg.file = std::make_unique<SegmentFile>();
    std::vector<SegmentFile::ExtentEntry> entries;
    const Status s = seg.file->open(entry.path().string(), id, entries);
    if (!s.is_ok()) {
      // Unreadable container: leave the file in place for inspection,
      // reference nothing in it (refs into it will fail add_ref and
      // truncate the WAL there).
      continue;
    }
    for (const SegmentFile::ExtentEntry& e : entries) {
      index_.emplace(e.hash, Extent{ExtentRef{id, e.offset, e.length, e.crc, e.hash}, 0});
    }
    seg.entries = std::move(entries);
    segments_.emplace(id, std::move(seg));
  }
  if (ec) return Status::internal("cannot list segment directory");
  // Segments recovered without a footer get one now (their torn tails
  // were truncated on open), so the next open is O(1) everywhere.
  for (auto& [id, seg] : segments_) {
    if (!seg.file->sealed()) {
      const Status s = seg.file->seal(seg.entries);
      if (!s.is_ok()) return s;
    }
  }
  open_ = true;
  return Status::ok();
}

Status BlockStore::close() {
  if (!open_) return Status::ok();
  Status result = Status::ok();
  if (SegmentFile* active = segment(active_id_); active != nullptr && !active->sealed()) {
    const Status s = active->seal(segments_.at(active_id_).entries);
    if (!s.is_ok()) result = s;
  }
  segments_.clear();
  index_.clear();
  active_id_ = 0;
  open_ = false;
  return result;
}

SegmentFile* BlockStore::segment(std::uint32_t id) {
  const auto it = segments_.find(id);
  return it == segments_.end() ? nullptr : it->second.file.get();
}

Status BlockStore::rotate() {
  if (SegmentFile* active = segment(active_id_); active != nullptr) {
    const Status s = active->seal(segments_.at(active_id_).entries);
    if (!s.is_ok()) return s;
  }
  const std::uint32_t id = next_id_++;
  Segment seg;
  seg.file = std::make_unique<SegmentFile>();
  const Status s = seg.file->create(segment_path(id), id);
  if (!s.is_ok()) return s;
  segments_.emplace(id, std::move(seg));
  active_id_ = id;
  return Status::ok();
}

Status BlockStore::append(std::span<const std::uint8_t> payload, ExtentRef& ref,
                          bool& dedup_hit) {
  dedup_hit = false;
  const ContentHash hash = content_hash(payload);
  // Content address lookup; a hash hit must also match byte-for-byte
  // (collisions chain in the multimap and cost one compare, never
  // corruption).
  auto [lo, hi] = index_.equal_range(hash);
  for (auto it = lo; it != hi; ++it) {
    Extent& extent = it->second;
    SegmentFile* file = segment(extent.ref.segment_id);
    if (file == nullptr || extent.ref.length != payload.size()) continue;
    const auto existing = file->payload(extent.ref.offset, extent.ref.length);
    if (existing.size() != payload.size() ||
        !std::equal(payload.begin(), payload.end(), existing.begin())) {
      continue;
    }
    if (extent.refs == 0) {
      // Reviving a dead extent whose file is still on disk.
      ++segments_.at(extent.ref.segment_id).live_extents;
    }
    ++extent.refs;
    ++stats_.dedup_hits;
    if (dedup_metric_ != nullptr) dedup_metric_->inc();
    ref = extent.ref;
    dedup_hit = true;
    return Status::ok();
  }

  SegmentFile* active = segment(active_id_);
  if (active == nullptr || active->sealed() ||
      active->size() >= options_.rotate_bytes) {
    const Status s = rotate();
    if (!s.is_ok()) return s;
    active = segment(active_id_);
  }
  const std::uint32_t crc = crc32c(payload);
  std::uint64_t offset = 0;
  const Status s = active->append(payload, hash, crc, offset);
  if (!s.is_ok()) return s;
  ref = ExtentRef{active_id_, offset, static_cast<std::uint32_t>(payload.size()), crc, hash};
  index_.emplace(hash, Extent{ref, 1});
  Segment& seg = segments_.at(active_id_);
  ++seg.live_extents;
  seg.entries.push_back(SegmentFile::ExtentEntry{hash, offset, ref.length, crc});
  ++stats_.extents_appended;
  return Status::ok();
}

Status BlockStore::add_ref(const ExtentRef& ref) {
  auto [lo, hi] = index_.equal_range(ref.hash);
  for (auto it = lo; it != hi; ++it) {
    Extent& extent = it->second;
    if (extent.ref != ref) continue;
    if (extent.refs == 0) ++segments_.at(ref.segment_id).live_extents;
    ++extent.refs;
    return Status::ok();
  }
  return Status::internal("extent reference resolves to no known extent");
}

void BlockStore::clear_refs() {
  for (auto& [hash, extent] : index_) extent.refs = 0;
  for (auto& [id, seg] : segments_) seg.live_extents = 0;
}

void BlockStore::release(const ExtentRef& ref) {
  auto [lo, hi] = index_.equal_range(ref.hash);
  for (auto it = lo; it != hi; ++it) {
    Extent& extent = it->second;
    if (extent.ref != ref || extent.refs == 0) continue;
    // A segment whose last live extent dies is NOT unlinked here: the
    // current WAL (its leading checkpoint, or replayed seal frames) may
    // still reference its extents, and a crash before the next durable
    // checkpoint would make recovery fail add_ref against a missing
    // file and reject the only WAL.  The file stays on disk — its dead
    // extents remain dedup-revivable — until gc_dead_segments() runs
    // behind a fresh durable checkpoint.
    if (--extent.refs == 0) {
      if (const auto seg_it = segments_.find(ref.segment_id); seg_it != segments_.end()) {
        --seg_it->second.live_extents;
      }
    }
    return;
  }
}

bool BlockStore::has_dead_segments() const {
  for (const auto& [id, seg] : segments_) {
    if (seg.live_extents == 0 && seg.file->sealed() && id != active_id_) return true;
  }
  return false;
}

Status BlockStore::load(const ExtentRef& ref, std::vector<std::uint8_t>& payload) {
  const std::scoped_lock lock(load_mutex_);
  ++stats_.loads;
  if (cold_loads_metric_ != nullptr) cold_loads_metric_->inc();
  SegmentFile* file = segment(ref.segment_id);
  if (file == nullptr) {
    ++stats_.load_failures;
    if (quarantined_metric_ != nullptr) quarantined_metric_->inc();
    return Status::internal("extent references an unknown segment");
  }
  const auto bytes = file->payload(ref.offset, ref.length);
  if (bytes.size() != ref.length || crc32c(bytes) != ref.crc) {
    ++stats_.load_failures;
    if (quarantined_metric_ != nullptr) quarantined_metric_->inc();
    return Status::internal("extent payload failed its checksum");
  }
  payload.assign(bytes.begin(), bytes.end());
  return Status::ok();
}

void BlockStore::note_decode_failure() {
  const std::scoped_lock lock(load_mutex_);
  ++stats_.load_failures;
  if (quarantined_metric_ != nullptr) quarantined_metric_->inc();
}

void BlockStore::gc_dead_segments() {
  for (auto it = segments_.begin(); it != segments_.end();) {
    const auto current = it++;
    Segment& seg = current->second;
    if (seg.live_extents == 0 && seg.file->sealed() && current->first != active_id_) {
      const std::string path = seg.file->path();
      const std::uint32_t id = current->first;
      for (auto ix = index_.begin(); ix != index_.end();) {
        ix = ix->second.ref.segment_id == id ? index_.erase(ix) : std::next(ix);
      }
      segments_.erase(current);
      ::unlink(path.c_str());
      sync_parent_dir(path);
      ++stats_.segments_deleted;
    }
  }
}

Status BlockStore::sync() {
  if (SegmentFile* active = segment(active_id_); active != nullptr && !active->sealed()) {
    return active->sync();
  }
  return Status::ok();
}

std::uint64_t BlockStore::disk_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& [id, seg] : segments_) bytes += seg.file->size();
  return bytes;
}

std::uint64_t BlockStore::live_extent_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& [hash, extent] : index_) {
    if (extent.refs > 0) bytes += extent.ref.length;
  }
  return bytes;
}

}  // namespace envmon::tsdb
