// Shared kernel bodies for the tsdb::simd variants (DESIGN.md §15).
//
// NOT a public header.  Each variant translation unit defines
// ENVMON_SIMD_KERNEL_NS to a distinct namespace name and (optionally)
// ENVMON_SIMD_KERNEL_SSE2 / ENVMON_SIMD_KERNEL_AVX2 before including
// this file.  The decode bodies are identical in every variant — they
// are integer/bit manipulation, exact on any ISA — while the folds pick
// an intrinsics lane loop whose floating-point DAG is, add for add,
// the one the portable loop performs (same operands, same order), so
// results are bit-identical across variants by construction, NaN
// payloads included.
//
// The distinct namespaces matter: these TUs are compiled with different
// target flags (-msse4.2, -mavx2), and letting the linker fold
// identically-named inline functions across them could silently pick an
// AVX2 body for the scalar table — an illegal-instruction trap on older
// hosts and an ODR violation everywhere.
//
// Contract recap (simd.hpp): every decoder is total — bit reads past
// the end of the stream yield zeros, exactly like codec.hpp's BitReader
// — and byte-identical to the reference codec classes for all inputs.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "tsdb/simd.hpp"

#if defined(ENVMON_SIMD_KERNEL_SSE2) || defined(ENVMON_SIMD_KERNEL_AVX2)
#include <immintrin.h>
#endif

#ifndef ENVMON_SIMD_KERNEL_NS
#error "define ENVMON_SIMD_KERNEL_NS before including simd_kernels.hh"
#endif

namespace envmon::tsdb::simd {
namespace ENVMON_SIMD_KERNEL_NS {

inline constexpr std::size_t kSubchunkRows = 16;  // Block::kSubchunkRows

// ---------------------------------------------------------------------
// 64-bit buffered MSB-first bit reader.
//
// peek() returns the next bits of the stream left-aligned in a u64: at
// least 57 of its top bits are valid stream bits (the stream being
// zero-extended past its end), because one unaligned 8-byte load holds
// 64 - (bit_pos & 7) >= 57 of them.  Fields wider than 57 bits read in
// two takes.  The fast path is one load + byteswap + shift; the tail
// path (fewer than 8 bytes left) assembles the same word byte by byte.
class FastBitReader {
 public:
  FastBitReader(const std::uint8_t* data, std::size_t size, std::size_t bit_pos)
      : data_(data), size_(size), pos_(bit_pos) {}

  [[nodiscard]] std::uint64_t peek() const {
    const std::size_t byte = pos_ >> 3;
    const unsigned used = static_cast<unsigned>(pos_ & 7u);
    std::uint64_t w;
    if (byte + 8 <= size_) {
      std::memcpy(&w, data_ + byte, 8);
      w = __builtin_bswap64(w);
    } else {
      w = 0;
      for (std::size_t i = 0; i < 8; ++i) {
        w <<= 8;
        if (byte + i < size_) w |= data_[byte + i];
      }
    }
    return w << used;  // used <= 7: top 57+ bits valid
  }

  void advance(unsigned bits) { pos_ += bits; }

  // k <= 57.
  [[nodiscard]] std::uint64_t take(unsigned k) {
    if (k == 0) return 0;
    const std::uint64_t v = peek() >> (64u - k);
    pos_ += k;
    return v;
  }

  // k <= 64.
  [[nodiscard]] std::uint64_t take_wide(unsigned k) {
    if (k <= 57) return take(k);
    const std::uint64_t hi = take(32);
    return (hi << (k - 32)) | take(k - 32);
  }

  [[nodiscard]] std::uint64_t take64() {
    const std::uint64_t hi = take(32);
    return (hi << 32) | take(32);
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_;
};

[[nodiscard]] inline std::int64_t sign_extend(std::uint64_t raw, unsigned bits) {
  const std::uint64_t mask = std::uint64_t{1} << (bits - 1);
  const std::uint64_t value = raw & ((std::uint64_t{1} << bits) - 1);
  return static_cast<std::int64_t>((value ^ mask) - mask);
}

// ---------------------------------------------------------------------
// XOR value decode (codec.hpp XorDecoder semantics).
struct XorLane {
  std::uint64_t prev = 0;
  unsigned lead = 0;
  unsigned trail = 0;
  bool valid = false;
};

// Decodes rows i..rows of one lane's stream.  Whole rows — repeat
// runs, control bits, window header, payload — are carved out of a
// peeked word that is refreshed in place only when its 57 guaranteed
// bits run dry, so repeats amortize to a fraction of a load and narrow
// value rows cost exactly one; a payload spilling past the window
// finishes with one split read.  Bit positions consumed are identical
// to the reference decoder's sequential reads, so zero-fill past the
// stream end agrees too.
inline void decode_xor_rows(FastBitReader& r, XorLane& lane, double* out, std::size_t i,
                            std::size_t rows) {
  double value;
  std::memcpy(&value, &lane.prev, 8);
  std::uint64_t w = r.peek();
  unsigned used = 0;
  while (i < rows) {
    std::uint64_t top = w << used;
    unsigned valid = 57 - used;
    if ((top >> 63) == 0) {
      // Run of repeats, bounded by the bits this word actually holds.
      unsigned run = static_cast<unsigned>(__builtin_clzll(top | 1));
      const bool spill = run >= valid;
      if (spill) run = valid;
      const std::size_t left = rows - i;
      const std::size_t n = run < left ? static_cast<std::size_t>(run) : left;
      for (std::size_t k = 0; k < n; ++k) out[i + k] = value;
      i += n;
      used += static_cast<unsigned>(n);
      if (!spill) continue;
      r.advance(used);  // the run may continue past this word
      w = r.peek();
      used = 0;
      continue;
    }
    if (valid < 13) {
      // Too few real bits to even pick a branch and parse a header:
      // refresh the word (always possible — used > 44 here).
      r.advance(used);
      w = r.peek();
      used = 0;
      top = w;
      valid = 57;
    }
    std::uint64_t x;
    unsigned trail;
    unsigned need;
    if ((top >> 62) & 1u) {
      // New window: 2 control + 5 lead + 6 length = 13 header bits.
      unsigned lead = static_cast<unsigned>((top >> 57) & 31u);
      const unsigned meaningful = static_cast<unsigned>((top >> 51) & 63u) + 1;
      if (lead + meaningful <= 64) {
        trail = 64 - lead - meaningful;
      } else {
        lead = 64 - meaningful;  // corrupt header: clamp, stay total
        trail = 0;
      }
      lane.lead = lead;
      lane.trail = trail;
      lane.valid = true;
      need = 13 + meaningful;
      if (need > valid) {
        // Payload spills past the window: finish the row with a split
        // read, then start a fresh word.
        r.advance(used + 13);
        x = r.take_wide(meaningful);
        lane.prev ^= x << trail;
        std::memcpy(&value, &lane.prev, 8);
        out[i++] = value;
        w = r.peek();
        used = 0;
        continue;
      }
      x = (top << 13) >> (64 - meaningful);
    } else {
      // Window reuse (an unseen window on a corrupt stream reads as 64
      // meaningful bits with an empty window, like the reference).
      unsigned meaningful;
      if (lane.valid) {
        meaningful = 64 - lane.lead - lane.trail;
      } else {
        lane.lead = 0;
        lane.trail = 0;
        lane.valid = true;
        meaningful = 64;
      }
      trail = lane.trail;
      need = 2 + meaningful;
      if (need > valid) {
        r.advance(used + 2);
        x = r.take_wide(meaningful);
        lane.prev ^= x << trail;
        std::memcpy(&value, &lane.prev, 8);
        out[i++] = value;
        w = r.peek();
        used = 0;
        continue;
      }
      x = (top << 2) >> (64 - meaningful);
    }
    lane.prev ^= x << trail;
    std::memcpy(&value, &lane.prev, 8);
    out[i++] = value;
    used += need;
  }
  r.advance(used);
}

// One subchunk: `rows` values starting at `bit_offset`.
inline void decode_xor_subchunk_impl(const std::uint8_t* stream, std::size_t stream_bytes,
                                     std::size_t bit_offset, std::size_t rows, double* out) {
  if (rows == 0) return;
  FastBitReader r(stream, stream_bytes, bit_offset);
  XorLane lane;
  lane.prev = r.take64();
  std::memcpy(&out[0], &lane.prev, 8);
  decode_xor_rows(r, lane, out, 1, rows);
}

// Whole column: the per-subchunk restart offsets make every subchunk's
// stream self-contained, so each decodes independently from its own
// offset — which is also what lets aggregate()/downsample() jump to an
// arbitrary subchunk without replaying the block prefix.
inline void decode_xor_column_impl(const std::uint8_t* stream, std::size_t stream_bytes,
                                   const std::uint32_t* chunk_offsets, std::size_t chunks,
                                   std::size_t rows, double* out) {
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t cb = c * kSubchunkRows;
    const std::size_t avail = rows > cb ? rows - cb : 0;
    const std::size_t n = avail < kSubchunkRows ? avail : kSubchunkRows;
    decode_xor_subchunk_impl(stream, stream_bytes, chunk_offsets[c], n, out + cb);
  }
}

// ---------------------------------------------------------------------
// Delta-of-delta decode (codec.hpp DeltaOfDeltaDecoder semantics).
//
// Control codes are parsed table-style: the count of leading one bits
// (clamped to 5) selects the payload width, replacing the per-bit
// branch ladder; a run of zero control bits (dod == 0 rows — every
// fixed-interval tick stream) replays the previous delta per row
// without touching the parser.  Like the XOR path, whole rows are
// carved out of one peeked word until its 57 guaranteed bits run dry —
// only the 64-bit raw escape (69-bit row) takes the field-at-a-time
// fallback.
inline void decode_dod_impl(const std::uint8_t* stream, std::size_t stream_bytes,
                            std::size_t rows, std::int64_t* out) {
  if (rows == 0) return;
  static constexpr unsigned kWidths[6] = {0, 7, 14, 24, 40, 64};
  FastBitReader r(stream, stream_bytes, 0);
  std::uint64_t prev = r.take64();
  std::uint64_t delta = 0;
  out[0] = static_cast<std::int64_t>(prev);
  std::size_t i = 1;
  while (i < rows) {
    const std::uint64_t w = r.peek();
    unsigned used = 0;
    bool spilled = false;
    while (i < rows) {
      const std::uint64_t top = w << used;
      const unsigned valid = 57 - used;
      if ((top >> 63) == 0) {
        unsigned run = static_cast<unsigned>(__builtin_clzll(top | 1));
        const bool spill = run >= valid;
        if (spill) run = valid;
        const std::size_t left = rows - i;
        const std::size_t n = run < left ? static_cast<std::size_t>(run) : left;
        for (std::size_t k = 0; k < n; ++k) {
          prev += delta;
          out[i + k] = static_cast<std::int64_t>(prev);
        }
        i += n;
        used += static_cast<unsigned>(n);
        if (spill) break;  // the run may continue past this word
        continue;
      }
      if (valid < 6) break;  // the 5-one prefix + terminator must be real bits
      unsigned ones = static_cast<unsigned>(__builtin_clzll(~top | 1));
      if (ones > 5) ones = 5;
      const unsigned ctrl = ones + (ones < 5 ? 1u : 0u);
      const unsigned width = kWidths[ones];
      const unsigned need = ctrl + width;
      if (need > valid) {
        // 64-bit raw escape, or a payload spilling past the window:
        // finish the row with a split read and start a fresh word.
        r.advance(used + ctrl);
        if (width > 57) {
          delta += r.take_wide(width);
        } else {
          delta += static_cast<std::uint64_t>(
              sign_extend(r.take(width), width));
        }
        prev += delta;
        out[i++] = static_cast<std::int64_t>(prev);
        spilled = true;
        break;
      }
      delta += static_cast<std::uint64_t>(
          sign_extend((top << ctrl) >> (64u - width), width));
      prev += delta;
      out[i++] = static_cast<std::int64_t>(prev);
      used += need;
    }
    if (!spilled) r.advance(used);
  }
}

// ---------------------------------------------------------------------
// Canonical folds (grammar in simd.hpp).  The lane loop differs per
// variant; the per-lane add sequence and the final combine are the same
// DAG everywhere, so sums are bit-identical — NaN payload rules
// included, since vaddpd/addpd lanes follow the same IEEE + x86 rules
// as scalar addsd, operand order preserved.

// A NaN fold result canonicalizes to the default quiet NaN: compilers
// may commute FP adds, and x86 add propagates the payload of whichever
// NaN arrives as the first operand, so raw payloads are not stable
// across codegen — the canonical payload is.
[[nodiscard]] inline double canonicalize_nan(double d) {
  if (d != d) {
    constexpr std::uint64_t kQuietNan = 0x7ff8'0000'0000'0000ull;
    std::memcpy(&d, &kQuietNan, 8);
  }
  return d;
}

[[nodiscard]] inline bool is_negative_zero(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, 8);
  return bits == 0x8000'0000'0000'0000ull;
}
[[nodiscard]] inline bool is_positive_zero(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, 8);
  return bits == 0;
}

inline void fold_subchunk_impl(const double* v, std::size_t n, SubchunkFold& out) {
  if (n == kSubchunkRows) {
    // Full subchunk: the 4-lane tree (the grammar's vector shape).
    double acc[4];
    double acc_sq[4];
#if defined(ENVMON_SIMD_KERNEL_AVX2)
    __m256d s = _mm256_setzero_pd();
    __m256d sq = _mm256_setzero_pd();
    for (std::size_t k = 0; k < kSubchunkRows; k += 4) {
      const __m256d x = _mm256_loadu_pd(v + k);
      s = _mm256_add_pd(s, x);
      sq = _mm256_add_pd(sq, _mm256_mul_pd(x, x));
    }
    _mm256_storeu_pd(acc, s);
    _mm256_storeu_pd(acc_sq, sq);
#elif defined(ENVMON_SIMD_KERNEL_SSE2)
    __m128d s01 = _mm_setzero_pd(), s23 = _mm_setzero_pd();
    __m128d q01 = _mm_setzero_pd(), q23 = _mm_setzero_pd();
    for (std::size_t k = 0; k < kSubchunkRows; k += 4) {
      const __m128d x01 = _mm_loadu_pd(v + k);
      const __m128d x23 = _mm_loadu_pd(v + k + 2);
      s01 = _mm_add_pd(s01, x01);
      s23 = _mm_add_pd(s23, x23);
      q01 = _mm_add_pd(q01, _mm_mul_pd(x01, x01));
      q23 = _mm_add_pd(q23, _mm_mul_pd(x23, x23));
    }
    _mm_storeu_pd(acc, s01);
    _mm_storeu_pd(acc + 2, s23);
    _mm_storeu_pd(acc_sq, q01);
    _mm_storeu_pd(acc_sq + 2, q23);
#else
    for (std::size_t j = 0; j < 4; ++j) {
      acc[j] = 0.0;
      acc_sq[j] = 0.0;
    }
    for (std::size_t k = 0; k < kSubchunkRows; k += 4) {
      for (std::size_t j = 0; j < 4; ++j) {
        acc[j] += v[k + j];
        acc_sq[j] += v[k + j] * v[k + j];
      }
    }
#endif
    out.sum = canonicalize_nan((acc[0] + acc[1]) + (acc[2] + acc[3]));
    out.sum_sq = canonicalize_nan((acc_sq[0] + acc_sq[1]) + (acc_sq[2] + acc_sq[3]));
  } else {
    // Short run (tail / bucket edge): plain left-to-right.
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += v[i];
      sum_sq += v[i] * v[i];
    }
    out.sum = canonicalize_nan(sum);
    out.sum_sq = canonicalize_nan(sum_sq);
  }

  // min/max/finite: order-independent by the canonical zero rule, so
  // the lane structure is free to differ from the scalar scan.
  double mn = 0.0, mx = 0.0;
  std::uint32_t finite = 0;
  bool neg_zero = false, pos_zero = false;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = v[i];
    if (std::isnan(d)) continue;
    if (finite == 0) {
      mn = mx = d;
    } else {
      if (d < mn) mn = d;
      if (d > mx) mx = d;
    }
    ++finite;
    if (d == 0.0) {
      if (is_negative_zero(d)) neg_zero = true;
      else pos_zero = true;
    }
  }
  if (finite > 0 && mn == 0.0) mn = neg_zero ? -0.0 : 0.0;
  if (finite > 0 && mx == 0.0) mx = pos_zero ? 0.0 : -0.0;
  out.min = mn;
  out.max = mx;
  out.finite = finite;
}

inline double sum_subchunk_impl(const double* v, std::size_t n) {
  if (n == kSubchunkRows) {
    double acc[4];
#if defined(ENVMON_SIMD_KERNEL_AVX2)
    __m256d s = _mm256_setzero_pd();
    for (std::size_t k = 0; k < kSubchunkRows; k += 4) {
      s = _mm256_add_pd(s, _mm256_loadu_pd(v + k));
    }
    _mm256_storeu_pd(acc, s);
#elif defined(ENVMON_SIMD_KERNEL_SSE2)
    __m128d s01 = _mm_setzero_pd(), s23 = _mm_setzero_pd();
    for (std::size_t k = 0; k < kSubchunkRows; k += 4) {
      s01 = _mm_add_pd(s01, _mm_loadu_pd(v + k));
      s23 = _mm_add_pd(s23, _mm_loadu_pd(v + k + 2));
    }
    _mm_storeu_pd(acc, s01);
    _mm_storeu_pd(acc + 2, s23);
#else
    for (std::size_t j = 0; j < 4; ++j) acc[j] = 0.0;
    for (std::size_t k = 0; k < kSubchunkRows; k += 4) {
      for (std::size_t j = 0; j < 4; ++j) acc[j] += v[k + j];
    }
#endif
    return canonicalize_nan((acc[0] + acc[1]) + (acc[2] + acc[3]));
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += v[i];
  return canonicalize_nan(sum);
}

inline void fold_subchunk_entry(const double* v, std::size_t n, SubchunkFold& out) {
  fold_subchunk_impl(v, n, out);
}
inline double sum_subchunk_entry(const double* v, std::size_t n) {
  return sum_subchunk_impl(v, n);
}
inline void decode_xor_column_entry(const std::uint8_t* stream, std::size_t stream_bytes,
                                    const std::uint32_t* chunk_offsets, std::size_t chunks,
                                    std::size_t rows, double* out) {
  decode_xor_column_impl(stream, stream_bytes, chunk_offsets, chunks, rows, out);
}
inline void decode_xor_subchunk_entry(const std::uint8_t* stream, std::size_t stream_bytes,
                                      std::size_t bit_offset, std::size_t rows, double* out) {
  decode_xor_subchunk_impl(stream, stream_bytes, bit_offset, rows, out);
}
inline void decode_dod_entry(const std::uint8_t* stream, std::size_t stream_bytes,
                             std::size_t rows, std::int64_t* out) {
  decode_dod_impl(stream, stream_bytes, rows, out);
}

[[nodiscard]] inline Kernels make_kernels(Variant v) {
  Kernels k;
  k.variant = v;
  k.fold_subchunk = &fold_subchunk_entry;
  k.sum_subchunk = &sum_subchunk_entry;
  k.decode_xor_column = &decode_xor_column_entry;
  k.decode_xor_subchunk = &decode_xor_subchunk_entry;
  k.decode_dod = &decode_dod_entry;
  return k;
}

}  // namespace ENVMON_SIMD_KERNEL_NS
}  // namespace envmon::tsdb::simd
