#include "tsdb/series.hpp"

#include <algorithm>

namespace envmon::tsdb {

namespace {

// Head vectors grow in bounded steps instead of the libstdc++ 2x-from-1
// ramp: fleet ingest touches thousands of series per epoch, and the
// 1/2/4/8 reallocation churn on every young series is measurable.
constexpr std::size_t kHeadInitialCapacity = 32;

}  // namespace

bool Series::append(std::int64_t ts_ns, double value, std::uint64_t seq) {
  if (head_ts_.size() == head_ts_.capacity()) {
    const std::size_t grown =
        std::max(kHeadInitialCapacity, head_ts_.capacity() * 2);
    reserve_head(std::min(grown, Block::kMaxRows) - head_ts_.size());
  }
  head_ts_.push_back(ts_ns);
  head_values_.push_back(value);
  head_seq_.push_back(seq);
  if (head_ts_.size() >= Block::kMaxRows) return seal_head(1);
  return false;
}

void Series::reserve_head(std::size_t extra) {
  const std::size_t target = std::min(head_ts_.size() + extra, Block::kMaxRows);
  head_ts_.reserve(target);
  head_values_.reserve(target);
  head_seq_.reserve(target);
}

bool Series::seal_head(std::size_t min_rows) {
  if (head_ts_.empty() || head_ts_.size() < std::max<std::size_t>(min_rows, 1)) return false;
  push_block(Block::seal(head_ts_, head_values_, head_seq_, compress_));
  block_rows_ += head_ts_.size();
  head_ts_.clear();
  head_values_.clear();
  head_seq_.clear();
  head_ts_.shrink_to_fit();
  head_values_.shrink_to_fit();
  head_seq_.shrink_to_fit();
  return true;
}

void Series::push_block(Block block) {
  block_bytes_ += block.bytes_used();
  blocks_.push_back(std::move(block));
}

std::size_t Series::drop_before(std::int64_t cutoff_ns) {
  std::size_t dropped = 0;
  // Whole expired blocks go without decoding.
  std::size_t whole = 0;
  while (whole < blocks_.size() && blocks_[whole].summary().ts_max < cutoff_ns) {
    dropped += blocks_[whole].rows();
    ++whole;
  }
  bool rebuilt_boundary = false;
  Block boundary;
  if (whole < blocks_.size() && blocks_[whole].summary().ts_min < cutoff_ns) {
    // At most one block straddles the cutoff (blocks are time-ordered):
    // decode it, drop the expired prefix, re-seal the remainder.
    const Block& b = blocks_[whole];
    std::vector<std::int64_t> ts;
    std::vector<double> values;
    std::vector<std::uint64_t> seq;
    b.decode_timestamps(ts);
    b.decode_values(values);
    b.decode_seq(seq);
    const auto it = std::lower_bound(ts.begin(), ts.end(), cutoff_ns);
    const auto n = static_cast<std::size_t>(std::distance(ts.begin(), it));
    dropped += n;
    boundary = Block::seal({ts.data() + n, ts.size() - n}, {values.data() + n, values.size() - n},
                           {seq.data() + n, seq.size() - n}, compress_);
    rebuilt_boundary = true;
    ++whole;
  }
  if (whole > 0) {
    for (std::size_t i = 0; i < whole; ++i) {
      block_rows_ -= blocks_[i].rows();
      block_bytes_ -= blocks_[i].bytes_used();
    }
    blocks_.erase(blocks_.begin(), blocks_.begin() + static_cast<std::ptrdiff_t>(whole));
    if (rebuilt_boundary) {
      block_rows_ += boundary.rows();
      block_bytes_ += boundary.bytes_used();
      blocks_.insert(blocks_.begin(), std::move(boundary));
    }
  }
  if (blocks_.empty() && !head_ts_.empty() && head_ts_.front() < cutoff_ns) {
    const auto it = std::lower_bound(head_ts_.begin(), head_ts_.end(), cutoff_ns);
    const auto n = static_cast<std::size_t>(std::distance(head_ts_.begin(), it));
    if (n > 0) {
      head_ts_.erase(head_ts_.begin(), it);
      head_values_.erase(head_values_.begin(), head_values_.begin() + static_cast<std::ptrdiff_t>(n));
      head_seq_.erase(head_seq_.begin(), head_seq_.begin() + static_cast<std::ptrdiff_t>(n));
      dropped += n;
    }
  }
  return dropped;
}

Series::RowRange Series::head_range(std::optional<std::int64_t> from_ns,
                                    std::optional<std::int64_t> to_ns) const {
  RowRange r{0, head_ts_.size()};
  if (from_ns) {
    r.first = static_cast<std::size_t>(std::distance(
        head_ts_.begin(), std::lower_bound(head_ts_.begin(), head_ts_.end(), *from_ns)));
  }
  if (to_ns) {
    r.last = static_cast<std::size_t>(std::distance(
        head_ts_.begin(), std::upper_bound(head_ts_.begin(), head_ts_.end(), *to_ns)));
  }
  if (r.last < r.first) r.last = r.first;
  return r;
}

}  // namespace envmon::tsdb
