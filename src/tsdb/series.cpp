#include "tsdb/series.hpp"

#include <algorithm>

namespace envmon::tsdb {

std::size_t Series::drop_before(std::int64_t cutoff_ns) {
  const auto it = std::lower_bound(ts_ns_.begin(), ts_ns_.end(), cutoff_ns);
  const auto n = static_cast<std::size_t>(std::distance(ts_ns_.begin(), it));
  if (n == 0) return 0;
  ts_ns_.erase(ts_ns_.begin(), it);
  values_.erase(values_.begin(), values_.begin() + static_cast<std::ptrdiff_t>(n));
  seq_.erase(seq_.begin(), seq_.begin() + static_cast<std::ptrdiff_t>(n));
  return n;
}

Series::RowRange Series::range(std::optional<std::int64_t> from_ns,
                               std::optional<std::int64_t> to_ns) const {
  RowRange r{0, ts_ns_.size()};
  if (from_ns) {
    r.first = static_cast<std::size_t>(std::distance(
        ts_ns_.begin(), std::lower_bound(ts_ns_.begin(), ts_ns_.end(), *from_ns)));
  }
  if (to_ns) {
    r.last = static_cast<std::size_t>(std::distance(
        ts_ns_.begin(), std::upper_bound(ts_ns_.begin(), ts_ns_.end(), *to_ns)));
  }
  if (r.last < r.first) r.last = r.first;
  return r;
}

}  // namespace envmon::tsdb
