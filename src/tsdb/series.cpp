#include "tsdb/series.hpp"

#include <algorithm>

namespace envmon::tsdb {

namespace {

// Head vectors grow in bounded steps instead of the libstdc++ 2x-from-1
// ramp: fleet ingest touches thousands of series per epoch, and the
// 1/2/4/8 reallocation churn on every young series is measurable.
constexpr std::size_t kHeadInitialCapacity = 32;

}  // namespace

bool Series::append(std::int64_t ts_ns, double value, std::uint64_t seq) {
  append_raw(ts_ns, value, seq);
  if (head_ts_.size() >= Block::kMaxRows) return seal_head(1);
  return false;
}

void Series::append_raw(std::int64_t ts_ns, double value, std::uint64_t seq) {
  if (head_ts_.size() == head_ts_.capacity()) {
    const std::size_t grown =
        std::max(kHeadInitialCapacity, head_ts_.capacity() * 2);
    reserve_head(std::min(grown, Block::kMaxRows) - head_ts_.size());
  }
  head_ts_.push_back(ts_ns);
  head_values_.push_back(value);
  head_seq_.push_back(seq);
}

void Series::reserve_head(std::size_t extra) {
  const std::size_t target = std::min(head_ts_.size() + extra, Block::kMaxRows);
  head_ts_.reserve(target);
  head_values_.reserve(target);
  head_seq_.reserve(target);
}

bool Series::seal_head(std::size_t min_rows) {
  if (head_ts_.empty() || head_ts_.size() < std::max<std::size_t>(min_rows, 1)) return false;
  push_block(Block::seal(head_ts_, head_values_, head_seq_, compress_));
  block_rows_ += head_ts_.size();
  clear_head();
  return true;
}

void Series::clear_head() {
  head_ts_.clear();
  head_values_.clear();
  head_seq_.clear();
  head_ts_.shrink_to_fit();
  head_values_.shrink_to_fit();
  head_seq_.shrink_to_fit();
}

void Series::push_block(Block block) {
  Sealed entry;
  entry.summary = block.summary();
  if (store_ != nullptr && store_->is_open()) {
    // Durable seal: the seq-free payload becomes (or re-references) a
    // content-addressed extent; the seq sidecar stays with this entry.
    std::vector<std::uint8_t> payload;
    block.encode_extent(payload);
    ExtentRef ref;
    bool dedup_hit = false;
    if (store_->append(payload, ref, dedup_hit).is_ok()) {
      entry.ref = ref;
      block.encode_seq_stream(entry.seq_stream);
      entry.seq_stream.shrink_to_fit();
    }
    // On store failure the block simply stays memory-resident with no
    // durable reference; its rows recover from the WAL as head rows.
  }
  entry.hot.store(new Block(std::move(block)), std::memory_order_release);
  sealed_.push_back(std::move(entry));
}

bool Series::adopt_sealed(const BlockSummary& summary, const ExtentRef& ref,
                          std::vector<std::uint8_t> seq_stream,
                          std::size_t rows_from_head) {
  // A seal record always consumed the series' entire head, so replay
  // must find exactly that prefix; anything else is WAL corruption.
  if (rows_from_head != head_ts_.size() || rows_from_head != summary.rows ||
      rows_from_head == 0) {
    return false;
  }
  if (head_ts_.front() != summary.ts_min || head_ts_.back() != summary.ts_max ||
      head_seq_.front() != summary.seq_first || head_seq_.back() != summary.seq_last) {
    return false;
  }
  restore_sealed(summary, ref, std::move(seq_stream));
  clear_head();
  return true;
}

void Series::restore_sealed(const BlockSummary& summary, const ExtentRef& ref,
                            std::vector<std::uint8_t> seq_stream) {
  Sealed entry;
  entry.summary = summary;
  entry.ref = ref;
  entry.seq_stream = std::move(seq_stream);
  sealed_.push_back(std::move(entry));  // cold: materialized on first touch
  block_rows_ += summary.rows;
}

const Block* Series::block(std::size_t i) const {
  const Sealed& entry = sealed_[i];
  if (Block* hot = entry.hot.load(std::memory_order_acquire); hot != nullptr) return hot;
  if (entry.quarantined.load(std::memory_order_acquire)) return nullptr;
  if (!entry.ref || store_ == nullptr) return nullptr;
  std::vector<std::uint8_t> payload;
  if (!store_->load(*entry.ref, payload).is_ok()) {
    entry.quarantined.store(true, std::memory_order_release);
    return nullptr;
  }
  std::optional<Block> decoded = Block::decode_extent(
      payload, entry.seq_stream, entry.summary.seq_first, entry.summary.seq_last);
  if (!decoded || decoded->rows() != entry.summary.rows) {
    store_->note_decode_failure();
    entry.quarantined.store(true, std::memory_order_release);
    return nullptr;
  }
  // Parallel materializers race benignly: first CAS wins, losers free.
  auto* fresh = new Block(std::move(*decoded));
  Block* expected = nullptr;
  if (entry.hot.compare_exchange_strong(expected, fresh, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
    return fresh;
  }
  delete fresh;
  return expected;
}

std::size_t Series::evict_block(std::size_t i) {
  Sealed& entry = sealed_[i];
  if (!entry.ref || entry.quarantined.load(std::memory_order_relaxed)) return 0;
  Block* hot = entry.hot.exchange(nullptr, std::memory_order_acq_rel);
  if (hot == nullptr) return 0;
  const std::size_t bytes = hot->bytes_used();
  delete hot;
  return bytes;
}

std::size_t Series::resident_sealed_bytes() const {
  std::size_t bytes = 0;
  for (const Sealed& entry : sealed_) {
    if (const Block* hot = entry.hot.load(std::memory_order_acquire); hot != nullptr) {
      bytes += hot->bytes_used();
    }
  }
  return bytes;
}

std::size_t Series::drop_before(std::int64_t cutoff_ns) {
  std::size_t dropped = 0;
  // Whole expired blocks go without decoding.
  std::size_t whole = 0;
  while (whole < sealed_.size() && sealed_[whole].summary.ts_max < cutoff_ns) {
    dropped += sealed_[whole].summary.rows;
    ++whole;
  }
  bool rebuilt_boundary = false;
  Block boundary;
  if (whole < sealed_.size() && sealed_[whole].summary.ts_min < cutoff_ns) {
    // At most one block straddles the cutoff (blocks are time-ordered):
    // decode it, drop the expired prefix, re-seal the remainder.  A
    // quarantined straddler cannot be decoded — drop it whole instead
    // (its rows were already lost to corruption).
    if (const Block* b = block(whole); b != nullptr) {
      std::vector<std::int64_t> ts;
      std::vector<double> values;
      std::vector<std::uint64_t> seq;
      b->decode_timestamps(ts);
      b->decode_values(values);
      b->decode_seq(seq);
      const auto it = std::lower_bound(ts.begin(), ts.end(), cutoff_ns);
      const auto n = static_cast<std::size_t>(std::distance(ts.begin(), it));
      dropped += n;
      boundary = Block::seal({ts.data() + n, ts.size() - n},
                             {values.data() + n, values.size() - n},
                             {seq.data() + n, seq.size() - n}, compress_);
      rebuilt_boundary = true;
    } else {
      dropped += sealed_[whole].summary.rows;
    }
    ++whole;
  }
  if (whole > 0) {
    for (std::size_t i = 0; i < whole; ++i) {
      block_rows_ -= sealed_[i].summary.rows;
      if (sealed_[i].ref && store_ != nullptr) store_->release(*sealed_[i].ref);
    }
    sealed_.erase(sealed_.begin(), sealed_.begin() + static_cast<std::ptrdiff_t>(whole));
    if (rebuilt_boundary) {
      block_rows_ += boundary.rows();
      // Re-seal through the normal path (the trimmed payload usually
      // dedups against nothing and becomes a fresh extent), then move
      // the entry to its time-ordered place at the front.
      push_block(std::move(boundary));
      std::rotate(sealed_.begin(), sealed_.end() - 1, sealed_.end());
    }
  }
  if (sealed_.empty() && !head_ts_.empty() && head_ts_.front() < cutoff_ns) {
    const auto it = std::lower_bound(head_ts_.begin(), head_ts_.end(), cutoff_ns);
    const auto n = static_cast<std::size_t>(std::distance(head_ts_.begin(), it));
    if (n > 0) {
      head_ts_.erase(head_ts_.begin(), it);
      head_values_.erase(head_values_.begin(), head_values_.begin() + static_cast<std::ptrdiff_t>(n));
      head_seq_.erase(head_seq_.begin(), head_seq_.begin() + static_cast<std::ptrdiff_t>(n));
      dropped += n;
    }
  }
  return dropped;
}

Series::RowRange Series::head_range(std::optional<std::int64_t> from_ns,
                                    std::optional<std::int64_t> to_ns) const {
  RowRange r{0, head_ts_.size()};
  if (from_ns) {
    r.first = static_cast<std::size_t>(std::distance(
        head_ts_.begin(), std::lower_bound(head_ts_.begin(), head_ts_.end(), *from_ns)));
  }
  if (to_ns) {
    r.last = static_cast<std::size_t>(std::distance(
        head_ts_.begin(), std::upper_bound(head_ts_.begin(), head_ts_.end(), *to_ns)));
  }
  if (r.last < r.first) r.last = r.first;
  return r;
}

std::size_t Series::bytes_used() const {
  std::size_t bytes = head_ts_.capacity() * sizeof(std::int64_t) +
                      head_values_.capacity() * sizeof(double) +
                      head_seq_.capacity() * sizeof(std::uint64_t) +
                      sealed_.capacity() * sizeof(Sealed);
  for (const Sealed& entry : sealed_) {
    if (const Block* hot = entry.hot.load(std::memory_order_acquire); hot != nullptr) {
      bytes += hot->bytes_used();
    }
    bytes += entry.seq_stream.capacity();
  }
  return bytes;
}

}  // namespace envmon::tsdb
