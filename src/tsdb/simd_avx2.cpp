// AVX2 variant (compiled with -mavx2; folds use 4-wide __m256d lanes —
// the canonical fold grammar verbatim).  No -mfma: contraction of the
// sum_sq multiply-add into an FMA would change rounding and break the
// cross-variant byte-identity contract.
#define ENVMON_SIMD_KERNEL_NS avx2_impl
#define ENVMON_SIMD_KERNEL_AVX2 1
#include "tsdb/simd_kernels.hh"

namespace envmon::tsdb::simd {

const Kernels& avx2_kernels() {
  static const Kernels k = avx2_impl::make_kernels(Variant::kAvx2);
  return k;
}

}  // namespace envmon::tsdb::simd
