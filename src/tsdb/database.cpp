#include "tsdb/database.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "tsdb/simd.hpp"

namespace envmon::tsdb {

namespace {

// Bucket index with floor semantics: integer `/` truncates toward zero,
// which would mis-bucket pre-epoch (negative) timestamps to the right.
constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  const std::int64_t q = a / b;
  return (a % b != 0 && (a < 0) != (b < 0)) ? q - 1 : q;
}

double elapsed_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Per-thread decode buffers, reused across the blocks a worker scans.
struct DecodeScratch {
  std::vector<std::int64_t> ts;
  std::vector<double> values;
  std::vector<std::uint64_t> seq;
};

std::string wal_filename(std::uint32_t number) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%06u.log", number);
  return name;
}

std::string wal_path(const std::string& dir, std::uint32_t number) {
  return dir + "/" + wal_filename(number);
}

// Best-effort directory fsync (rename/unlink durability).
void sync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

// Sanity ceilings for checkpoint decoding: a corrupt count must fail
// fast, not drive a multi-gigabyte allocation.
constexpr std::uint32_t kMaxCheckpointMetrics = 1u << 20;
constexpr std::uint32_t kMaxCheckpointSeries = 1u << 24;
constexpr std::uint32_t kMaxCheckpointBlocks = 1u << 24;
constexpr std::uint32_t kMaxCheckpointWindow = 1u << 27;

}  // namespace

EnvDatabase::EnvDatabase(DatabaseOptions options) : options_(options) {
  if (obs::enabled()) {
    auto& registry = obs::default_registry();
    inserts_metric_ = &registry.counter("envmon_tsdb_inserts_total",
                                        "Records accepted by the environmental database");
    rejected_metric_ = &registry.counter(
        "envmon_tsdb_rejected_inserts_total",
        "Inserts rejected (ingest rate ceiling or out-of-order timestamps)");
    cache_hits_metric_ =
        &registry.counter("envmon_tsdb_downsample_cache_hits_total",
                          "Downsample queries served from the LRU result cache");
    cache_misses_metric_ =
        &registry.counter("envmon_tsdb_downsample_cache_misses_total",
                          "Downsample queries that touched the storage engine");
    seals_metric_ = &registry.counter("envmon_tsdb_block_seals_total",
                                      "Series heads sealed into immutable blocks");
    pushdown_metric_ = &registry.counter(
        "envmon_tsdb_pushdown_buckets_total",
        "Downsample/aggregate windows served from block or subchunk summaries");
    query_latency_metric_ =
        &registry.histogram("envmon_tsdb_query_latency_ms",
                            "Wall-clock latency of environmental database queries",
                            obs::Histogram::latency_bounds_ms());
    rows_scanned_metric_ = &registry.histogram(
        "envmon_tsdb_query_rows_scanned",
        "Rows touched per query after index and time-range narrowing",
        obs::Histogram::exponential_bounds(1.0, 4.0, 12));
    series_gauge_ = &registry.gauge(
        "envmon_tsdb_series", "Live (location, metric) series in the environmental database");
    bytes_used_gauge_ =
        &registry.gauge("envmon_tsdb_bytes_used",
                        "Approximate heap footprint of the environmental database");
    bytes_per_record_gauge_ =
        &registry.gauge("envmon_tsdb_bytes_per_record",
                        "Heap bytes per live record in the environmental database");
    wal_bytes_metric_ = &registry.counter(
        "envmon_tsdb_wal_bytes_total",
        "Bytes appended to the write-ahead log (frames and checkpoints)");
    dedup_metric_ = &registry.counter(
        "envmon_tsdb_dedup_blocks_total",
        "Sealed blocks whose payload deduplicated to an existing on-disk extent");
    cold_loads_metric_ = &registry.counter(
        "envmon_tsdb_cold_block_loads_total",
        "Evicted sealed blocks re-materialized from their mapped extents");
    quarantined_metric_ = &registry.counter(
        "envmon_tsdb_quarantined_blocks_total",
        "Sealed blocks quarantined by a checksum or decode failure");
    evicted_metric_ = &registry.counter(
        "envmon_tsdb_evicted_blocks_total",
        "Durable sealed blocks evicted from memory by the resident-bytes bound");
    segments_open_gauge_ = &registry.gauge(
        "envmon_tsdb_segments_open", "Live segment files in the durable block store");
    disk_bytes_gauge_ = &registry.gauge(
        "envmon_tsdb_disk_bytes", "Bytes held by segment files on disk");
    recovery_seconds_gauge_ = &registry.gauge(
        "envmon_tsdb_recovery_seconds",
        "Wall-clock seconds the last open() spent recovering durable state");
    decode_rows_metric_ = &registry.counter(
        "envmon_tsdb_decode_rows_total",
        "Value rows decoded from sealed blocks by query/downsample/aggregate");
    // Info gauge: constant 1, the label names the decode variant the
    // CPU probe (or ENVMON_SIMD) selected at startup.
    auto& dispatch_gauge = registry.gauge(
        "envmon_tsdb_simd_dispatch", "Active vectorized decode variant (info gauge)",
        std::string("variant=\"") + simd::variant_name(simd::dispatched_variant()) + "\"");
    dispatch_gauge.set(1.0);
  }
}

bool EnvDatabase::over_ingest_rate(sim::SimTime now) {
  if (options_.max_insert_rate_per_second <= 0.0) return false;
  const std::int64_t window_start = (now - options_.rate_window).ns();
  // Accepted timestamps only move forward, so trimming the front is O(1)
  // amortized — the flat store binary-searched all live records instead.
  while (!rate_window_.empty() && rate_window_.front() < window_start) {
    rate_window_.pop_front();
  }
  const double window_seconds = options_.rate_window.to_seconds();
  return static_cast<double>(rate_window_.size()) >=
         options_.max_insert_rate_per_second * window_seconds;
}

void EnvDatabase::note_accept(const Record& record, std::uint32_t sid) {
  const std::int64_t ts = record.timestamp.ns();
  // The WAL buffers the record before the append so a seal triggered by
  // this very row finds its insert frame already ahead of the seal frame.
  if (durable_ != nullptr) dlog_insert(record, series_[sid].metric());
  if (series_[sid].append(ts, record.value, next_seq_++)) {
    note_seal(1);
    if (durable_ != nullptr) dlog_seal(sid);
  }
  // Self-telemetry rows never consume ingest-rate budget (reserved
  // namespace, database.hpp).
  if (options_.max_insert_rate_per_second > 0.0 && !is_self_metric(record.metric)) {
    rate_window_.push_back(ts);
  }
  if (!any_accepted_) oldest_ts_ns_ = ts;
  any_accepted_ = true;
  last_ts_ns_ = ts;
  ++total_rows_;
  ++generation_;
  if (tracer_ != nullptr) {
    tracer_->event_at(record.timestamp, "tsdb.insert", record.metric);
  }
}

std::uint32_t EnvDatabase::ensure_series(const Location& location, MetricId metric) {
  std::uint32_t& slot = index_.slot(location, metric);
  if (slot == ShardIndex::kNoSeries) {
    slot = static_cast<std::uint32_t>(series_.size());
    series_.emplace_back(location, metric, options_.compress_blocks);
    if (durable_ != nullptr) series_.back().attach_store(&durable_->store);
    if (series_gauge_ != nullptr) series_gauge_->set(static_cast<double>(series_.size()));
  }
  return slot;
}

void EnvDatabase::append_row(const Record& record, MetricId metric) {
  note_accept(record, ensure_series(record.location, metric));
}

Status EnvDatabase::insert(const Record& record) {
  if (fault_hook_.attached()) {
    const fault::Outcome fo = fault_hook_.intercept();
    if (!fo.ok()) {
      ++rejected_;
      if (rejected_metric_ != nullptr) rejected_metric_->inc();
      return fo.status;
    }
  }
  if (any_accepted_ && record.timestamp.ns() < last_ts_ns_) {
    ++rejected_;
    if (rejected_metric_ != nullptr) rejected_metric_->inc();
    // Static message: the hot reject path must not format the timestamp.
    return Status::invalid_argument("out-of-order insert");
  }
  if (!is_self_metric(record.metric) && over_ingest_rate(record.timestamp)) {
    ++rejected_;
    if (rejected_metric_ != nullptr) rejected_metric_->inc();
    return Status::resource_exhausted("environmental database ingest rate ceiling exceeded");
  }
  append_row(record, metrics_.intern(record.metric));
  if (inserts_metric_ != nullptr) inserts_metric_->inc();
  if (options_.retention) vacuum();
  after_durable_write();
  return Status::ok();
}

EnvDatabase::BatchResult EnvDatabase::insert_batch(std::span<const Record> records) {
  BatchResult result;
  // One intercept per batch: a server outage loses the whole write, the
  // way one failed bulk INSERT does.
  if (fault_hook_.attached() && !fault_hook_.intercept().ok()) {
    result.rejected_unavailable = records.size();
    rejected_ += result.rejected_unavailable;
    if (rejected_metric_ != nullptr && !records.empty()) {
      rejected_metric_->inc(result.rejected_unavailable);
    }
    return result;
  }
  // Collectors emit runs of same-(location, metric) records (one node's
  // domains in order), so the batch is processed run-at-a-time: metric
  // interning, the shard-index walk, and the head-buffer reserve each
  // happen once per run, not once per record.  The series slot is only
  // resolved when a record of the run actually passes validation, so a
  // fully rejected run creates no series and interns nothing.
  const std::size_t n = records.size();
  std::size_t run_end = 0;
  bool run_metric_known = false;
  bool run_self = false;
  MetricId run_metric = 0;
  std::uint32_t run_sid = ShardIndex::kNoSeries;
  for (std::size_t i = 0; i < n; ++i) {
    const Record& record = records[i];
    if (i >= run_end) {
      run_end = i + 1;
      while (run_end < n && records[run_end].location == record.location &&
             records[run_end].metric == record.metric) {
        ++run_end;
      }
      run_metric_known = false;
      run_self = is_self_metric(record.metric);
      run_sid = ShardIndex::kNoSeries;
    }
    if (any_accepted_ && record.timestamp.ns() < last_ts_ns_) {
      ++result.rejected_out_of_order;
      continue;
    }
    if (!run_self && over_ingest_rate(record.timestamp)) {
      ++result.rejected_rate_limited;
      continue;
    }
    if (run_sid == ShardIndex::kNoSeries) {
      if (!run_metric_known) {
        run_metric = metrics_.intern(record.metric);
        run_metric_known = true;
      }
      run_sid = ensure_series(record.location, run_metric);
      series_[run_sid].reserve_head(run_end - i);
    }
    note_accept(record, run_sid);
    ++result.accepted;
  }
  rejected_ += result.rejected();
  if (inserts_metric_ != nullptr && result.accepted > 0) {
    inserts_metric_->inc(result.accepted);
  }
  if (rejected_metric_ != nullptr && result.rejected() > 0) {
    rejected_metric_->inc(result.rejected());
  }
  // Retention runs once per batch, not once per record; the end state is
  // the same because the cutoff depends only on the newest record.
  if (options_.retention && result.accepted > 0) vacuum();
  after_durable_write();
  update_footprint_metrics();
  return result;
}

std::size_t EnvDatabase::seal_blocks(std::size_t min_rows) {
  std::size_t sealed = 0;
  for (std::uint32_t sid = 0; sid < series_.size(); ++sid) {
    if (series_[sid].seal_head(min_rows)) {
      ++sealed;
      if (durable_ != nullptr) dlog_seal(sid);
    }
  }
  // No generation bump: sealing preserves rows, ordering, and the
  // subchunk aggregation grid, so cached downsample results stay valid.
  if (sealed > 0) note_seal(sealed);
  after_durable_write();
  update_footprint_metrics();
  return sealed;
}

void EnvDatabase::note_seal(std::size_t blocks) {
  stats_.blocks_sealed += blocks;
  if (seals_metric_ != nullptr) seals_metric_->inc(blocks);
}

bool EnvDatabase::resolve_series(const QueryFilter& filter,
                                 std::vector<std::uint32_t>& sids) const {
  std::optional<MetricId> metric;
  if (filter.metric) {
    metric = metrics_.find(*filter.metric);
    if (!metric) return false;  // metric never ingested: no candidate series
  }
  index_.collect(filter.location_prefix, metric, sids);
  stats_.series_touched += sids.size();
  return true;
}

void EnvDatabase::collect_parts(std::span<const std::uint32_t> sids,
                                std::optional<std::int64_t> from_ns,
                                std::optional<std::int64_t> to_ns,
                                std::vector<ScanPart>& parts) const {
  for (const std::uint32_t sid : sids) {
    const Series& s = series_[sid];
    for (std::size_t b = 0; b < s.block_count(); ++b) {
      if (s.block_quarantined(b)) continue;  // corrupt extent: rows are gone
      const BlockSummary& sum = s.block_summary(b);
      if (from_ns && sum.ts_max < *from_ns) continue;
      if (to_ns && sum.ts_min > *to_ns) break;  // blocks are time-ordered
      parts.push_back(ScanPart{sid, static_cast<std::int32_t>(b), sum.rows});
    }
    const Series::RowRange r = s.head_range(from_ns, to_ns);
    if (r.size() > 0) parts.push_back(ScanPart{sid, -1, r.size()});
  }
}

void EnvDatabase::note_query(std::uint64_t rows_scanned, double elapsed_ms) const {
  ++stats_.queries;
  stats_.rows_scanned += rows_scanned;
  if (query_latency_metric_ != nullptr) query_latency_metric_->observe(elapsed_ms);
  if (rows_scanned_metric_ != nullptr) {
    rows_scanned_metric_->observe(static_cast<double>(rows_scanned));
  }
}

std::vector<Record> EnvDatabase::query(const QueryFilter& filter) const {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Record> out;
  std::vector<std::uint32_t> sids;
  if (!resolve_series(filter, sids)) {
    note_query(0, elapsed_ms_since(t0));
    return out;
  }
  std::optional<std::int64_t> from_ns, to_ns;
  if (filter.from) from_ns = filter.from->ns();
  if (filter.to) to_ns = filter.to->ns();

  std::vector<ScanPart> parts;
  collect_parts(sids, from_ns, to_ns, parts);
  if (parts.empty()) {
    note_query(0, elapsed_ms_since(t0));
    return out;
  }
  std::size_t est = 0;
  for (const ScanPart& p : parts) est += p.est_rows;

  // Decode-and-filter fans out over parts; each part writes its own
  // output slot, so workers share nothing mutable.  The final merge
  // sorts on the globally unique insertion sequence, which makes the
  // result byte-identical at any thread count (and identical to the
  // flat timestamp-ordered scan, since inserts are time-ordered).
  std::vector<std::vector<DecodedRow>> slots(parts.size());
  std::vector<std::uint64_t> decoded(parts.size(), 0);
  const auto scan_part = [&](std::size_t pi, DecodeScratch& scratch) {
    const ScanPart& part = parts[pi];
    const Series& s = series_[part.sid];
    std::vector<DecodedRow>& rows = slots[pi];
    if (part.block < 0) {
      const Series::RowRange r = s.head_range(from_ns, to_ns);
      rows.reserve(r.size());
      for (std::size_t i = r.first; i < r.last; ++i) {
        rows.push_back(DecodedRow{s.head_seq()[i], s.head_ts()[i], s.head_values()[i],
                                  part.sid});
      }
      return;
    }
    const Block* bp = s.block(static_cast<std::size_t>(part.block));
    if (bp == nullptr) return;  // quarantined at materialization: skip
    const Block& b = *bp;
    b.decode_timestamps(scratch.ts);
    std::size_t a = 0;
    std::size_t e = scratch.ts.size();
    if (from_ns) {
      a = static_cast<std::size_t>(std::distance(
          scratch.ts.begin(),
          std::lower_bound(scratch.ts.begin(), scratch.ts.end(), *from_ns)));
    }
    if (to_ns) {
      e = static_cast<std::size_t>(std::distance(
          scratch.ts.begin(),
          std::upper_bound(scratch.ts.begin(), scratch.ts.end(), *to_ns)));
    }
    if (a >= e) return;
    // Values decode only the subchunks [a, e) touches (cursor path);
    // seq is a single serial delta-of-delta stream, so it decodes whole.
    b.decode_seq(scratch.seq);
    scratch.values.resize(e - a);
    b.decode_values_range(a, e, scratch.values.data());
    decoded[pi] = b.rows();
    rows.reserve(e - a);
    for (std::size_t i = a; i < e; ++i) {
      rows.push_back(
          DecodedRow{scratch.seq[i], scratch.ts[i], scratch.values[i - a], part.sid});
    }
  };

  std::size_t workers = 1;
  if (options_.query_threads > 1 && parts.size() > 1 &&
      est >= options_.parallel_query_min_rows) {
    workers = std::min(options_.query_threads, parts.size());
  }
  if (workers <= 1) {
    DecodeScratch scratch;
    for (std::size_t pi = 0; pi < parts.size(); ++pi) scan_part(pi, scratch);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        DecodeScratch scratch;
        for (std::size_t pi = next.fetch_add(1, std::memory_order_relaxed);
             pi < parts.size(); pi = next.fetch_add(1, std::memory_order_relaxed)) {
          scan_part(pi, scratch);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  std::size_t total = 0;
  for (const auto& slot : slots) total += slot.size();
  std::vector<DecodedRow> rows;
  rows.reserve(total);
  for (const auto& slot : slots) rows.insert(rows.end(), slot.begin(), slot.end());
  std::sort(rows.begin(), rows.end(),
            [](const DecodedRow& a, const DecodedRow& b) { return a.seq < b.seq; });

  out.reserve(total);
  for (const DecodedRow& r : rows) {
    const Series& s = series_[r.sid];
    out.push_back(Record{sim::SimTime::from_ns(r.ts_ns), s.location(),
                         metrics_.name(s.metric()), r.value});
  }
  std::uint64_t decoded_total = 0;
  for (const std::uint64_t d : decoded) decoded_total += d;
  stats_.rows_decoded += decoded_total;
  if (decode_rows_metric_ != nullptr && decoded_total > 0) {
    decode_rows_metric_->inc(decoded_total);
  }
  note_query(total, elapsed_ms_since(t0));
  return out;
}

std::vector<EnvDatabase::Bucket> EnvDatabase::downsample(const QueryFilter& filter,
                                                         sim::Duration bucket_width) const {
  std::vector<Bucket> buckets;
  if (bucket_width.ns() <= 0) return buckets;
  const auto t0 = std::chrono::steady_clock::now();

  if (cache_generation_ != generation_) {
    downsample_cache_.clear();
    cache_generation_ = generation_;
  }
  DownsampleKey key;
  bool cacheable = options_.downsample_cache_capacity > 0;
  if (filter.location_prefix) {
    const Location& p = *filter.location_prefix;
    key.prefix = {p.rack, p.midplane, p.board, p.card};
    key.has_prefix = true;
  }
  if (filter.metric) {
    const auto id = metrics_.find(*filter.metric);
    if (id) {
      key.metric = id;
    } else {
      cacheable = false;  // unknown metric: empty result, not worth a slot
    }
  }
  if (filter.from) key.from_ns = filter.from->ns();
  if (filter.to) key.to_ns = filter.to->ns();
  key.width_ns = bucket_width.ns();

  if (cacheable) {
    if (const auto it = downsample_cache_.find(key); it != downsample_cache_.end()) {
      it->second.last_used = ++cache_tick_;
      ++stats_.cache_hits;
      if (cache_hits_metric_ != nullptr) cache_hits_metric_->inc();
      note_query(0, elapsed_ms_since(t0));
      return it->second.buckets;
    }
    ++stats_.cache_misses;
    if (cache_misses_metric_ != nullptr) cache_misses_metric_->inc();
  }

  std::vector<std::uint32_t> sids;
  if (!resolve_series(filter, sids)) {
    note_query(0, elapsed_ms_since(t0));
    return buckets;
  }
  std::optional<std::int64_t> from_ns, to_ns;
  if (filter.from) from_ns = filter.from->ns();
  if (filter.to) to_ns = filter.to->ns();
  const std::int64_t w = bucket_width.ns();

  // Bucket sums are accumulated at subchunk granularity: every part's
  // rows are cut on the same 16-row grid the sealed blocks use, each
  // (subchunk ∩ bucket) run folded by the canonical grammar (simd.hpp:
  // the 4-lane tree for a full 16-row subchunk, left-to-right for
  // shorter runs), and the partials added in deterministic (series,
  // part, subchunk) order.  A subchunk that lies fully inside one
  // bucket contributes exactly its seal-time sum, so taking the
  // precomputed sum (pushdown) — or decoding it — or hitting the same
  // rows pre-seal in the head — yields bit-identical buckets.
  struct Acc {
    double sum = 0.0;
    std::size_t count = 0;
  };
  std::map<std::int64_t, Acc> acc;
  std::uint64_t aggregated = 0;
  std::uint64_t decoded = 0;
  std::uint64_t pushdown_rows = 0;
  std::uint64_t pushdown_chunks = 0;
  std::vector<std::int64_t> ts_scratch;
  const auto& kernels = simd::active();

  // Folds value rows [a, e) into the bucket accumulators.  `ts` has one
  // entry per row; `chunk_at` returns the decoded rows of one subchunk
  // (a BlockValueCursor for sealed blocks — each subchunk decodes at
  // most once even when several buckets split it — or the head column
  // directly).  A subchunk fully inside both the range and one bucket
  // is served from `whole_sum` when the caller has a precomputed sum
  // (pushdown), else from the canonical fold of its decoded rows —
  // the same bits either way.
  const auto fold_grid = [&](std::span<const std::int64_t> ts, std::size_t a, std::size_t e,
                             bool counts_decoded, auto&& chunk_at, auto&& whole_sum) {
    for (std::size_t c = a / Block::kSubchunkRows; c * Block::kSubchunkRows < e; ++c) {
      const std::size_t cb = c * Block::kSubchunkRows;
      const std::size_t ce = std::min(cb + Block::kSubchunkRows, ts.size());
      const std::size_t lo = std::max(cb, a);
      const std::size_t hi = std::min(ce, e);
      if (lo >= hi) continue;
      if (lo == cb && hi == ce) {
        const std::int64_t b0 = floor_div(ts[cb], w);
        if (floor_div(ts[ce - 1], w) == b0) {
          Acc& slot = acc[b0];
          if (const std::optional<double> sum = whole_sum(c)) {
            slot.sum += *sum;
            pushdown_rows += ce - cb;
            ++pushdown_chunks;
          } else {
            slot.sum += kernels.sum_subchunk(chunk_at(c), ce - cb);
            if (counts_decoded) decoded += ce - cb;
          }
          slot.count += ce - cb;
          aggregated += ce - cb;
          continue;
        }
      }
      const double* chunk = chunk_at(c);
      if (counts_decoded) decoded += ce - cb;
      std::size_t r = lo;
      while (r < hi) {
        const std::int64_t bidx = floor_div(ts[r], w);
        double partial = 0.0;
        const std::size_t start = r;
        while (r < hi && floor_div(ts[r], w) == bidx) {
          partial += chunk[r - cb];
          ++r;
        }
        Acc& slot = acc[bidx];
        slot.sum += partial;
        slot.count += r - start;
        aggregated += r - start;
      }
    }
  };

  for (const std::uint32_t sid : sids) {
    const Series& s = series_[sid];
    for (std::size_t b = 0; b < s.block_count(); ++b) {
      const BlockSummary& sum = s.block_summary(b);
      if (from_ns && sum.ts_max < *from_ns) continue;
      if (to_ns && sum.ts_min > *to_ns) break;
      const Block* bp = s.block(b);
      if (bp == nullptr) continue;  // quarantined: rows are gone
      const Block& block = *bp;
      block.decode_timestamps(ts_scratch);
      std::size_t a = 0;
      std::size_t e = ts_scratch.size();
      if (from_ns) {
        a = static_cast<std::size_t>(std::distance(
            ts_scratch.begin(),
            std::lower_bound(ts_scratch.begin(), ts_scratch.end(), *from_ns)));
      }
      if (to_ns) {
        e = static_cast<std::size_t>(std::distance(
            ts_scratch.begin(),
            std::upper_bound(ts_scratch.begin(), ts_scratch.end(), *to_ns)));
      }
      if (a < e) {
        BlockValueCursor cursor(block);
        fold_grid(
            ts_scratch, a, e, /*counts_decoded=*/true,
            [&](std::size_t c) { return cursor.subchunk(c); },
            [&](std::size_t c) -> std::optional<double> {
              if (!options_.aggregation_pushdown) return std::nullopt;
              return block.subchunk_sum(c);
            });
      }
    }
    const Series::RowRange r = s.head_range(from_ns, to_ns);
    if (r.size() > 0) {
      // The head uses the same grid it will have once sealed (row index
      // relative to the head start), so sealing never moves a bucket sum.
      const std::vector<double>& head_values = s.head_values();
      fold_grid(
          s.head_ts(), r.first, r.last, /*counts_decoded=*/false,
          [&](std::size_t c) { return head_values.data() + c * Block::kSubchunkRows; },
          [](std::size_t) -> std::optional<double> { return std::nullopt; });
    }
  }

  buckets.reserve(acc.size());
  for (const auto& [idx, a] : acc) {
    buckets.push_back(
        Bucket{sim::SimTime::from_ns(idx * w), a.sum / static_cast<double>(a.count), a.count});
  }
  stats_.rows_decoded += decoded;
  stats_.pushdown_rows += pushdown_rows;
  stats_.pushdown_chunks += pushdown_chunks;
  if (pushdown_metric_ != nullptr && pushdown_chunks > 0) {
    pushdown_metric_->inc(pushdown_chunks);
  }
  if (decode_rows_metric_ != nullptr && decoded > 0) decode_rows_metric_->inc(decoded);

  if (cacheable) {
    downsample_cache_[key] = CacheEntry{buckets, ++cache_tick_};
    while (downsample_cache_.size() > options_.downsample_cache_capacity) {
      auto victim = downsample_cache_.begin();
      for (auto it = downsample_cache_.begin(); it != downsample_cache_.end(); ++it) {
        if (it->second.last_used < victim->second.last_used) victim = it;
      }
      downsample_cache_.erase(victim);
    }
  }
  note_query(aggregated, elapsed_ms_since(t0));
  return buckets;
}

EnvDatabase::Aggregate EnvDatabase::aggregate(const QueryFilter& filter) const {
  const auto t0 = std::chrono::steady_clock::now();
  Aggregate agg;
  std::vector<std::uint32_t> sids;
  if (!resolve_series(filter, sids)) {
    note_query(0, elapsed_ms_since(t0));
    return agg;
  }
  std::optional<std::int64_t> from_ns, to_ns;
  if (filter.from) from_ns = filter.from->ns();
  if (filter.to) to_ns = filter.to->ns();

  // Sums are grouped per part (one sealed block's covered range, or the
  // head range): each part contributes a canonical range fold —
  // per-subchunk folds on the part's 16-row grid, combined
  // left-to-right (simd::FoldCombine) — so a fully covered block's fold
  // is bit-for-bit its seal-time summary, and serving it from the
  // summary (pushdown) is bit-identical to decoding it.
  bool any_finite = false;
  std::uint64_t decoded = 0;
  std::uint64_t pushdown_rows = 0;
  std::uint64_t pushdown_chunks = 0;
  std::vector<std::int64_t> ts_scratch;
  const auto& kernels = simd::active();
  const auto apply_part = [&](const simd::SubchunkFold& part, std::uint64_t nrows) {
    agg.count += nrows;
    agg.sum += part.sum;
    agg.sum_sq += part.sum_sq;
    if (part.finite > 0) {
      if (!any_finite || part.min < agg.min) agg.min = part.min;
      if (!any_finite || part.max > agg.max) agg.max = part.max;
      any_finite = true;
    }
  };
  // Canonical fold of rows [a, e) over a part's 16-row grid; `chunk_at`
  // returns the decoded rows of subchunk c (cursor or head column).
  const auto fold_range = [&](std::size_t total, std::size_t a, std::size_t e,
                              auto&& chunk_at) {
    simd::FoldCombine combine;
    for (std::size_t c = a / Block::kSubchunkRows; c * Block::kSubchunkRows < e; ++c) {
      const std::size_t cb = c * Block::kSubchunkRows;
      const std::size_t ce = std::min(cb + Block::kSubchunkRows, total);
      const std::size_t lo = std::max(cb, a);
      const std::size_t hi = std::min(ce, e);
      if (lo >= hi) continue;
      simd::SubchunkFold fold;
      kernels.fold_subchunk(chunk_at(c) + (lo - cb), hi - lo, fold);
      combine.add(fold);
    }
    apply_part(combine.finish(), e - a);
  };

  for (const std::uint32_t sid : sids) {
    const Series& s = series_[sid];
    for (std::size_t b = 0; b < s.block_count(); ++b) {
      if (s.block_quarantined(b)) continue;  // corrupt extent: rows are gone
      const BlockSummary& sum = s.block_summary(b);
      if (from_ns && sum.ts_max < *from_ns) continue;
      if (to_ns && sum.ts_min > *to_ns) break;
      // A fully covered block is served from its summary without ever
      // materializing it — evicted blocks aggregate without disk reads.
      const bool covered = (!from_ns || *from_ns <= sum.ts_min) &&
                           (!to_ns || sum.ts_max <= *to_ns);
      if (covered && options_.aggregation_pushdown) {
        simd::SubchunkFold part;
        part.sum = sum.value_sum;
        part.sum_sq = sum.value_sum_sq;
        part.min = sum.value_min;
        part.max = sum.value_max;
        part.finite = sum.finite_rows;
        apply_part(part, sum.rows);
        pushdown_rows += sum.rows;
        ++pushdown_chunks;
        continue;
      }
      const Block* bp = s.block(b);
      if (bp == nullptr) continue;  // quarantined at materialization: skip
      const Block& block = *bp;
      block.decode_timestamps(ts_scratch);
      std::size_t a = 0;
      std::size_t e = ts_scratch.size();
      if (from_ns) {
        a = static_cast<std::size_t>(std::distance(
            ts_scratch.begin(),
            std::lower_bound(ts_scratch.begin(), ts_scratch.end(), *from_ns)));
      }
      if (to_ns) {
        e = static_cast<std::size_t>(std::distance(
            ts_scratch.begin(),
            std::upper_bound(ts_scratch.begin(), ts_scratch.end(), *to_ns)));
      }
      if (a >= e) continue;
      BlockValueCursor cursor(block);
      const std::size_t chunk_lo = a / Block::kSubchunkRows;
      const std::size_t chunk_hi = (e + Block::kSubchunkRows - 1) / Block::kSubchunkRows;
      decoded += std::min<std::size_t>(chunk_hi * Block::kSubchunkRows, block.rows()) -
                 chunk_lo * Block::kSubchunkRows;
      fold_range(ts_scratch.size(), a, e,
                 [&](std::size_t c) { return cursor.subchunk(c); });
    }
    const Series::RowRange r = s.head_range(from_ns, to_ns);
    if (r.size() > 0) {
      const std::vector<double>& head_values = s.head_values();
      fold_range(head_values.size(), r.first, r.last, [&](std::size_t c) {
        return head_values.data() + c * Block::kSubchunkRows;
      });
    }
  }

  stats_.rows_decoded += decoded;
  stats_.pushdown_rows += pushdown_rows;
  stats_.pushdown_chunks += pushdown_chunks;
  if (pushdown_metric_ != nullptr && pushdown_chunks > 0) {
    pushdown_metric_->inc(pushdown_chunks);
  }
  if (decode_rows_metric_ != nullptr && decoded > 0) decode_rows_metric_->inc(decoded);
  note_query(agg.count, elapsed_ms_since(t0));
  return agg;
}

void EnvDatabase::vacuum() {
  if (!options_.retention || total_rows_ == 0) return;
  const std::int64_t cutoff = last_ts_ns_ - options_.retention->ns();
  if (cutoff <= oldest_ts_ns_) return;  // nothing old enough to drop
  const std::size_t dropped = apply_retention_cutoff(cutoff);
  if (dropped > 0 && durable_ != nullptr && !replaying_) dlog_vacuum(cutoff);
}

std::size_t EnvDatabase::apply_retention_cutoff(std::int64_t cutoff_ns) {
  std::size_t dropped = 0;
  std::int64_t oldest = last_ts_ns_;
  for (Series& s : series_) {
    dropped += s.drop_before(cutoff_ns);
    if (!s.empty()) oldest = std::min(oldest, s.front_ts_ns());
  }
  oldest_ts_ns_ = oldest;
  if (dropped > 0) {
    total_rows_ -= dropped;
    // Retention changed the visible rows: invalidate cached downsample
    // results (cache_generation_ lags behind and the next downsample
    // clears the cache).
    ++generation_;
  }
  return dropped;
}

std::size_t EnvDatabase::sealed_block_count() const {
  std::size_t blocks = 0;
  for (const Series& s : series_) blocks += s.block_count();
  return blocks;
}

std::size_t EnvDatabase::bytes_used() const {
  std::size_t bytes = metrics_.bytes_used();
  for (const Series& s : series_) bytes += sizeof(Series) + s.bytes_used();
  bytes += rate_window_.size() * sizeof(std::int64_t);
  // Downsample cache entries: key + entry bookkeeping plus the memoized
  // bucket storage (these used to go unaccounted).
  for (const auto& [key, entry] : downsample_cache_) {
    bytes += sizeof(key) + sizeof(entry) + entry.buckets.capacity() * sizeof(Bucket);
  }
  return bytes;
}

void EnvDatabase::update_footprint_metrics() {
  if (bytes_used_gauge_ == nullptr && bytes_per_record_gauge_ == nullptr) return;
  const double bytes = static_cast<double>(bytes_used());
  if (bytes_used_gauge_ != nullptr) bytes_used_gauge_->set(bytes);
  if (bytes_per_record_gauge_ != nullptr) {
    bytes_per_record_gauge_->set(
        total_rows_ == 0 ? 0.0 : bytes / static_cast<double>(total_rows_));
  }
}

// --- Durable storage (DESIGN.md §13) ---

Status EnvDatabase::open(const std::string& dir) {
  if (durable_ != nullptr) {
    return Status::failed_precondition("database already has a directory attached");
  }
  if (total_rows_ != 0 || !series_.empty()) {
    return Status::failed_precondition("open() requires an empty database");
  }
  const auto t0 = std::chrono::steady_clock::now();
  // Normalize away trailing slashes: every path in the layer is built
  // as `dir + "/" + name`, and a "data/" dir would yield "data//..."
  // strings that defeat name comparisons elsewhere.
  std::string normalized = dir;
  while (normalized.size() > 1 && normalized.back() == '/') normalized.pop_back();
  std::error_code ec;
  std::filesystem::create_directories(normalized, ec);
  if (ec) {
    return Status::internal("cannot create database directory: " + ec.message());
  }
  auto durable = std::make_unique<Durable>();
  durable->dir = normalized;
  durable->store.attach_metrics(dedup_metric_, cold_loads_metric_, quarantined_metric_);
  BlockStore::Options store_options;
  store_options.rotate_bytes = options_.durability.segment_rotate_bytes;
  Status s = durable->store.open(normalized, store_options);
  if (!s.is_ok()) return s;
  durable_ = std::move(durable);
  RecoveryInfo info;
  replaying_ = true;
  s = recover(info);
  replaying_ = false;
  if (!s.is_ok()) {
    durable_.reset();
    reset_state();
    return s;
  }
  // A head that reached the block size but lost its seal record to the
  // crash seals now — its payload usually dedups against the orphan
  // extent the crashed run already wrote — and logs into the resumed
  // WAL.  Segments left with no live extents (replayed kVacuum frames,
  // seal records lost with the WAL tail) are then reclaimed — but only
  // behind a fresh durable checkpoint, because the resumed WAL still
  // references their extents and must stay replayable if we crash
  // again before the files go away.  write_checkpoint_wal() runs the
  // GC itself once the new checkpoint is on disk; seal_blocks() above
  // usually already triggered it via after_durable_write(), so this is
  // the error-surfacing fallback.
  if (durable_->store.has_dead_segments()) {
    s = write_checkpoint_wal();
    if (!s.is_ok()) {
      durable_.reset();
      reset_state();
      return s;
    }
  }
  info.rows_recovered = total_rows_;
  info.blocks_recovered = sealed_block_count();
  info.recovery_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  recovery_ = info;
  if (recovery_seconds_gauge_ != nullptr) {
    recovery_seconds_gauge_->set(info.recovery_seconds);
  }
  update_durable_metrics();
  update_footprint_metrics();
  return Status::ok();
}

Status EnvDatabase::flush() {
  if (durable_ == nullptr) {
    return Status::failed_precondition("database is not durable");
  }
  dlog_flush_inserts();
  return sync_durable();
}

Status EnvDatabase::close() {
  if (durable_ == nullptr) return Status::ok();
  const Status checkpointed = write_checkpoint_wal();
  const Status wal_closed = durable_->wal.close();
  const Status store_closed = durable_->store.close();
  durable_.reset();
  if (!checkpointed.is_ok()) return checkpointed;
  if (!wal_closed.is_ok()) return wal_closed;
  return store_closed;
}

EnvDatabase::DurableStats EnvDatabase::durable_stats() const {
  DurableStats out;
  if (durable_ == nullptr) return out;
  const BlockStore::Stats& st = durable_->store.stats();
  out.wal_bytes = durable_->wal.bytes_written();
  out.wal_frames = durable_->wal.frames_written();
  out.segments_open = durable_->store.segment_count();
  out.extents_appended = st.extents_appended;
  out.dedup_hits = st.dedup_hits;
  out.cold_loads = st.loads;
  out.quarantined = st.load_failures;
  out.segments_deleted = st.segments_deleted;
  out.evicted_blocks = durable_->evicted_blocks;
  out.disk_bytes = durable_->store.disk_bytes();
  for (const Series& s : series_) out.resident_sealed_bytes += s.resident_sealed_bytes();
  return out;
}

std::size_t EnvDatabase::evict_sealed_blocks(std::size_t target_bytes) {
  if (durable_ == nullptr) return 0;
  struct Candidate {
    std::uint64_t seq_first = 0;
    std::uint32_t sid = 0;
    std::uint32_t block = 0;
  };
  std::size_t resident = 0;
  std::vector<Candidate> candidates;
  for (std::uint32_t sid = 0; sid < series_.size(); ++sid) {
    const Series& s = series_[sid];
    for (std::size_t b = 0; b < s.block_count(); ++b) {
      if (!s.block_resident(b)) continue;
      resident += s.block(b)->bytes_used();
      if (s.block_ref(b) != nullptr && !s.block_quarantined(b)) {
        candidates.push_back(Candidate{s.block_summary(b).seq_first, sid,
                                       static_cast<std::uint32_t>(b)});
      }
    }
  }
  if (resident <= target_bytes) return 0;
  // Deterministic order: oldest insertion first, across all series.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.seq_first < b.seq_first; });
  std::size_t evicted = 0;
  for (const Candidate& c : candidates) {
    if (resident <= target_bytes) break;
    const std::size_t freed = series_[c.sid].evict_block(c.block);
    if (freed == 0) continue;
    resident -= freed < resident ? freed : resident;
    ++evicted;
  }
  if (evicted > 0) {
    durable_->evicted_blocks += evicted;
    if (evicted_metric_ != nullptr) evicted_metric_->inc(evicted);
  }
  return evicted;
}

void EnvDatabase::maybe_evict() {
  if (durable_ != nullptr && options_.durability.max_resident_sealed_bytes > 0) {
    evict_sealed_blocks(options_.durability.max_resident_sealed_bytes);
  }
}

void EnvDatabase::update_durable_metrics() {
  if (durable_ == nullptr) return;
  if (segments_open_gauge_ != nullptr) {
    segments_open_gauge_->set(static_cast<double>(durable_->store.segment_count()));
  }
  if (disk_bytes_gauge_ != nullptr) {
    disk_bytes_gauge_->set(static_cast<double>(durable_->store.disk_bytes()));
  }
}

void EnvDatabase::dlog_frame(WalRecordType type, std::span<const std::uint8_t> payload) {
  Durable& d = *durable_;
  const std::uint64_t before = d.wal.bytes_written();
  // A failed write surfaces at the next sync(); the frame simply never
  // becomes part of the clean prefix.
  (void)d.wal.append(type, payload);
  if (wal_bytes_metric_ != nullptr) {
    wal_bytes_metric_->inc(d.wal.bytes_written() - before);
  }
}

void EnvDatabase::dlog_insert(const Record& record, MetricId metric) {
  Durable& d = *durable_;
  // Every id not yet defined in this WAL gets its def frame first.
  while (d.metrics_logged < metrics_.size()) {
    const auto id = static_cast<MetricId>(d.metrics_logged);
    wire::Writer w;
    w.u32(id);
    w.str(metrics_.name(id));
    dlog_frame(WalRecordType::kMetricDef, w.span());
    ++d.metrics_logged;
  }
  d.pending.i64(record.timestamp.ns());
  d.pending.i32(record.location.rack);
  d.pending.i32(record.location.midplane);
  d.pending.i32(record.location.board);
  d.pending.i32(record.location.card);
  d.pending.u32(metric);
  d.pending.f64(record.value);
  ++d.pending_rows;
}

void EnvDatabase::dlog_flush_inserts() {
  Durable& d = *durable_;
  if (d.pending_rows == 0) return;
  wire::Writer w;
  w.u32(static_cast<std::uint32_t>(d.pending_rows));
  w.bytes(d.pending.span());
  dlog_frame(WalRecordType::kInsertBatch, w.span());
  d.pending.clear();
  d.pending_rows = 0;
}

void EnvDatabase::dlog_seal(std::uint32_t sid) {
  // The sealed rows' insert frame must precede the seal frame.
  dlog_flush_inserts();
  const Series& s = series_[sid];
  const std::size_t bi = s.block_count() - 1;
  const ExtentRef* ref = s.block_ref(bi);
  // No extent (store I/O failure): the block stays memory-resident and
  // its rows recover from the WAL as head rows instead.
  if (ref == nullptr) return;
  const BlockSummary& sum = s.block_summary(bi);
  wire::Writer w;
  w.i32(s.location().rack);
  w.i32(s.location().midplane);
  w.i32(s.location().board);
  w.i32(s.location().card);
  w.u32(s.metric());
  w.u32(sum.rows);
  w.u32(sum.finite_rows);
  w.i64(sum.ts_min);
  w.i64(sum.ts_max);
  w.u64(sum.seq_first);
  w.u64(sum.seq_last);
  w.f64(sum.value_min);
  w.f64(sum.value_max);
  w.f64(sum.value_sum);
  w.f64(sum.value_sum_sq);
  w.u32(ref->segment_id);
  w.u64(ref->offset);
  w.u32(ref->length);
  w.u32(ref->crc);
  w.u64(ref->hash.hi);
  w.u64(ref->hash.lo);
  w.blob(s.block_seq_stream(bi));
  dlog_frame(WalRecordType::kSeal, w.span());
  durable_->barrier = true;
}

void EnvDatabase::dlog_vacuum(std::int64_t cutoff_ns) {
  dlog_flush_inserts();
  wire::Writer w;
  w.i64(cutoff_ns);
  dlog_frame(WalRecordType::kVacuum, w.span());
  durable_->barrier = true;
}

Status EnvDatabase::sync_durable() {
  // Extents become durable before the WAL records referencing them.
  const Status store_synced = durable_->store.sync();
  const Status wal_synced = durable_->wal.sync();
  return store_synced.is_ok() ? wal_synced : store_synced;
}

void EnvDatabase::after_durable_write() {
  if (durable_ == nullptr || replaying_) return;
  dlog_flush_inserts();
  Durable& d = *durable_;
  const FsyncPolicy policy = options_.durability.fsync_policy;
  if (policy == FsyncPolicy::kAlways ||
      (policy == FsyncPolicy::kOnSeal && d.barrier)) {
    (void)sync_durable();
  }
  d.barrier = false;
  // Rotation triggers: WAL growth, or retention having killed a whole
  // segment — the dead file is only unlinked behind a durable
  // checkpoint that no longer references it (write_checkpoint_wal runs
  // the GC), so the rotation is forced rather than waiting for the
  // byte threshold.
  if (d.wal.bytes_written() >= options_.durability.wal_rotate_bytes ||
      d.store.has_dead_segments()) {
    (void)write_checkpoint_wal();
  }
  maybe_evict();
  update_durable_metrics();
}

void EnvDatabase::encode_checkpoint(wire::Writer& w) const {
  w.u64(next_seq_);
  w.u8(any_accepted_ ? 1 : 0);
  w.i64(last_ts_ns_);
  w.i64(oldest_ts_ns_);
  w.u64(rejected_);
  w.u32(static_cast<std::uint32_t>(metrics_.size()));
  for (MetricId id = 0; id < metrics_.size(); ++id) w.str(metrics_.name(id));
  w.u32(static_cast<std::uint32_t>(series_.size()));
  for (const Series& s : series_) {
    w.i32(s.location().rack);
    w.i32(s.location().midplane);
    w.i32(s.location().board);
    w.i32(s.location().card);
    w.u32(s.metric());
    std::uint32_t durable_blocks = 0;
    for (std::size_t b = 0; b < s.block_count(); ++b) {
      if (s.block_ref(b) != nullptr) ++durable_blocks;
    }
    w.u32(durable_blocks);
    for (std::size_t b = 0; b < s.block_count(); ++b) {
      const ExtentRef* ref = s.block_ref(b);
      if (ref == nullptr) continue;  // store-failure straggler: unrecoverable
      const BlockSummary& sum = s.block_summary(b);
      w.u32(sum.rows);
      w.u32(sum.finite_rows);
      w.i64(sum.ts_min);
      w.i64(sum.ts_max);
      w.u64(sum.seq_first);
      w.u64(sum.seq_last);
      w.f64(sum.value_min);
      w.f64(sum.value_max);
      w.f64(sum.value_sum);
      w.f64(sum.value_sum_sq);
      w.u32(ref->segment_id);
      w.u64(ref->offset);
      w.u32(ref->length);
      w.u32(ref->crc);
      w.u64(ref->hash.hi);
      w.u64(ref->hash.lo);
      w.blob(s.block_seq_stream(b));
    }
    w.u32(static_cast<std::uint32_t>(s.head_rows()));
    for (std::size_t i = 0; i < s.head_rows(); ++i) {
      w.i64(s.head_ts()[i]);
      w.f64(s.head_values()[i]);
      w.u64(s.head_seq()[i]);
    }
  }
  w.u32(static_cast<std::uint32_t>(rate_window_.size()));
  for (const std::int64_t t : rate_window_) w.i64(t);
}

bool EnvDatabase::decode_checkpoint(std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  next_seq_ = r.u64();
  any_accepted_ = r.u8() != 0;
  last_ts_ns_ = r.i64();
  oldest_ts_ns_ = r.i64();
  rejected_ = r.u64();
  const std::uint32_t nmetrics = r.u32();
  if (!r.ok() || nmetrics > kMaxCheckpointMetrics) return false;
  for (std::uint32_t i = 0; i < nmetrics; ++i) {
    const std::string name = r.str();
    if (!r.ok() || name.empty() || metrics_.intern(name) != i) return false;
  }
  const std::uint32_t nseries = r.u32();
  if (!r.ok() || nseries > kMaxCheckpointSeries) return false;
  for (std::uint32_t si = 0; si < nseries; ++si) {
    Location loc;
    loc.rack = r.i32();
    loc.midplane = r.i32();
    loc.board = r.i32();
    loc.card = r.i32();
    const std::uint32_t metric = r.u32();
    if (!r.ok() || metric >= metrics_.size()) return false;
    const std::uint32_t sid = ensure_series(loc, metric);
    if (sid != si || series_.size() != si + 1) return false;  // duplicate series
    Series& s = series_[sid];
    const std::uint32_t nblocks = r.u32();
    if (!r.ok() || nblocks > kMaxCheckpointBlocks) return false;
    for (std::uint32_t b = 0; b < nblocks; ++b) {
      BlockSummary sum;
      sum.rows = r.u32();
      sum.finite_rows = r.u32();
      sum.ts_min = r.i64();
      sum.ts_max = r.i64();
      sum.seq_first = r.u64();
      sum.seq_last = r.u64();
      sum.value_min = r.f64();
      sum.value_max = r.f64();
      sum.value_sum = r.f64();
      sum.value_sum_sq = r.f64();
      ExtentRef ref;
      ref.segment_id = r.u32();
      ref.offset = r.u64();
      ref.length = r.u32();
      ref.crc = r.u32();
      ref.hash.hi = r.u64();
      ref.hash.lo = r.u64();
      const auto seq_bytes = r.blob();
      if (!r.ok()) return false;
      if (sum.rows == 0 || sum.rows > Block::kMaxRows || sum.finite_rows > sum.rows) {
        return false;
      }
      if (!durable_->store.add_ref(ref).is_ok()) return false;
      s.restore_sealed(sum, ref, std::vector<std::uint8_t>(seq_bytes.begin(), seq_bytes.end()));
      total_rows_ += sum.rows;
    }
    const std::uint32_t nhead = r.u32();
    if (!r.ok() || nhead > Block::kMaxRows) return false;
    s.reserve_head(nhead);
    for (std::uint32_t i = 0; i < nhead; ++i) {
      const std::int64_t ts = r.i64();
      const double value = r.f64();
      const std::uint64_t seq = r.u64();
      if (!r.ok()) return false;
      s.append_raw(ts, value, seq);
    }
    total_rows_ += nhead;
  }
  const std::uint32_t nwindow = r.u32();
  if (!r.ok() || nwindow > kMaxCheckpointWindow) return false;
  for (std::uint32_t i = 0; i < nwindow; ++i) rate_window_.push_back(r.i64());
  return r.done();
}

Status EnvDatabase::write_checkpoint_wal() {
  Durable& d = *durable_;
  if (d.wal.is_open()) dlog_flush_inserts();
  // The checkpoint references extents: they are made durable first.
  Status s = d.store.sync();
  if (!s.is_ok()) return s;
  const std::uint32_t number = d.wal_number + 1;
  const std::string path = wal_path(d.dir, number);
  const std::string tmp = path + ".tmp";
  {
    WalWriter w;
    s = w.create(tmp);
    if (!s.is_ok()) return s;
    wire::Writer checkpoint;
    encode_checkpoint(checkpoint);
    s = w.append(WalRecordType::kCheckpoint, checkpoint.span());
    if (s.is_ok()) s = w.sync();
    const Status closed = w.close();
    if (s.is_ok()) s = closed;
    if (!s.is_ok()) return s;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::internal("rename checkpoint wal: " + ec.message());
  }
  sync_dir(d.dir);
  (void)d.wal.close();
  // One-WAL invariant: predecessors, stale tmps, and corrupt strays all
  // go away once the new checkpoint is durable.  Compared by *filename*
  // — raw path-string equality would miss the new WAL through any
  // spelling difference (e.g. doubled slashes) and delete it.
  const std::string keep = wal_filename(number);
  for (const auto& entry : std::filesystem::directory_iterator(d.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) != 0 || name == keep) continue;
    if (name.ends_with(".log") || name.ends_with(".log.tmp")) {
      ::unlink(entry.path().c_str());
    }
  }
  sync_dir(d.dir);
  d.wal_number = number;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) return Status::internal("stat checkpoint wal");
  s = d.wal.open_for_append(path, size);
  if (!s.is_ok()) return s;
  d.metrics_logged = metrics_.size();
  if (wal_bytes_metric_ != nullptr) wal_bytes_metric_->inc(size);
  // The durable checkpoint above references live extents only, so any
  // segment with none is unreferenced by the (single) WAL on disk —
  // the deferred retention unlinks are safe to apply now.
  d.store.gc_dead_segments();
  update_durable_metrics();
  return Status::ok();
}

Status EnvDatabase::recover(RecoveryInfo& info) {
  Durable& d = *durable_;
  std::vector<std::uint32_t> numbers;
  std::uint32_t max_number = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(d.dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned n = 0;
    if (std::sscanf(name.c_str(), "wal-%06u.log", &n) != 1) continue;
    // Exact-name check: excludes ".log.tmp" leftovers sscanf would pass.
    if (name != wal_filename(n)) continue;
    numbers.push_back(n);
    max_number = std::max(max_number, static_cast<std::uint32_t>(n));
  }
  if (ec) return Status::internal("cannot list wal directory");
  std::sort(numbers.begin(), numbers.end(), std::greater<>());

  // The newest WAL whose leading checkpoint is intact wins; older ones
  // are stale by construction (a WAL is only created once its
  // checkpoint is synced and renamed into place).
  for (const std::uint32_t number : numbers) {
    reset_state();
    const std::string path = wal_path(d.dir, number);
    WalReader reader;
    if (!reader.open(path).is_ok()) continue;
    auto first = reader.next();
    if (!first || first->type != WalRecordType::kCheckpoint) continue;
    if (!decode_checkpoint(first->payload)) continue;
    info.recovered = true;
    info.wal_frames_replayed = 1;
    std::uint64_t clean = reader.valid_bytes();
    bool bad_frame = false;
    while (auto frame = reader.next()) {
      if (!apply_wal_frame(frame->type, frame->payload)) {
        bad_frame = true;
        break;
      }
      clean = reader.valid_bytes();
      ++info.wal_frames_replayed;
    }
    info.wal_bytes_replayed = clean;
    info.wal_truncated = bad_frame || reader.truncated();
    if (clean < reader.file_bytes()) {
      const Status truncated = truncate_file(path, clean);
      if (!truncated.is_ok()) return truncated;
    }
    Status s = d.wal.open_for_append(path, clean);
    if (!s.is_ok()) return s;
    d.wal_number = number;
    d.metrics_logged = metrics_.size();
    for (const std::uint32_t other : numbers) {
      if (other != number) ::unlink(wal_path(d.dir, other).c_str());
    }
    sync_dir(d.dir);
    return Status::ok();
  }

  // Nothing recoverable: start fresh.  New WAL numbers keep ascending
  // past any unreadable strays (which the checkpoint write deletes).
  reset_state();
  d.wal_number = max_number;
  return write_checkpoint_wal();
}

bool EnvDatabase::apply_wal_frame(WalRecordType type,
                                  std::span<const std::uint8_t> payload) {
  switch (type) {
    case WalRecordType::kCheckpoint:
      return false;  // only legal as a WAL's first record
    case WalRecordType::kMetricDef: {
      wire::Reader r(payload);
      const std::uint32_t id = r.u32();
      const std::string name = r.str();
      if (!r.done() || name.empty() || id != metrics_.size()) return false;
      return metrics_.intern(name) == id;
    }
    case WalRecordType::kInsertBatch: {
      wire::Reader r(payload);
      const std::uint32_t count = r.u32();
      // 36 bytes per row: i64 ts, 4×i32 location, u32 metric, f64 value.
      if (count == 0 ||
          payload.size() != 4 + static_cast<std::size_t>(count) * 36) {
        return false;
      }
      // Validate the whole frame before mutating anything, so a corrupt
      // record cannot leave half a batch applied.
      struct Row {
        std::int64_t ts;
        Location loc;
        MetricId metric;
        double value;
      };
      std::vector<Row> rows;
      rows.reserve(count);
      std::int64_t last = last_ts_ns_;
      bool any = any_accepted_;
      for (std::uint32_t i = 0; i < count; ++i) {
        Row row;
        row.ts = r.i64();
        row.loc.rack = r.i32();
        row.loc.midplane = r.i32();
        row.loc.board = r.i32();
        row.loc.card = r.i32();
        row.metric = r.u32();
        row.value = r.f64();
        if (!r.ok() || row.metric >= metrics_.size()) return false;
        if (any && row.ts < last) return false;  // accepted rows are ordered
        last = row.ts;
        any = true;
        rows.push_back(row);
      }
      if (!r.done()) return false;
      for (const Row& row : rows) {
        const std::uint32_t sid = ensure_series(row.loc, row.metric);
        series_[sid].append_raw(row.ts, row.value, next_seq_++);
        if (!any_accepted_) oldest_ts_ns_ = row.ts;
        any_accepted_ = true;
        last_ts_ns_ = row.ts;
        ++total_rows_;
        if (options_.max_insert_rate_per_second > 0.0 &&
            !is_self_metric(metrics_.name(row.metric))) {
          rate_window_.push_back(row.ts);
        }
      }
      return true;
    }
    case WalRecordType::kSeal: {
      wire::Reader r(payload);
      Location loc;
      loc.rack = r.i32();
      loc.midplane = r.i32();
      loc.board = r.i32();
      loc.card = r.i32();
      const std::uint32_t metric = r.u32();
      BlockSummary sum;
      sum.rows = r.u32();
      sum.finite_rows = r.u32();
      sum.ts_min = r.i64();
      sum.ts_max = r.i64();
      sum.seq_first = r.u64();
      sum.seq_last = r.u64();
      sum.value_min = r.f64();
      sum.value_max = r.f64();
      sum.value_sum = r.f64();
      sum.value_sum_sq = r.f64();
      ExtentRef ref;
      ref.segment_id = r.u32();
      ref.offset = r.u64();
      ref.length = r.u32();
      ref.crc = r.u32();
      ref.hash.hi = r.u64();
      ref.hash.lo = r.u64();
      const auto seq_bytes = r.blob();
      if (!r.done() || metric >= metrics_.size()) return false;
      if (sum.rows == 0 || sum.rows > Block::kMaxRows || sum.finite_rows > sum.rows) {
        return false;
      }
      // Validation creates nothing: a seal consumes head rows, so its
      // series must already exist from earlier insert frames or the
      // checkpoint — looked up without inserting, else a corrupt frame
      // that ends replay would leave a phantom empty series registered
      // in the index and the series gauge.
      const std::uint32_t sid = index_.find(loc, metric);
      if (sid == ShardIndex::kNoSeries) return false;
      if (!durable_->store.add_ref(ref).is_ok()) return false;
      std::vector<std::uint8_t> seq(seq_bytes.begin(), seq_bytes.end());
      if (!series_[sid].adopt_sealed(sum, ref, std::move(seq), sum.rows)) {
        durable_->store.release(ref);
        return false;
      }
      note_seal(1);
      return true;
    }
    case WalRecordType::kVacuum: {
      wire::Reader r(payload);
      const std::int64_t cutoff = r.i64();
      if (!r.done()) return false;
      apply_retention_cutoff(cutoff);
      return true;
    }
  }
  return false;  // unknown record type: future format, stop here
}

void EnvDatabase::reset_state() {
  metrics_ = MetricTable{};
  series_.clear();
  index_ = ShardIndex{};
  rate_window_.clear();
  total_rows_ = 0;
  next_seq_ = 0;
  any_accepted_ = false;
  last_ts_ns_ = 0;
  oldest_ts_ns_ = 0;
  downsample_cache_.clear();
  ++generation_;
  if (durable_ != nullptr) durable_->store.clear_refs();
}

}  // namespace envmon::tsdb
