#include "tsdb/database.hpp"

#include <algorithm>

namespace envmon::tsdb {

namespace {

bool matches(const Record& r, const QueryFilter& f) {
  if (f.location_prefix && !f.location_prefix->contains(r.location)) return false;
  if (f.metric && r.metric != *f.metric) return false;
  if (f.from && r.timestamp < *f.from) return false;
  if (f.to && r.timestamp > *f.to) return false;
  return true;
}

}  // namespace

EnvDatabase::EnvDatabase(DatabaseOptions options) : options_(options) {
  if (obs::enabled()) {
    auto& registry = obs::default_registry();
    inserts_metric_ = &registry.counter("envmon_tsdb_inserts_total",
                                        "Records accepted by the environmental database");
    rejected_metric_ = &registry.counter(
        "envmon_tsdb_rejected_inserts_total",
        "Inserts rejected (ingest rate ceiling or out-of-order timestamps)");
  }
}

bool EnvDatabase::over_ingest_rate(sim::SimTime now) const {
  if (options_.max_insert_rate_per_second <= 0.0) return false;
  const sim::SimTime window_start = now - options_.rate_window;
  // records_ is timestamp-ordered, so binary search for the window start.
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), window_start,
      [](const Record& r, sim::SimTime t) { return r.timestamp < t; });
  const auto in_window = static_cast<double>(std::distance(it, records_.end()));
  const double window_seconds = options_.rate_window.to_seconds();
  return in_window >= options_.max_insert_rate_per_second * window_seconds;
}

Status EnvDatabase::insert(const Record& record) {
  if (!records_.empty() && record.timestamp < records_.back().timestamp) {
    if (rejected_metric_ != nullptr) rejected_metric_->inc();
    return Status(StatusCode::kInvalidArgument,
                  "out-of-order insert at " + std::to_string(record.timestamp.to_seconds()) + " s");
  }
  if (over_ingest_rate(record.timestamp)) {
    ++rejected_;
    if (rejected_metric_ != nullptr) rejected_metric_->inc();
    return Status(StatusCode::kResourceExhausted,
                  "environmental database ingest rate ceiling exceeded");
  }
  records_.push_back(record);
  if (inserts_metric_ != nullptr) inserts_metric_->inc();
  if (tracer_ != nullptr) {
    tracer_->event_at(record.timestamp, "tsdb.insert", record.metric);
  }
  if (options_.retention) vacuum();
  return Status::ok();
}

std::vector<Record> EnvDatabase::query(const QueryFilter& filter) const {
  std::vector<Record> out;
  for (const auto& r : records_) {
    if (matches(r, filter)) out.push_back(r);
  }
  return out;
}

std::vector<EnvDatabase::Bucket> EnvDatabase::downsample(const QueryFilter& filter,
                                                         sim::Duration bucket_width) const {
  std::vector<Bucket> buckets;
  if (bucket_width.ns() <= 0) return buckets;
  for (const auto& r : records_) {
    if (!matches(r, filter)) continue;
    const std::int64_t idx = r.timestamp.ns() / bucket_width.ns();
    const sim::SimTime start = sim::SimTime::from_ns(idx * bucket_width.ns());
    if (buckets.empty() || buckets.back().start != start) {
      buckets.push_back(Bucket{start, 0.0, 0});
    }
    Bucket& b = buckets.back();
    b.mean += (r.value - b.mean) / static_cast<double>(b.count + 1);
    ++b.count;
  }
  return buckets;
}

void EnvDatabase::vacuum() {
  if (!options_.retention || records_.empty()) return;
  const sim::SimTime cutoff = records_.back().timestamp - *options_.retention;
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), cutoff,
      [](const Record& r, sim::SimTime t) { return r.timestamp < t; });
  records_.erase(records_.begin(), it);
}

}  // namespace envmon::tsdb
