#include "tsdb/database.hpp"

#include <algorithm>
#include <chrono>
#include <tuple>

namespace envmon::tsdb {

namespace {

// Bucket index with floor semantics: integer `/` truncates toward zero,
// which would mis-bucket pre-epoch (negative) timestamps to the right.
constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  const std::int64_t q = a / b;
  return (a % b != 0 && (a < 0) != (b < 0)) ? q - 1 : q;
}

double elapsed_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

EnvDatabase::EnvDatabase(DatabaseOptions options) : options_(options) {
  if (obs::enabled()) {
    auto& registry = obs::default_registry();
    inserts_metric_ = &registry.counter("envmon_tsdb_inserts_total",
                                        "Records accepted by the environmental database");
    rejected_metric_ = &registry.counter(
        "envmon_tsdb_rejected_inserts_total",
        "Inserts rejected (ingest rate ceiling or out-of-order timestamps)");
    cache_hits_metric_ =
        &registry.counter("envmon_tsdb_downsample_cache_hits_total",
                          "Downsample queries served from the LRU result cache");
    cache_misses_metric_ =
        &registry.counter("envmon_tsdb_downsample_cache_misses_total",
                          "Downsample queries that touched the storage engine");
    query_latency_metric_ =
        &registry.histogram("envmon_tsdb_query_latency_ms",
                            "Wall-clock latency of environmental database queries",
                            obs::Histogram::latency_bounds_ms());
    rows_scanned_metric_ = &registry.histogram(
        "envmon_tsdb_query_rows_scanned",
        "Rows touched per query after index and time-range narrowing",
        obs::Histogram::exponential_bounds(1.0, 4.0, 12));
    series_gauge_ = &registry.gauge(
        "envmon_tsdb_series", "Live (location, metric) series in the environmental database");
  }
}

bool EnvDatabase::over_ingest_rate(sim::SimTime now) {
  if (options_.max_insert_rate_per_second <= 0.0) return false;
  const std::int64_t window_start = (now - options_.rate_window).ns();
  // Accepted timestamps only move forward, so trimming the front is O(1)
  // amortized — the flat store binary-searched all live records instead.
  while (!rate_window_.empty() && rate_window_.front() < window_start) {
    rate_window_.pop_front();
  }
  const double window_seconds = options_.rate_window.to_seconds();
  return static_cast<double>(rate_window_.size()) >=
         options_.max_insert_rate_per_second * window_seconds;
}

void EnvDatabase::append_row(const Record& record, MetricId metric) {
  std::uint32_t& sid = index_.slot(record.location, metric);
  if (sid == ShardIndex::kNoSeries) {
    sid = static_cast<std::uint32_t>(series_.size());
    series_.emplace_back(record.location, metric);
    if (series_gauge_ != nullptr) series_gauge_->set(static_cast<double>(series_.size()));
  }
  const std::int64_t ts = record.timestamp.ns();
  series_[sid].append(ts, record.value, next_seq_++);
  if (options_.max_insert_rate_per_second > 0.0) rate_window_.push_back(ts);
  if (!any_accepted_) oldest_ts_ns_ = ts;
  any_accepted_ = true;
  last_ts_ns_ = ts;
  ++total_rows_;
  ++generation_;
  if (tracer_ != nullptr) {
    tracer_->event_at(record.timestamp, "tsdb.insert", record.metric);
  }
}

Status EnvDatabase::insert(const Record& record) {
  if (fault_hook_.attached()) {
    const fault::Outcome fo = fault_hook_.intercept();
    if (!fo.ok()) {
      ++rejected_;
      if (rejected_metric_ != nullptr) rejected_metric_->inc();
      return fo.status;
    }
  }
  if (any_accepted_ && record.timestamp.ns() < last_ts_ns_) {
    ++rejected_;
    if (rejected_metric_ != nullptr) rejected_metric_->inc();
    // Static message: the hot reject path must not format the timestamp.
    return Status(StatusCode::kInvalidArgument, "out-of-order insert");
  }
  if (over_ingest_rate(record.timestamp)) {
    ++rejected_;
    if (rejected_metric_ != nullptr) rejected_metric_->inc();
    return Status(StatusCode::kResourceExhausted,
                  "environmental database ingest rate ceiling exceeded");
  }
  append_row(record, metrics_.intern(record.metric));
  if (inserts_metric_ != nullptr) inserts_metric_->inc();
  if (options_.retention) vacuum();
  return Status::ok();
}

EnvDatabase::BatchResult EnvDatabase::insert_batch(std::span<const Record> records) {
  BatchResult result;
  // One intercept per batch: a server outage loses the whole write, the
  // way one failed bulk INSERT does.
  if (fault_hook_.attached() && !fault_hook_.intercept().ok()) {
    result.rejected_unavailable = records.size();
    rejected_ += result.rejected_unavailable;
    if (rejected_metric_ != nullptr && !records.empty()) {
      rejected_metric_->inc(result.rejected_unavailable);
    }
    return result;
  }
  // Memoized metric lookup: a homogeneous batch interns once, a batch
  // cycling through a few metrics pays one hash probe per switch.
  const std::string* memo_name = nullptr;
  MetricId memo_id = 0;
  for (const Record& record : records) {
    if (any_accepted_ && record.timestamp.ns() < last_ts_ns_) {
      ++result.rejected_out_of_order;
      continue;
    }
    if (over_ingest_rate(record.timestamp)) {
      ++result.rejected_rate_limited;
      continue;
    }
    if (memo_name == nullptr || *memo_name != record.metric) {
      memo_id = metrics_.intern(record.metric);
      memo_name = &record.metric;
    }
    append_row(record, memo_id);
    ++result.accepted;
  }
  rejected_ += result.rejected();
  if (inserts_metric_ != nullptr && result.accepted > 0) {
    inserts_metric_->inc(result.accepted);
  }
  if (rejected_metric_ != nullptr && result.rejected() > 0) {
    rejected_metric_->inc(result.rejected());
  }
  // Retention runs once per batch, not once per record; the end state is
  // the same because the cutoff depends only on the newest record.
  if (options_.retention && result.accepted > 0) vacuum();
  return result;
}

void EnvDatabase::collect_rows(
    const QueryFilter& filter,
    std::vector<std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>>& rows) const {
  std::optional<MetricId> metric;
  if (filter.metric) {
    metric = metrics_.find(*filter.metric);
    if (!metric) return;  // metric never ingested: no candidate series
  }
  std::vector<std::uint32_t> sids;
  index_.collect(filter.location_prefix, metric, sids);
  stats_.series_touched += sids.size();

  std::optional<std::int64_t> from_ns, to_ns;
  if (filter.from) from_ns = filter.from->ns();
  if (filter.to) to_ns = filter.to->ns();

  std::vector<std::pair<std::uint32_t, Series::RowRange>> ranges;
  ranges.reserve(sids.size());
  std::size_t total = 0;
  for (const std::uint32_t sid : sids) {
    const Series::RowRange r = series_[sid].range(from_ns, to_ns);
    if (r.size() == 0) continue;
    ranges.emplace_back(sid, r);
    total += r.size();
  }
  rows.reserve(total);
  for (const auto& [sid, r] : ranges) {
    const Series& s = series_[sid];
    for (std::size_t i = r.first; i < r.last; ++i) {
      rows.emplace_back(s.seq(i), sid, static_cast<std::uint32_t>(i));
    }
  }
  // Global insertion order == (timestamp, insert order): inserts are
  // globally timestamp-ordered, so sorting on seq reproduces the flat
  // store's result ordering exactly.
  std::sort(rows.begin(), rows.end());
}

void EnvDatabase::note_query(std::uint64_t rows_scanned, double elapsed_ms) const {
  ++stats_.queries;
  stats_.rows_scanned += rows_scanned;
  if (query_latency_metric_ != nullptr) query_latency_metric_->observe(elapsed_ms);
  if (rows_scanned_metric_ != nullptr) {
    rows_scanned_metric_->observe(static_cast<double>(rows_scanned));
  }
}

std::vector<Record> EnvDatabase::query(const QueryFilter& filter) const {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>> rows;
  collect_rows(filter, rows);
  std::vector<Record> out;
  out.reserve(rows.size());
  for (const auto& [seq, sid, i] : rows) {
    const Series& s = series_[sid];
    out.push_back(Record{sim::SimTime::from_ns(s.ts_ns(i)), s.location(),
                         metrics_.name(s.metric()), s.value(i)});
  }
  note_query(rows.size(), elapsed_ms_since(t0));
  return out;
}

std::vector<EnvDatabase::Bucket> EnvDatabase::downsample(const QueryFilter& filter,
                                                         sim::Duration bucket_width) const {
  std::vector<Bucket> buckets;
  if (bucket_width.ns() <= 0) return buckets;
  const auto t0 = std::chrono::steady_clock::now();

  if (cache_generation_ != generation_) {
    downsample_cache_.clear();
    cache_generation_ = generation_;
  }
  DownsampleKey key;
  bool cacheable = options_.downsample_cache_capacity > 0;
  if (filter.location_prefix) {
    const Location& p = *filter.location_prefix;
    key.prefix = {p.rack, p.midplane, p.board, p.card};
    key.has_prefix = true;
  }
  if (filter.metric) {
    const auto id = metrics_.find(*filter.metric);
    if (id) {
      key.metric = id;
    } else {
      cacheable = false;  // unknown metric: empty result, not worth a slot
    }
  }
  if (filter.from) key.from_ns = filter.from->ns();
  if (filter.to) key.to_ns = filter.to->ns();
  key.width_ns = bucket_width.ns();

  if (cacheable) {
    if (const auto it = downsample_cache_.find(key); it != downsample_cache_.end()) {
      it->second.last_used = ++cache_tick_;
      ++stats_.cache_hits;
      if (cache_hits_metric_ != nullptr) cache_hits_metric_->inc();
      note_query(0, elapsed_ms_since(t0));
      return it->second.buckets;
    }
    ++stats_.cache_misses;
    if (cache_misses_metric_ != nullptr) cache_misses_metric_->inc();
  }

  std::vector<std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>> rows;
  collect_rows(filter, rows);
  for (const auto& [seq, sid, i] : rows) {
    const Series& s = series_[sid];
    const std::int64_t idx = floor_div(s.ts_ns(i), bucket_width.ns());
    const sim::SimTime start = sim::SimTime::from_ns(idx * bucket_width.ns());
    if (buckets.empty() || buckets.back().start != start) {
      buckets.push_back(Bucket{start, 0.0, 0});
    }
    Bucket& b = buckets.back();
    b.mean += (s.value(i) - b.mean) / static_cast<double>(b.count + 1);
    ++b.count;
  }

  if (cacheable) {
    downsample_cache_[key] = CacheEntry{buckets, ++cache_tick_};
    while (downsample_cache_.size() > options_.downsample_cache_capacity) {
      auto victim = downsample_cache_.begin();
      for (auto it = downsample_cache_.begin(); it != downsample_cache_.end(); ++it) {
        if (it->second.last_used < victim->second.last_used) victim = it;
      }
      downsample_cache_.erase(victim);
    }
  }
  note_query(rows.size(), elapsed_ms_since(t0));
  return buckets;
}

void EnvDatabase::vacuum() {
  if (!options_.retention || total_rows_ == 0) return;
  const std::int64_t cutoff = last_ts_ns_ - options_.retention->ns();
  if (cutoff <= oldest_ts_ns_) return;  // nothing old enough to drop
  std::size_t dropped = 0;
  std::int64_t oldest = last_ts_ns_;
  for (Series& s : series_) {
    dropped += s.drop_before(cutoff);
    if (!s.empty()) oldest = std::min(oldest, s.front_ts_ns());
  }
  oldest_ts_ns_ = oldest;
  if (dropped > 0) {
    total_rows_ -= dropped;
    ++generation_;
  }
}

std::size_t EnvDatabase::bytes_used() const {
  std::size_t bytes = metrics_.bytes_used();
  for (const Series& s : series_) bytes += sizeof(Series) + s.bytes_used();
  bytes += rate_window_.size() * sizeof(std::int64_t);
  return bytes;
}

}  // namespace envmon::tsdb
