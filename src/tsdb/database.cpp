#include "tsdb/database.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

namespace envmon::tsdb {

namespace {

// Bucket index with floor semantics: integer `/` truncates toward zero,
// which would mis-bucket pre-epoch (negative) timestamps to the right.
constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  const std::int64_t q = a / b;
  return (a % b != 0 && (a < 0) != (b < 0)) ? q - 1 : q;
}

double elapsed_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Per-thread decode buffers, reused across the blocks a worker scans.
struct DecodeScratch {
  std::vector<std::int64_t> ts;
  std::vector<double> values;
  std::vector<std::uint64_t> seq;
};

}  // namespace

EnvDatabase::EnvDatabase(DatabaseOptions options) : options_(options) {
  if (obs::enabled()) {
    auto& registry = obs::default_registry();
    inserts_metric_ = &registry.counter("envmon_tsdb_inserts_total",
                                        "Records accepted by the environmental database");
    rejected_metric_ = &registry.counter(
        "envmon_tsdb_rejected_inserts_total",
        "Inserts rejected (ingest rate ceiling or out-of-order timestamps)");
    cache_hits_metric_ =
        &registry.counter("envmon_tsdb_downsample_cache_hits_total",
                          "Downsample queries served from the LRU result cache");
    cache_misses_metric_ =
        &registry.counter("envmon_tsdb_downsample_cache_misses_total",
                          "Downsample queries that touched the storage engine");
    seals_metric_ = &registry.counter("envmon_tsdb_block_seals_total",
                                      "Series heads sealed into immutable blocks");
    pushdown_metric_ = &registry.counter(
        "envmon_tsdb_pushdown_buckets_total",
        "Downsample/aggregate windows served from block or subchunk summaries");
    query_latency_metric_ =
        &registry.histogram("envmon_tsdb_query_latency_ms",
                            "Wall-clock latency of environmental database queries",
                            obs::Histogram::latency_bounds_ms());
    rows_scanned_metric_ = &registry.histogram(
        "envmon_tsdb_query_rows_scanned",
        "Rows touched per query after index and time-range narrowing",
        obs::Histogram::exponential_bounds(1.0, 4.0, 12));
    series_gauge_ = &registry.gauge(
        "envmon_tsdb_series", "Live (location, metric) series in the environmental database");
    bytes_used_gauge_ =
        &registry.gauge("envmon_tsdb_bytes_used",
                        "Approximate heap footprint of the environmental database");
    bytes_per_record_gauge_ =
        &registry.gauge("envmon_tsdb_bytes_per_record",
                        "Heap bytes per live record in the environmental database");
  }
}

bool EnvDatabase::over_ingest_rate(sim::SimTime now) {
  if (options_.max_insert_rate_per_second <= 0.0) return false;
  const std::int64_t window_start = (now - options_.rate_window).ns();
  // Accepted timestamps only move forward, so trimming the front is O(1)
  // amortized — the flat store binary-searched all live records instead.
  while (!rate_window_.empty() && rate_window_.front() < window_start) {
    rate_window_.pop_front();
  }
  const double window_seconds = options_.rate_window.to_seconds();
  return static_cast<double>(rate_window_.size()) >=
         options_.max_insert_rate_per_second * window_seconds;
}

void EnvDatabase::note_accept(const Record& record, std::uint32_t sid) {
  const std::int64_t ts = record.timestamp.ns();
  if (series_[sid].append(ts, record.value, next_seq_++)) note_seal(1);
  // Self-telemetry rows never consume ingest-rate budget (reserved
  // namespace, database.hpp).
  if (options_.max_insert_rate_per_second > 0.0 && !is_self_metric(record.metric)) {
    rate_window_.push_back(ts);
  }
  if (!any_accepted_) oldest_ts_ns_ = ts;
  any_accepted_ = true;
  last_ts_ns_ = ts;
  ++total_rows_;
  ++generation_;
  if (tracer_ != nullptr) {
    tracer_->event_at(record.timestamp, "tsdb.insert", record.metric);
  }
}

void EnvDatabase::append_row(const Record& record, MetricId metric) {
  std::uint32_t& sid = index_.slot(record.location, metric);
  if (sid == ShardIndex::kNoSeries) {
    sid = static_cast<std::uint32_t>(series_.size());
    series_.emplace_back(record.location, metric, options_.compress_blocks);
    if (series_gauge_ != nullptr) series_gauge_->set(static_cast<double>(series_.size()));
  }
  note_accept(record, sid);
}

Status EnvDatabase::insert(const Record& record) {
  if (fault_hook_.attached()) {
    const fault::Outcome fo = fault_hook_.intercept();
    if (!fo.ok()) {
      ++rejected_;
      if (rejected_metric_ != nullptr) rejected_metric_->inc();
      return fo.status;
    }
  }
  if (any_accepted_ && record.timestamp.ns() < last_ts_ns_) {
    ++rejected_;
    if (rejected_metric_ != nullptr) rejected_metric_->inc();
    // Static message: the hot reject path must not format the timestamp.
    return Status(StatusCode::kInvalidArgument, "out-of-order insert");
  }
  if (!is_self_metric(record.metric) && over_ingest_rate(record.timestamp)) {
    ++rejected_;
    if (rejected_metric_ != nullptr) rejected_metric_->inc();
    return Status(StatusCode::kResourceExhausted,
                  "environmental database ingest rate ceiling exceeded");
  }
  append_row(record, metrics_.intern(record.metric));
  if (inserts_metric_ != nullptr) inserts_metric_->inc();
  if (options_.retention) vacuum();
  return Status::ok();
}

EnvDatabase::BatchResult EnvDatabase::insert_batch(std::span<const Record> records) {
  BatchResult result;
  // One intercept per batch: a server outage loses the whole write, the
  // way one failed bulk INSERT does.
  if (fault_hook_.attached() && !fault_hook_.intercept().ok()) {
    result.rejected_unavailable = records.size();
    rejected_ += result.rejected_unavailable;
    if (rejected_metric_ != nullptr && !records.empty()) {
      rejected_metric_->inc(result.rejected_unavailable);
    }
    return result;
  }
  // Collectors emit runs of same-(location, metric) records (one node's
  // domains in order), so the batch is processed run-at-a-time: metric
  // interning, the shard-index walk, and the head-buffer reserve each
  // happen once per run, not once per record.  The series slot is only
  // resolved when a record of the run actually passes validation, so a
  // fully rejected run creates no series and interns nothing.
  const std::size_t n = records.size();
  std::size_t run_end = 0;
  bool run_metric_known = false;
  bool run_self = false;
  MetricId run_metric = 0;
  std::uint32_t run_sid = ShardIndex::kNoSeries;
  for (std::size_t i = 0; i < n; ++i) {
    const Record& record = records[i];
    if (i >= run_end) {
      run_end = i + 1;
      while (run_end < n && records[run_end].location == record.location &&
             records[run_end].metric == record.metric) {
        ++run_end;
      }
      run_metric_known = false;
      run_self = is_self_metric(record.metric);
      run_sid = ShardIndex::kNoSeries;
    }
    if (any_accepted_ && record.timestamp.ns() < last_ts_ns_) {
      ++result.rejected_out_of_order;
      continue;
    }
    if (!run_self && over_ingest_rate(record.timestamp)) {
      ++result.rejected_rate_limited;
      continue;
    }
    if (run_sid == ShardIndex::kNoSeries) {
      if (!run_metric_known) {
        run_metric = metrics_.intern(record.metric);
        run_metric_known = true;
      }
      std::uint32_t& slot = index_.slot(record.location, run_metric);
      if (slot == ShardIndex::kNoSeries) {
        slot = static_cast<std::uint32_t>(series_.size());
        series_.emplace_back(record.location, run_metric, options_.compress_blocks);
        if (series_gauge_ != nullptr) {
          series_gauge_->set(static_cast<double>(series_.size()));
        }
      }
      run_sid = slot;
      series_[run_sid].reserve_head(run_end - i);
    }
    note_accept(record, run_sid);
    ++result.accepted;
  }
  rejected_ += result.rejected();
  if (inserts_metric_ != nullptr && result.accepted > 0) {
    inserts_metric_->inc(result.accepted);
  }
  if (rejected_metric_ != nullptr && result.rejected() > 0) {
    rejected_metric_->inc(result.rejected());
  }
  // Retention runs once per batch, not once per record; the end state is
  // the same because the cutoff depends only on the newest record.
  if (options_.retention && result.accepted > 0) vacuum();
  update_footprint_metrics();
  return result;
}

std::size_t EnvDatabase::seal_blocks(std::size_t min_rows) {
  std::size_t sealed = 0;
  for (Series& s : series_) {
    if (s.seal_head(min_rows)) ++sealed;
  }
  // No generation bump: sealing preserves rows, ordering, and the
  // subchunk aggregation grid, so cached downsample results stay valid.
  if (sealed > 0) note_seal(sealed);
  update_footprint_metrics();
  return sealed;
}

void EnvDatabase::note_seal(std::size_t blocks) {
  stats_.blocks_sealed += blocks;
  if (seals_metric_ != nullptr) seals_metric_->inc(blocks);
}

bool EnvDatabase::resolve_series(const QueryFilter& filter,
                                 std::vector<std::uint32_t>& sids) const {
  std::optional<MetricId> metric;
  if (filter.metric) {
    metric = metrics_.find(*filter.metric);
    if (!metric) return false;  // metric never ingested: no candidate series
  }
  index_.collect(filter.location_prefix, metric, sids);
  stats_.series_touched += sids.size();
  return true;
}

void EnvDatabase::collect_parts(std::span<const std::uint32_t> sids,
                                std::optional<std::int64_t> from_ns,
                                std::optional<std::int64_t> to_ns,
                                std::vector<ScanPart>& parts) const {
  for (const std::uint32_t sid : sids) {
    const Series& s = series_[sid];
    for (std::size_t b = 0; b < s.block_count(); ++b) {
      const BlockSummary& sum = s.block(b).summary();
      if (from_ns && sum.ts_max < *from_ns) continue;
      if (to_ns && sum.ts_min > *to_ns) break;  // blocks are time-ordered
      parts.push_back(ScanPart{sid, static_cast<std::int32_t>(b), s.block(b).rows()});
    }
    const Series::RowRange r = s.head_range(from_ns, to_ns);
    if (r.size() > 0) parts.push_back(ScanPart{sid, -1, r.size()});
  }
}

void EnvDatabase::note_query(std::uint64_t rows_scanned, double elapsed_ms) const {
  ++stats_.queries;
  stats_.rows_scanned += rows_scanned;
  if (query_latency_metric_ != nullptr) query_latency_metric_->observe(elapsed_ms);
  if (rows_scanned_metric_ != nullptr) {
    rows_scanned_metric_->observe(static_cast<double>(rows_scanned));
  }
}

std::vector<Record> EnvDatabase::query(const QueryFilter& filter) const {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Record> out;
  std::vector<std::uint32_t> sids;
  if (!resolve_series(filter, sids)) {
    note_query(0, elapsed_ms_since(t0));
    return out;
  }
  std::optional<std::int64_t> from_ns, to_ns;
  if (filter.from) from_ns = filter.from->ns();
  if (filter.to) to_ns = filter.to->ns();

  std::vector<ScanPart> parts;
  collect_parts(sids, from_ns, to_ns, parts);
  if (parts.empty()) {
    note_query(0, elapsed_ms_since(t0));
    return out;
  }
  std::size_t est = 0;
  for (const ScanPart& p : parts) est += p.est_rows;

  // Decode-and-filter fans out over parts; each part writes its own
  // output slot, so workers share nothing mutable.  The final merge
  // sorts on the globally unique insertion sequence, which makes the
  // result byte-identical at any thread count (and identical to the
  // flat timestamp-ordered scan, since inserts are time-ordered).
  std::vector<std::vector<DecodedRow>> slots(parts.size());
  std::vector<std::uint64_t> decoded(parts.size(), 0);
  const auto scan_part = [&](std::size_t pi, DecodeScratch& scratch) {
    const ScanPart& part = parts[pi];
    const Series& s = series_[part.sid];
    std::vector<DecodedRow>& rows = slots[pi];
    if (part.block < 0) {
      const Series::RowRange r = s.head_range(from_ns, to_ns);
      rows.reserve(r.size());
      for (std::size_t i = r.first; i < r.last; ++i) {
        rows.push_back(DecodedRow{s.head_seq()[i], s.head_ts()[i], s.head_values()[i],
                                  part.sid});
      }
      return;
    }
    const Block& b = s.block(static_cast<std::size_t>(part.block));
    b.decode_timestamps(scratch.ts);
    std::size_t a = 0;
    std::size_t e = scratch.ts.size();
    if (from_ns) {
      a = static_cast<std::size_t>(std::distance(
          scratch.ts.begin(),
          std::lower_bound(scratch.ts.begin(), scratch.ts.end(), *from_ns)));
    }
    if (to_ns) {
      e = static_cast<std::size_t>(std::distance(
          scratch.ts.begin(),
          std::upper_bound(scratch.ts.begin(), scratch.ts.end(), *to_ns)));
    }
    if (a >= e) return;
    b.decode_values(scratch.values);
    b.decode_seq(scratch.seq);
    decoded[pi] = b.rows();
    rows.reserve(e - a);
    for (std::size_t i = a; i < e; ++i) {
      rows.push_back(
          DecodedRow{scratch.seq[i], scratch.ts[i], scratch.values[i], part.sid});
    }
  };

  std::size_t workers = 1;
  if (options_.query_threads > 1 && parts.size() > 1 &&
      est >= options_.parallel_query_min_rows) {
    workers = std::min(options_.query_threads, parts.size());
  }
  if (workers <= 1) {
    DecodeScratch scratch;
    for (std::size_t pi = 0; pi < parts.size(); ++pi) scan_part(pi, scratch);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        DecodeScratch scratch;
        for (std::size_t pi = next.fetch_add(1, std::memory_order_relaxed);
             pi < parts.size(); pi = next.fetch_add(1, std::memory_order_relaxed)) {
          scan_part(pi, scratch);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  std::size_t total = 0;
  for (const auto& slot : slots) total += slot.size();
  std::vector<DecodedRow> rows;
  rows.reserve(total);
  for (const auto& slot : slots) rows.insert(rows.end(), slot.begin(), slot.end());
  std::sort(rows.begin(), rows.end(),
            [](const DecodedRow& a, const DecodedRow& b) { return a.seq < b.seq; });

  out.reserve(total);
  for (const DecodedRow& r : rows) {
    const Series& s = series_[r.sid];
    out.push_back(Record{sim::SimTime::from_ns(r.ts_ns), s.location(),
                         metrics_.name(s.metric()), r.value});
  }
  for (const std::uint64_t d : decoded) stats_.rows_decoded += d;
  note_query(total, elapsed_ms_since(t0));
  return out;
}

std::vector<EnvDatabase::Bucket> EnvDatabase::downsample(const QueryFilter& filter,
                                                         sim::Duration bucket_width) const {
  std::vector<Bucket> buckets;
  if (bucket_width.ns() <= 0) return buckets;
  const auto t0 = std::chrono::steady_clock::now();

  if (cache_generation_ != generation_) {
    downsample_cache_.clear();
    cache_generation_ = generation_;
  }
  DownsampleKey key;
  bool cacheable = options_.downsample_cache_capacity > 0;
  if (filter.location_prefix) {
    const Location& p = *filter.location_prefix;
    key.prefix = {p.rack, p.midplane, p.board, p.card};
    key.has_prefix = true;
  }
  if (filter.metric) {
    const auto id = metrics_.find(*filter.metric);
    if (id) {
      key.metric = id;
    } else {
      cacheable = false;  // unknown metric: empty result, not worth a slot
    }
  }
  if (filter.from) key.from_ns = filter.from->ns();
  if (filter.to) key.to_ns = filter.to->ns();
  key.width_ns = bucket_width.ns();

  if (cacheable) {
    if (const auto it = downsample_cache_.find(key); it != downsample_cache_.end()) {
      it->second.last_used = ++cache_tick_;
      ++stats_.cache_hits;
      if (cache_hits_metric_ != nullptr) cache_hits_metric_->inc();
      note_query(0, elapsed_ms_since(t0));
      return it->second.buckets;
    }
    ++stats_.cache_misses;
    if (cache_misses_metric_ != nullptr) cache_misses_metric_->inc();
  }

  std::vector<std::uint32_t> sids;
  if (!resolve_series(filter, sids)) {
    note_query(0, elapsed_ms_since(t0));
    return buckets;
  }
  std::optional<std::int64_t> from_ns, to_ns;
  if (filter.from) from_ns = filter.from->ns();
  if (filter.to) to_ns = filter.to->ns();
  const std::int64_t w = bucket_width.ns();

  // Bucket sums are accumulated at subchunk granularity: every part's
  // rows are cut on the same 16-row grid the sealed blocks use, each
  // (subchunk ∩ bucket) run folded left-to-right from 0.0, and the
  // partials added in deterministic (series, part, subchunk) order.
  // A subchunk that lies fully inside one bucket contributes exactly
  // its seal-time sum, so taking the precomputed sum (pushdown) — or
  // decoding it — or hitting the same rows pre-seal in the head —
  // yields bit-identical buckets.
  struct Acc {
    double sum = 0.0;
    std::size_t count = 0;
  };
  std::map<std::int64_t, Acc> acc;
  std::uint64_t aggregated = 0;
  std::uint64_t decoded = 0;
  std::uint64_t pushdown_rows = 0;
  std::uint64_t pushdown_chunks = 0;
  std::vector<std::int64_t> ts_scratch;
  std::array<double, Block::kSubchunkRows> chunk_values{};

  // Folds block rows [a, e) into the bucket accumulators.  `ts` has one
  // entry per block row; a subchunk fully inside both the range and one
  // bucket is served from its precomputed sum, anything else decodes
  // just that subchunk.
  const auto fold_part = [&](std::span<const std::int64_t> ts, std::size_t a, std::size_t e,
                             const Block& block) {
    for (std::size_t c = a / Block::kSubchunkRows; c * Block::kSubchunkRows < e; ++c) {
      const std::size_t cb = c * Block::kSubchunkRows;
      const std::size_t ce = std::min(cb + Block::kSubchunkRows, ts.size());
      const std::size_t lo = std::max(cb, a);
      const std::size_t hi = std::min(ce, e);
      if (lo >= hi) continue;
      if (options_.aggregation_pushdown && lo == cb && hi == ce) {
        const std::int64_t b0 = floor_div(ts[cb], w);
        if (floor_div(ts[ce - 1], w) == b0) {
          Acc& slot = acc[b0];
          slot.sum += block.subchunk_sum(c);
          slot.count += ce - cb;
          aggregated += ce - cb;
          pushdown_rows += ce - cb;
          ++pushdown_chunks;
          continue;
        }
      }
      block.decode_subchunk_values(c, chunk_values.data());
      decoded += ce - cb;
      std::size_t r = lo;
      while (r < hi) {
        const std::int64_t bidx = floor_div(ts[r], w);
        double partial = 0.0;
        const std::size_t start = r;
        while (r < hi && floor_div(ts[r], w) == bidx) {
          partial += chunk_values[r - cb];
          ++r;
        }
        Acc& slot = acc[bidx];
        slot.sum += partial;
        slot.count += r - start;
        aggregated += r - start;
      }
    }
  };

  for (const std::uint32_t sid : sids) {
    const Series& s = series_[sid];
    for (std::size_t b = 0; b < s.block_count(); ++b) {
      const Block& block = s.block(b);
      const BlockSummary& sum = block.summary();
      if (from_ns && sum.ts_max < *from_ns) continue;
      if (to_ns && sum.ts_min > *to_ns) break;
      block.decode_timestamps(ts_scratch);
      std::size_t a = 0;
      std::size_t e = ts_scratch.size();
      if (from_ns) {
        a = static_cast<std::size_t>(std::distance(
            ts_scratch.begin(),
            std::lower_bound(ts_scratch.begin(), ts_scratch.end(), *from_ns)));
      }
      if (to_ns) {
        e = static_cast<std::size_t>(std::distance(
            ts_scratch.begin(),
            std::upper_bound(ts_scratch.begin(), ts_scratch.end(), *to_ns)));
      }
      if (a < e) fold_part(ts_scratch, a, e, block);
    }
    const Series::RowRange r = s.head_range(from_ns, to_ns);
    if (r.size() > 0) {
      // The head uses the same grid it will have once sealed (row index
      // relative to the head start), so sealing never moves a bucket sum.
      const auto head_fold = [&](std::size_t a, std::size_t e) {
        std::span<const std::int64_t> ts(s.head_ts());
        const std::vector<double>& head_values = s.head_values();
        for (std::size_t c = a / Block::kSubchunkRows; c * Block::kSubchunkRows < e; ++c) {
          const std::size_t cb = c * Block::kSubchunkRows;
          const std::size_t ce = std::min(cb + Block::kSubchunkRows, ts.size());
          const std::size_t lo = std::max(cb, a);
          const std::size_t hi = std::min(ce, e);
          if (lo >= hi) continue;
          std::size_t row = lo;
          while (row < hi) {
            const std::int64_t bidx = floor_div(ts[row], w);
            double partial = 0.0;
            const std::size_t start = row;
            while (row < hi && floor_div(ts[row], w) == bidx) {
              partial += head_values[row];
              ++row;
            }
            Acc& slot = acc[bidx];
            slot.sum += partial;
            slot.count += row - start;
            aggregated += row - start;
          }
        }
      };
      head_fold(r.first, r.last);
    }
  }

  buckets.reserve(acc.size());
  for (const auto& [idx, a] : acc) {
    buckets.push_back(
        Bucket{sim::SimTime::from_ns(idx * w), a.sum / static_cast<double>(a.count), a.count});
  }
  stats_.rows_decoded += decoded;
  stats_.pushdown_rows += pushdown_rows;
  stats_.pushdown_chunks += pushdown_chunks;
  if (pushdown_metric_ != nullptr && pushdown_chunks > 0) {
    pushdown_metric_->inc(pushdown_chunks);
  }

  if (cacheable) {
    downsample_cache_[key] = CacheEntry{buckets, ++cache_tick_};
    while (downsample_cache_.size() > options_.downsample_cache_capacity) {
      auto victim = downsample_cache_.begin();
      for (auto it = downsample_cache_.begin(); it != downsample_cache_.end(); ++it) {
        if (it->second.last_used < victim->second.last_used) victim = it;
      }
      downsample_cache_.erase(victim);
    }
  }
  note_query(aggregated, elapsed_ms_since(t0));
  return buckets;
}

EnvDatabase::Aggregate EnvDatabase::aggregate(const QueryFilter& filter) const {
  const auto t0 = std::chrono::steady_clock::now();
  Aggregate agg;
  std::vector<std::uint32_t> sids;
  if (!resolve_series(filter, sids)) {
    note_query(0, elapsed_ms_since(t0));
    return agg;
  }
  std::optional<std::int64_t> from_ns, to_ns;
  if (filter.from) from_ns = filter.from->ns();
  if (filter.to) to_ns = filter.to->ns();

  // Sums are grouped per part (one sealed block or the head range): each
  // part contributes a left-to-right fold from 0.0, and a fully covered
  // block's fold is exactly its seal-time summary — so serving it from
  // the summary (pushdown) is bit-identical to decoding it.
  bool any_finite = false;
  std::uint64_t decoded = 0;
  std::uint64_t pushdown_rows = 0;
  std::uint64_t pushdown_chunks = 0;
  std::vector<std::int64_t> ts_scratch;
  std::vector<double> value_scratch;
  const auto merge_minmax = [&](double v) {
    if (std::isnan(v)) return;
    if (!any_finite || v < agg.min) agg.min = v;
    if (!any_finite || v > agg.max) agg.max = v;
    any_finite = true;
  };
  const auto fold_rows = [&](std::span<const double> values, std::size_t a, std::size_t e) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t i = a; i < e; ++i) {
      const double v = values[i];
      sum += v;
      sum_sq += v * v;
      merge_minmax(v);
    }
    agg.sum += sum;
    agg.sum_sq += sum_sq;
    agg.count += e - a;
  };

  for (const std::uint32_t sid : sids) {
    const Series& s = series_[sid];
    for (std::size_t b = 0; b < s.block_count(); ++b) {
      const Block& block = s.block(b);
      const BlockSummary& sum = block.summary();
      if (from_ns && sum.ts_max < *from_ns) continue;
      if (to_ns && sum.ts_min > *to_ns) break;
      const bool covered = (!from_ns || *from_ns <= sum.ts_min) &&
                           (!to_ns || sum.ts_max <= *to_ns);
      if (covered && options_.aggregation_pushdown) {
        agg.count += sum.rows;
        agg.sum += sum.value_sum;
        agg.sum_sq += sum.value_sum_sq;
        if (sum.finite_rows > 0) {
          if (!any_finite || sum.value_min < agg.min) agg.min = sum.value_min;
          if (!any_finite || sum.value_max > agg.max) agg.max = sum.value_max;
          any_finite = true;
        }
        pushdown_rows += sum.rows;
        ++pushdown_chunks;
        continue;
      }
      block.decode_timestamps(ts_scratch);
      std::size_t a = 0;
      std::size_t e = ts_scratch.size();
      if (from_ns) {
        a = static_cast<std::size_t>(std::distance(
            ts_scratch.begin(),
            std::lower_bound(ts_scratch.begin(), ts_scratch.end(), *from_ns)));
      }
      if (to_ns) {
        e = static_cast<std::size_t>(std::distance(
            ts_scratch.begin(),
            std::upper_bound(ts_scratch.begin(), ts_scratch.end(), *to_ns)));
      }
      if (a >= e) continue;
      block.decode_values(value_scratch);
      decoded += value_scratch.size();
      fold_rows(value_scratch, a, e);
    }
    const Series::RowRange r = s.head_range(from_ns, to_ns);
    if (r.size() > 0) fold_rows(s.head_values(), r.first, r.last);
  }

  stats_.rows_decoded += decoded;
  stats_.pushdown_rows += pushdown_rows;
  stats_.pushdown_chunks += pushdown_chunks;
  if (pushdown_metric_ != nullptr && pushdown_chunks > 0) {
    pushdown_metric_->inc(pushdown_chunks);
  }
  note_query(agg.count, elapsed_ms_since(t0));
  return agg;
}

void EnvDatabase::vacuum() {
  if (!options_.retention || total_rows_ == 0) return;
  const std::int64_t cutoff = last_ts_ns_ - options_.retention->ns();
  if (cutoff <= oldest_ts_ns_) return;  // nothing old enough to drop
  std::size_t dropped = 0;
  std::int64_t oldest = last_ts_ns_;
  for (Series& s : series_) {
    dropped += s.drop_before(cutoff);
    if (!s.empty()) oldest = std::min(oldest, s.front_ts_ns());
  }
  oldest_ts_ns_ = oldest;
  if (dropped > 0) {
    total_rows_ -= dropped;
    // Retention changed the visible rows: invalidate cached downsample
    // results (cache_generation_ lags behind and the next downsample
    // clears the cache).
    ++generation_;
  }
}

std::size_t EnvDatabase::sealed_block_count() const {
  std::size_t blocks = 0;
  for (const Series& s : series_) blocks += s.block_count();
  return blocks;
}

std::size_t EnvDatabase::bytes_used() const {
  std::size_t bytes = metrics_.bytes_used();
  for (const Series& s : series_) bytes += sizeof(Series) + s.bytes_used();
  bytes += rate_window_.size() * sizeof(std::int64_t);
  // Downsample cache entries: key + entry bookkeeping plus the memoized
  // bucket storage (these used to go unaccounted).
  for (const auto& [key, entry] : downsample_cache_) {
    bytes += sizeof(key) + sizeof(entry) + entry.buckets.capacity() * sizeof(Bucket);
  }
  return bytes;
}

void EnvDatabase::update_footprint_metrics() {
  if (bytes_used_gauge_ == nullptr && bytes_per_record_gauge_ == nullptr) return;
  const double bytes = static_cast<double>(bytes_used());
  if (bytes_used_gauge_ != nullptr) bytes_used_gauge_->set(bytes);
  if (bytes_per_record_gauge_ != nullptr) {
    bytes_per_record_gauge_->set(
        total_rows_ == 0 ? 0.0 : bytes / static_cast<double>(total_rows_));
  }
}

}  // namespace envmon::tsdb
