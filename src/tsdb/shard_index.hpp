#pragma once
// Location-prefix tree over the database's shards.
//
// Every series lives at a depth-4 path through the BG/Q location
// hierarchy (rack, midplane, board, card; -1 marks an unset level, e.g.
// a rack-scope BPM record), with a per-metric fan-out at the leaf.  A
// query's location filter descends the tree level by level: a set level
// selects one child, an unset level selects all of them — which is
// exactly Location::contains(), including its sparse-wildcard form
// (prefix R00-*-N03 matches any midplane).  Candidate resolution is
// therefore O(matching series), independent of record count.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "tsdb/location.hpp"
#include "tsdb/metric_table.hpp"

namespace envmon::tsdb {

class ShardIndex {
 public:
  static constexpr std::uint32_t kNoSeries = 0xffff'ffffu;

  // Slot for (location, metric), created as kNoSeries on first access;
  // the database assigns the dense series id.
  [[nodiscard]] std::uint32_t& slot(const Location& location, MetricId metric);

  // Read-only lookup: the series id at (location, metric), or kNoSeries.
  // Never creates nodes — WAL replay validates seal records against
  // this so a corrupt frame cannot register a phantom series.
  [[nodiscard]] std::uint32_t find(const Location& location, MetricId metric) const;

  // Appends the ids of every series whose location is contained by
  // `prefix` (all of them when absent), optionally restricted to one
  // metric.  Order is deterministic (location fields, then metric id).
  void collect(const std::optional<Location>& prefix, std::optional<MetricId> metric,
               std::vector<std::uint32_t>& out) const;

  [[nodiscard]] std::size_t series_count() const { return series_count_; }

 private:
  struct Node {
    std::map<int, Node> children;                  // keyed by next level field
    std::map<MetricId, std::uint32_t> series;      // populated at depth 4
  };

  static void collect_node(const Node& node, const int* fields, int level,
                           std::optional<MetricId> metric, std::vector<std::uint32_t>& out);

  Node root_;
  std::size_t series_count_ = 0;
};

}  // namespace envmon::tsdb
