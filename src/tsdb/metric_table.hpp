#pragma once
// Metric-name interning for the environmental database.
//
// The flat store paid one heap-allocated std::string per record for the
// metric name; at fleet scale (millions of records, a few dozen distinct
// metrics) that is almost all of the per-record footprint.  A MetricTable
// maps each distinct name to a small dense integer id once, so records
// carry 4 bytes and name comparisons become integer compares.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace envmon::tsdb {

using MetricId = std::uint32_t;

class MetricTable {
 public:
  // Returns the id for `name`, assigning the next dense id on first use.
  MetricId intern(std::string_view name);

  // Lookup without interning (queries must not create series for
  // metrics that were never ingested).
  [[nodiscard]] std::optional<MetricId> find(std::string_view name) const;

  [[nodiscard]] const std::string& name(MetricId id) const { return names_[id]; }
  [[nodiscard]] std::size_t size() const { return names_.size(); }

  // Approximate heap bytes held by the table (for bytes/record accounting).
  [[nodiscard]] std::size_t bytes_used() const;

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, MetricId, Hash, std::equal_to<>> ids_;
  std::vector<std::string> names_;  // id -> name
};

}  // namespace envmon::tsdb
