#include "tsdb/location.hpp"

#include <charconv>
#include <cstdio>

#include "common/strings.hpp"

namespace envmon::tsdb {

std::string Location::to_string() const {
  char buf[48];
  int len = 0;
  if (rack >= 0) len += std::snprintf(buf + len, sizeof(buf) - static_cast<std::size_t>(len), "R%02d", rack);
  if (midplane >= 0) len += std::snprintf(buf + len, sizeof(buf) - static_cast<std::size_t>(len), "-M%d", midplane);
  if (board >= 0) len += std::snprintf(buf + len, sizeof(buf) - static_cast<std::size_t>(len), "-N%02d", board);
  if (card >= 0) len += std::snprintf(buf + len, sizeof(buf) - static_cast<std::size_t>(len), "-J%02d", card);
  return std::string(buf, static_cast<std::size_t>(len));
}

bool Location::contains(const Location& other) const {
  if (rack >= 0 && rack != other.rack) return false;
  if (midplane >= 0 && midplane != other.midplane) return false;
  if (board >= 0 && board != other.board) return false;
  if (card >= 0 && card != other.card) return false;
  return true;
}

namespace {

bool parse_component(std::string_view part, char tag, int& out) {
  if (part.size() < 2 || part[0] != tag) return false;
  int v = 0;
  const auto [ptr, ec] = std::from_chars(part.data() + 1, part.data() + part.size(), v);
  if (ec != std::errc{} || ptr != part.data() + part.size() || v < 0) return false;
  out = v;
  return true;
}

}  // namespace

std::optional<Location> parse_location(std::string_view s) {
  const auto parts = split(s, '-');
  if (parts.empty() || parts.size() > 4) return std::nullopt;
  Location loc;
  if (!parse_component(parts[0], 'R', loc.rack)) return std::nullopt;
  if (parts.size() > 1 && !parse_component(parts[1], 'M', loc.midplane)) return std::nullopt;
  if (parts.size() > 2 && !parse_component(parts[2], 'N', loc.board)) return std::nullopt;
  if (parts.size() > 3 && !parse_component(parts[3], 'J', loc.card)) return std::nullopt;
  return loc;
}

Location rack_location(int rack) { return Location{rack, -1, -1, -1}; }
Location midplane_location(int rack, int midplane) { return Location{rack, midplane, -1, -1}; }
Location board_location(int rack, int midplane, int board) {
  return Location{rack, midplane, board, -1};
}
Location card_location(int rack, int midplane, int board, int card) {
  return Location{rack, midplane, board, card};
}

}  // namespace envmon::tsdb
