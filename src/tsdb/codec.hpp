#pragma once
// Bit-level codecs for sealed environmental-database blocks.
//
// The streams this store sees are the ones the paper describes: sensor
// samples on near-fixed-interval ticks (5-minute environmental polls,
// 560 ms MonEQ generations), slowly-varying values, and a monotone
// global insertion sequence.  Three codecs exploit that, after the
// Gorilla design (Pelkonen et al., VLDB 2015):
//
//  * DeltaOfDelta{Encoder,Decoder} — int64 timestamps (and seq): the
//    first value is stored raw, later values store the change of the
//    delta in variable-width buckets.  A fixed-interval tick stream
//    costs one bit per row after the second.
//  * Xor{Encoder,Decoder} — doubles: each value is XORed with its
//    predecessor; identical values cost one bit, small mantissa drifts
//    cost the meaningful bits plus a short header.  All 2^64 bit
//    patterns (NaN payloads, ±inf, denormals, -0.0) round-trip exactly
//    because the codec never interprets the value arithmetically.
//
// Both decoders are total: a truncated or corrupt stream decodes to
// arbitrary values (the caller bounds the row count from the block
// summary) but never reads out of bounds — BitReader returns zero bits
// past the end.  That property is fuzzed in tests/fuzz_test.cpp.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace envmon::tsdb {

// Append-only MSB-first bit sink backed by a byte vector.
class BitWriter {
 public:
  void put_bit(bool bit) { put_bits(bit ? 1u : 0u, 1); }

  // Appends the low `count` bits of `value`, most significant first.
  void put_bits(std::uint64_t value, unsigned count);

  [[nodiscard]] std::size_t bit_size() const { return bit_size_; }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_size_ = 0;  // bits written; bytes_.back() is partially filled
};

// MSB-first bit source over a byte span; reads past the end yield zeros
// (and set exhausted()) instead of undefined behavior.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] bool get_bit() { return get_bits(1) != 0; }
  [[nodiscard]] std::uint64_t get_bits(unsigned count);

  // Repositions the cursor to an absolute bit offset.
  void seek(std::size_t bit_offset) { bit_pos_ = bit_offset; }
  [[nodiscard]] std::size_t bit_pos() const { return bit_pos_; }
  [[nodiscard]] bool exhausted() const { return exhausted_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t bit_pos_ = 0;
  bool exhausted_ = false;
};

// Delta-of-delta codec for monotone-ish int64 streams.  Bucket widths
// are widened relative to Gorilla's (which assumed seconds) so that
// nanosecond jitter still lands in short buckets.
class DeltaOfDeltaEncoder {
 public:
  void append(std::int64_t value, BitWriter& out);

 private:
  bool first_ = true;
  std::int64_t prev_ = 0;
  std::int64_t prev_delta_ = 0;
};

class DeltaOfDeltaDecoder {
 public:
  [[nodiscard]] std::int64_t next(BitReader& in);

 private:
  bool first_ = true;
  std::int64_t prev_ = 0;
  std::int64_t prev_delta_ = 0;
};

// Gorilla XOR codec for double streams.
class XorEncoder {
 public:
  void append(double value, BitWriter& out);

 private:
  bool first_ = true;
  std::uint64_t prev_bits_ = 0;
  unsigned window_leading_ = 0;
  unsigned window_trailing_ = 0;
  bool window_valid_ = false;
};

class XorDecoder {
 public:
  [[nodiscard]] double next(BitReader& in);

 private:
  bool first_ = true;
  std::uint64_t prev_bits_ = 0;
  unsigned window_leading_ = 0;
  unsigned window_trailing_ = 0;
  bool window_valid_ = false;
};

}  // namespace envmon::tsdb
