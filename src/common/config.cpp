#include "common/config.hpp"

#include "common/strings.hpp"

namespace envmon {

Result<Config> Config::parse(std::string_view text) {
  Config config;
  std::string section;  // keys before any [section] live in ""
  int line_no = 0;
  for (const auto& raw_line : split(text, '\n')) {
    ++line_no;
    const std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        return Status::invalid_argument("malformed section header at line " + std::to_string(line_no));
      }
      section = std::string(trim(line.substr(1, line.size() - 2)));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::invalid_argument("expected key=value at line " + std::to_string(line_no));
    }
    const std::string key{trim(line.substr(0, eq))};
    // Inline comments: a '#' or ';' preceded by whitespace ends the value.
    std::string_view value_part = line.substr(eq + 1);
    for (std::size_t i = 0; i < value_part.size(); ++i) {
      if ((value_part[i] == '#' || value_part[i] == ';') &&
          (i == 0 || value_part[i - 1] == ' ' || value_part[i - 1] == '\t')) {
        value_part = value_part.substr(0, i);
        break;
      }
    }
    const std::string value{trim(value_part)};
    if (key.empty()) {
      return Status::invalid_argument("empty key at line " + std::to_string(line_no));
    }
    config.data_[section][key] = value;
  }
  return config;
}

bool Config::has(std::string_view section, std::string_view key) const {
  return get(section, key).has_value();
}

std::optional<std::string> Config::get(std::string_view section, std::string_view key) const {
  const auto sec = data_.find(section);
  if (sec == data_.end()) return std::nullopt;
  const auto it = sec->second.find(std::string(key));
  if (it == sec->second.end()) return std::nullopt;
  return it->second;
}

Result<std::string> Config::get_string(std::string_view section, std::string_view key,
                                       std::string default_value) const {
  const auto v = get(section, key);
  return v ? *v : std::move(default_value);
}

Result<double> Config::get_double(std::string_view section, std::string_view key,
                                  double default_value) const {
  const auto v = get(section, key);
  if (!v) return default_value;
  double out = 0.0;
  if (!parse_double(*v, out)) {
    return Status::invalid_argument(std::string(section) + "." + std::string(key) + ": not a number: " + *v);
  }
  return out;
}

Result<long long> Config::get_int(std::string_view section, std::string_view key,
                                  long long default_value) const {
  const auto d = get_double(section, key, static_cast<double>(default_value));
  if (!d) return d.status();
  const auto rounded = static_cast<long long>(d.value());
  if (static_cast<double>(rounded) != d.value()) {
    return Status::invalid_argument(std::string(section) + "." + std::string(key) + ": not an integer");
  }
  return rounded;
}

Result<bool> Config::get_bool(std::string_view section, std::string_view key,
                              bool default_value) const {
  const auto v = get(section, key);
  if (!v) return default_value;
  const std::string lower = to_lower(*v);
  if (lower == "true" || lower == "yes" || lower == "on" || lower == "1") return true;
  if (lower == "false" || lower == "no" || lower == "off" || lower == "0") return false;
  return Status::invalid_argument(std::string(section) + "." + std::string(key) + ": not a boolean: " + *v);
}

std::vector<std::string> Config::sections() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : data_) out.push_back(name);
  return out;
}

std::size_t Config::size() const {
  std::size_t n = 0;
  for (const auto& [_, kv] : data_) n += kv.size();
  return n;
}

}  // namespace envmon
