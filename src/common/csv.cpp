#include "common/csv.hpp"

namespace envmon {

namespace {

bool needs_quoting(const std::string& field, char delim) {
  for (const char c : field) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

void CsvWriter::write_field(const std::string& field, bool first) {
  if (!first) *os_ << delim_;
  if (needs_quoting(field, delim_)) {
    *os_ << '"';
    for (const char c : field) {
      if (c == '"') *os_ << '"';
      *os_ << c;
    }
    *os_ << '"';
  } else {
    *os_ << field;
  }
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    write_field(f, first);
    first = false;
  }
  *os_ << '\n';
  ++rows_written_;
}

Result<CsvTable> parse_csv(std::string_view text, bool has_header, char delim) {
  CsvTable table;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_data = false;

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  const auto end_row = [&] {
    end_field();
    if (has_header && table.header.empty() && table.rows.empty()) {
      table.header = std::move(row);
    } else {
      table.rows.push_back(std::move(row));
    }
    row.clear();
    row_has_data = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::invalid_argument("quote appears mid-field at offset " + std::to_string(i));
        }
        in_quotes = true;
        row_has_data = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_has_data || !field.empty() || !row.empty()) end_row();
        break;
      default:
        if (c == delim) {
          end_field();
          row_has_data = true;
        } else {
          field += c;
          row_has_data = true;
        }
    }
  }
  if (in_quotes) {
    return Status::invalid_argument("unterminated quoted field");
  }
  if (row_has_data || !field.empty() || !row.empty()) end_row();
  return table;
}

}  // namespace envmon
