#pragma once
// Streaming and batch statistics used throughout the benches and the
// analysis module (boxplots for Fig 7, summary rows for EXPERIMENTS.md).

#include <cstddef>
#include <span>
#include <vector>

namespace envmon {

// Welford's online algorithm: numerically stable running mean/variance.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);  // Chan et al. parallel merge
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Quantile of a sample using linear interpolation between order statistics
// (type-7 estimator, the numpy/R default).  q in [0, 1].
[[nodiscard]] double quantile(std::span<const double> sorted_values, double q);

// Convenience: copies, sorts, and evaluates several quantiles at once.
[[nodiscard]] std::vector<double> quantiles(std::span<const double> values,
                                            std::span<const double> qs);

// Five-number summary plus Tukey whiskers/outliers, i.e. exactly what a
// boxplot renders (used for the Fig 7 reproduction).
struct BoxplotStats {
  double min = 0.0;           // sample min
  double whisker_low = 0.0;   // lowest point >= q1 - 1.5*iqr
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double whisker_high = 0.0;  // highest point <= q3 + 1.5*iqr
  double max = 0.0;           // sample max
  std::vector<double> outliers;
};

[[nodiscard]] BoxplotStats boxplot_stats(std::span<const double> values);

// Welch's unequal-variance t-test.  The paper reports the API-vs-daemon
// difference in Fig 7 as "statistically significant"; we verify that.
struct WelchTTest {
  double t = 0.0;
  double dof = 0.0;
  double p_value = 1.0;  // two-sided
};

[[nodiscard]] WelchTTest welch_t_test(std::span<const double> a, std::span<const double> b);

}  // namespace envmon
