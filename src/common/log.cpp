#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace envmon {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

constexpr std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {

void log_line(LogLevel level, std::string_view msg) {
  if (level < log_level()) return;
  const std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(level_tag(level).size()),
               level_tag(level).data(), static_cast<int>(msg.size()), msg.data());
}

}  // namespace detail
}  // namespace envmon
