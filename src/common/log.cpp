#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace envmon {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;
LogSink g_sink;               // guarded by g_mutex; null = stderr
LogTimeSource g_time_source;  // guarded by g_mutex; null = no stamp

constexpr std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(LogSink sink) {
  const std::scoped_lock lock(g_mutex);
  g_sink = std::move(sink);
}

void set_log_time_source(LogTimeSource source) {
  const std::scoped_lock lock(g_mutex);
  g_time_source = std::move(source);
}

namespace detail {

void log_line(LogLevel level, std::string_view msg) {
  if (level < log_level()) return;
  const std::scoped_lock lock(g_mutex);

  std::string line;
  line.reserve(msg.size() + 32);
  line += '[';
  line += level_tag(level);
  line += "] ";
  if (g_time_source) {
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "[t=%.3fs] ", g_time_source());
    line += stamp;
  }
  line += msg;

  if (g_sink) {
    g_sink(level, line);
    return;
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace detail
}  // namespace envmon
