#include "common/rng.hpp"

#include <cmath>

namespace envmon {

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  if (n == 0) return 0;
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

Rng Rng::fork() {
  Rng child(0);
  // Use four raw draws to decorrelate child state from parent sequence.
  SplitMix64 sm(next_u64() ^ 0xa0761d6478bd642fULL);
  child.state_ = {sm.next(), sm.next(), sm.next(), sm.next()};
  return child;
}

}  // namespace envmon
