#pragma once
// Deterministic random number generation.
//
// Every stochastic element of the simulation (sensor noise, register
// update jitter, workload variation) draws from one of these generators
// seeded explicitly, so a run is reproducible bit-for-bit.  We implement
// splitmix64 (for seeding) and xoshiro256** (the workhorse) rather than
// rely on implementation-defined std::default_random_engine behaviour.

#include <array>
#include <cstdint>

namespace envmon {

// splitmix64: used to expand one 64-bit seed into generator state.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast, high-quality, tiny state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface so <random> distributions work too.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  // Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n).
  std::uint64_t uniform_u64(std::uint64_t n);

  // Standard normal via Marsaglia polar method (cached pair).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  // Fork a statistically independent stream (for per-device generators).
  [[nodiscard]] Rng fork();

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace envmon
