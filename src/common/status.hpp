#pragma once
// Error handling: Status / Result<T> — the one error taxonomy every
// envmon subsystem shares.
//
// The vendor APIs the paper studies report errors by integer codes (NVML
// return codes, errno from the msr device, SCIF status).  We mirror that
// style at the simulation boundary but use a typed Status internally so
// call sites cannot ignore failures accidentally ([[nodiscard]]).
//
// The taxonomy is shared across process boundaries: the envmond wire
// protocol (daemon/protocol.hpp) carries these exact codes in its error
// replies, so a remote client observes the same StatusCode an in-process
// caller would.  The numeric values are therefore FROZEN — they are the
// on-wire representation (DESIGN.md §14.5).  Add new codes at the end;
// never renumber or remove.

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace envmon {

enum class StatusCode : std::uint16_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kPermissionDenied = 3,   // e.g. reading /dev/cpu/*/msr without root
  kUnavailable = 4,        // e.g. daemon not running, device lost
  kOutOfRange = 5,         // e.g. polling interval outside vendor limits
  kFailedPrecondition = 6, // e.g. collect before initialize
  kResourceExhausted = 7,  // e.g. sample buffer full, rate limit, credit overrun
  kUnsupported = 8,        // e.g. power query on a pre-Kepler GPU
  kInternal = 9,
  kUnauthenticated = 10,   // e.g. handshake names an unknown tenant
  kAborted = 11,           // e.g. session torn down mid-stream (server shutdown)
  kDataLoss = 12,          // e.g. checksum mismatch on a frame or stored extent
};

// One past the last valid code; from_wire() maps anything >= this to
// kInternal rather than trusting a peer's bytes.
inline constexpr std::uint16_t kStatusCodeCount = 13;

[[nodiscard]] constexpr std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnsupported: return "UNSUPPORTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnauthenticated: return "UNAUTHENTICATED";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

// Wire representation (u16, little-endian where serialized).  The enum
// values ARE the wire values; these helpers exist so protocol code never
// casts bare integers and unknown peer bytes degrade safely.
[[nodiscard]] constexpr std::uint16_t status_code_to_wire(StatusCode code) {
  return static_cast<std::uint16_t>(code);
}

[[nodiscard]] constexpr StatusCode status_code_from_wire(std::uint16_t wire) {
  return wire < kStatusCodeCount ? static_cast<StatusCode>(wire) : StatusCode::kInternal;
}

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return {}; }

  // Canonical constructors — one per failure code, so call sites across
  // tsdb, fleet, and the daemon spell the taxonomy identically.
  [[nodiscard]] static Status invalid_argument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  [[nodiscard]] static Status not_found(std::string msg) {
    return {StatusCode::kNotFound, std::move(msg)};
  }
  [[nodiscard]] static Status permission_denied(std::string msg) {
    return {StatusCode::kPermissionDenied, std::move(msg)};
  }
  [[nodiscard]] static Status unavailable(std::string msg) {
    return {StatusCode::kUnavailable, std::move(msg)};
  }
  [[nodiscard]] static Status out_of_range(std::string msg) {
    return {StatusCode::kOutOfRange, std::move(msg)};
  }
  [[nodiscard]] static Status failed_precondition(std::string msg) {
    return {StatusCode::kFailedPrecondition, std::move(msg)};
  }
  [[nodiscard]] static Status resource_exhausted(std::string msg) {
    return {StatusCode::kResourceExhausted, std::move(msg)};
  }
  [[nodiscard]] static Status unsupported(std::string msg) {
    return {StatusCode::kUnsupported, std::move(msg)};
  }
  [[nodiscard]] static Status internal(std::string msg) {
    return {StatusCode::kInternal, std::move(msg)};
  }
  [[nodiscard]] static Status unauthenticated(std::string msg) {
    return {StatusCode::kUnauthenticated, std::move(msg)};
  }
  [[nodiscard]] static Status aborted(std::string msg) {
    return {StatusCode::kAborted, std::move(msg)};
  }
  [[nodiscard]] static Status data_loss(std::string msg) {
    return {StatusCode::kDataLoss, std::move(msg)};
  }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    std::string s{envmon::to_string(code_)};
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.to_string(); }

// Minimal expected-like result type (the toolchain here predates
// std::expected being universally available).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {}    // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] const T& value() const& { return std::get<T>(data_); }
  [[nodiscard]] T& value() & { return std::get<T>(data_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(data_)); }

  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(data_) : std::move(fallback);
  }

  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace envmon
