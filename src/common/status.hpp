#pragma once
// Error handling: Status / Result<T>.
//
// The vendor APIs the paper studies report errors by integer codes (NVML
// return codes, errno from the msr device, SCIF status).  We mirror that
// style at the simulation boundary but use a typed Status internally so
// call sites cannot ignore failures accidentally ([[nodiscard]]).

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace envmon {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kPermissionDenied,   // e.g. reading /dev/cpu/*/msr without root
  kUnavailable,        // e.g. daemon not running, device lost
  kOutOfRange,         // e.g. polling interval outside vendor limits
  kFailedPrecondition, // e.g. collect before initialize
  kResourceExhausted,  // e.g. sample buffer full
  kUnsupported,        // e.g. power query on a pre-Kepler GPU
  kInternal,
};

[[nodiscard]] constexpr std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnsupported: return "UNSUPPORTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    std::string s{envmon::to_string(code_)};
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.to_string(); }

// Minimal expected-like result type (the toolchain here predates
// std::expected being universally available).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {}    // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] const T& value() const& { return std::get<T>(data_); }
  [[nodiscard]] T& value() & { return std::get<T>(data_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(data_)); }

  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(data_) : std::move(fallback);
  }

  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace envmon
