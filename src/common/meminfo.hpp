#pragma once
// Process memory accounting for the fleet's bytes-per-node gate.
//
// The 100k-node fleet gates not just throughput but footprint:
// FleetReport carries bytes_per_node derived from the resident-set
// numbers below, and bench/fleet_scale fails if a node's share grows
// past its budget.  Linux-only by implementation (/proc/self/status);
// elsewhere both calls return 0 and the accounting reports as absent
// rather than wrong.

#include <cstdint>

namespace envmon::common {

// Current resident set size in bytes (VmRSS); 0 when unavailable.
[[nodiscard]] std::uint64_t current_rss_bytes();

// Peak resident set size in bytes (VmHWM); 0 when unavailable.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace envmon::common
