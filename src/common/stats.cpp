#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace envmon {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double quantile(std::span<const double> sorted_values, double q) {
  if (sorted_values.empty()) throw std::invalid_argument("quantile of empty sample");
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_values[lo] + frac * (sorted_values[hi] - sorted_values[lo]);
}

std::vector<double> quantiles(std::span<const double> values, std::span<const double> qs) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) out.push_back(quantile(sorted, q));
  return out;
}

BoxplotStats boxplot_stats(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("boxplot of empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  BoxplotStats bs;
  bs.min = sorted.front();
  bs.max = sorted.back();
  bs.q1 = quantile(sorted, 0.25);
  bs.median = quantile(sorted, 0.50);
  bs.q3 = quantile(sorted, 0.75);

  const double iqr = bs.q3 - bs.q1;
  const double fence_low = bs.q1 - 1.5 * iqr;
  const double fence_high = bs.q3 + 1.5 * iqr;

  bs.whisker_low = bs.max;  // placeholder; fixed below
  bs.whisker_high = bs.min;
  for (const double x : sorted) {
    if (x < fence_low || x > fence_high) {
      bs.outliers.push_back(x);
    } else {
      bs.whisker_low = std::min(bs.whisker_low, x);
      bs.whisker_high = std::max(bs.whisker_high, x);
    }
  }
  return bs;
}

namespace {

// Regularized incomplete beta via continued fraction (Lentz), enough for a
// two-sided t-test p-value.
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 3e-12;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

double incbeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_beta = std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
  const double front = std::exp(a * std::log(x) + b * std::log(1.0 - x) - ln_beta);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

}  // namespace

WelchTTest welch_t_test(std::span<const double> a, std::span<const double> b) {
  RunningStats sa, sb;
  for (const double x : a) sa.add(x);
  for (const double x : b) sb.add(x);

  WelchTTest result;
  if (sa.count() < 2 || sb.count() < 2) return result;

  const double va = sa.variance() / static_cast<double>(sa.count());
  const double vb = sb.variance() / static_cast<double>(sb.count());
  const double se2 = va + vb;
  if (se2 <= 0.0) {
    result.t = (sa.mean() == sb.mean()) ? 0.0 : std::numeric_limits<double>::infinity();
    result.p_value = (sa.mean() == sb.mean()) ? 1.0 : 0.0;
    return result;
  }
  result.t = (sa.mean() - sb.mean()) / std::sqrt(se2);
  result.dof = se2 * se2 /
               (va * va / static_cast<double>(sa.count() - 1) +
                vb * vb / static_cast<double>(sb.count() - 1));
  // Two-sided p-value from the t CDF via the incomplete beta function.
  const double x = result.dof / (result.dof + result.t * result.t);
  result.p_value = incbeta(result.dof / 2.0, 0.5, x);
  return result;
}

}  // namespace envmon
