#include "common/meminfo.hpp"

#include <cstdio>
#include <cstring>

namespace envmon::common {

namespace {

// Reads a "<Key>:  <n> kB" line from /proc/self/status; 0 if absent.
std::uint64_t status_field_kib(const char* key) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  const std::size_t key_len = std::strlen(key);
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      unsigned long long value = 0;
      if (std::sscanf(line + key_len + 1, "%llu", &value) == 1) kib = value;
      break;
    }
  }
  std::fclose(f);
  return kib;
#else
  (void)key;
  return 0;
#endif
}

}  // namespace

std::uint64_t current_rss_bytes() { return status_field_kib("VmRSS") * 1024; }

std::uint64_t peak_rss_bytes() { return status_field_kib("VmHWM") * 1024; }

}  // namespace envmon::common
