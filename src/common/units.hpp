#pragma once
// Strong unit types for environmental quantities.
//
// The paper compares mechanisms that report watts, joules, volts, amperes,
// degrees Celsius, RPM, and bytes.  Mixing these up silently is the classic
// failure mode of monitoring glue code, so each quantity gets its own type.
// The types are thin wrappers over double with explicit constructors and
// only the physically meaningful cross-type operations defined
// (power * time = energy, power = voltage * current, ...).

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>

namespace envmon {

namespace detail {

// CRTP base providing the arithmetic shared by all scalar unit wrappers.
template <typename Derived>
struct UnitBase {
  double v{0.0};

  constexpr UnitBase() = default;
  constexpr explicit UnitBase(double value) : v(value) {}

  [[nodiscard]] constexpr double value() const { return v; }

  friend constexpr Derived operator+(Derived a, Derived b) { return Derived{a.v + b.v}; }
  friend constexpr Derived operator-(Derived a, Derived b) { return Derived{a.v - b.v}; }
  friend constexpr Derived operator*(Derived a, double s) { return Derived{a.v * s}; }
  friend constexpr Derived operator*(double s, Derived a) { return Derived{a.v * s}; }
  friend constexpr Derived operator/(Derived a, double s) { return Derived{a.v / s}; }
  // Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) { return a.v / b.v; }
  friend constexpr Derived operator-(Derived a) { return Derived{-a.v}; }

  Derived& operator+=(Derived o) {
    v += o.v;
    return static_cast<Derived&>(*this);
  }
  Derived& operator-=(Derived o) {
    v -= o.v;
    return static_cast<Derived&>(*this);
  }
  Derived& operator*=(double s) {
    v *= s;
    return static_cast<Derived&>(*this);
  }

  friend constexpr auto operator<=>(UnitBase a, UnitBase b) = default;
};

}  // namespace detail

struct Watts : detail::UnitBase<Watts> {
  using UnitBase::UnitBase;
};
struct Joules : detail::UnitBase<Joules> {
  using UnitBase::UnitBase;
};
struct Volts : detail::UnitBase<Volts> {
  using UnitBase::UnitBase;
};
struct Amps : detail::UnitBase<Amps> {
  using UnitBase::UnitBase;
};
struct Celsius : detail::UnitBase<Celsius> {
  using UnitBase::UnitBase;
};
struct Rpm : detail::UnitBase<Rpm> {
  using UnitBase::UnitBase;
};
struct Hertz : detail::UnitBase<Hertz> {
  using UnitBase::UnitBase;
};
struct Seconds : detail::UnitBase<Seconds> {
  using UnitBase::UnitBase;
};
struct Bytes : detail::UnitBase<Bytes> {
  using UnitBase::UnitBase;
};

// Physically meaningful cross-type products.
[[nodiscard]] constexpr Joules operator*(Watts p, Seconds t) { return Joules{p.value() * t.value()}; }
[[nodiscard]] constexpr Joules operator*(Seconds t, Watts p) { return p * t; }
[[nodiscard]] constexpr Watts operator/(Joules e, Seconds t) { return Watts{e.value() / t.value()}; }
[[nodiscard]] constexpr Watts operator*(Volts v, Amps i) { return Watts{v.value() * i.value()}; }
[[nodiscard]] constexpr Watts operator*(Amps i, Volts v) { return v * i; }
[[nodiscard]] constexpr Amps operator/(Watts p, Volts v) { return Amps{p.value() / v.value()}; }

[[nodiscard]] constexpr Bytes kibibytes(double n) { return Bytes{n * 1024.0}; }
[[nodiscard]] constexpr Bytes mebibytes(double n) { return Bytes{n * 1024.0 * 1024.0}; }
[[nodiscard]] constexpr Bytes gibibytes(double n) { return Bytes{n * 1024.0 * 1024.0 * 1024.0}; }
[[nodiscard]] constexpr Hertz megahertz(double n) { return Hertz{n * 1e6}; }
[[nodiscard]] constexpr Hertz gigahertz(double n) { return Hertz{n * 1e9}; }

inline std::ostream& operator<<(std::ostream& os, Watts w) { return os << w.value() << " W"; }
inline std::ostream& operator<<(std::ostream& os, Joules j) { return os << j.value() << " J"; }
inline std::ostream& operator<<(std::ostream& os, Volts v) { return os << v.value() << " V"; }
inline std::ostream& operator<<(std::ostream& os, Amps a) { return os << a.value() << " A"; }
inline std::ostream& operator<<(std::ostream& os, Celsius c) { return os << c.value() << " C"; }
inline std::ostream& operator<<(std::ostream& os, Rpm r) { return os << r.value() << " RPM"; }
inline std::ostream& operator<<(std::ostream& os, Hertz h) { return os << h.value() << " Hz"; }
inline std::ostream& operator<<(std::ostream& os, Seconds s) { return os << s.value() << " s"; }
inline std::ostream& operator<<(std::ostream& os, Bytes b) { return os << b.value() << " B"; }

}  // namespace envmon
