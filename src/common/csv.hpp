#pragma once
// CSV reading/writing.
//
// MonEQ's on-disk artifact is one CSV file per node (the paper, §III); the
// bench harness also emits its figure series as CSV so they can be plotted
// externally.  Quoting follows RFC 4180: fields containing the delimiter,
// quotes, or newlines are quoted, embedded quotes doubled.

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace envmon {

class CsvWriter {
 public:
  // The writer does not own the stream; it must outlive the writer.
  explicit CsvWriter(std::ostream& os, char delim = ',') : os_(&os), delim_(delim) {}

  void write_row(const std::vector<std::string>& fields);

  // Variadic convenience: accepts strings and arithmetic values.
  template <typename... Ts>
  void row(const Ts&... fields) {
    bool first = true;
    ((write_field(to_field(fields), first), first = false), ...);
    *os_ << '\n';
    ++rows_written_;
  }

  [[nodiscard]] std::size_t rows_written() const { return rows_written_; }

 private:
  static std::string to_field(const std::string& s) { return s; }
  static std::string to_field(std::string_view s) { return std::string(s); }
  static std::string to_field(const char* s) { return s; }
  template <typename T>
  static std::string to_field(const T& v) {
    return std::to_string(v);
  }

  void write_field(const std::string& field, bool first);

  std::ostream* os_;
  char delim_;
  std::size_t rows_written_ = 0;
};

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

// Parses CSV text (with RFC 4180 quoting).  First row becomes the header
// when `has_header` is true.
[[nodiscard]] Result<CsvTable> parse_csv(std::string_view text, bool has_header = true,
                                         char delim = ',');

}  // namespace envmon
