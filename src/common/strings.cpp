#include "common/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace envmon {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is not implemented in all libstdc++ versions;
  // strtod on a bounded copy is the portable fallback.
  std::string copy(s);
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return false;
  out = v;
  return true;
}

bool parse_u64(std::string_view s, unsigned long long& out) {
  s = trim(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

}  // namespace envmon
