#pragma once
// Small string utilities shared by the CSV layer, the MICRAS pseudo-file
// parser, and the table renderers.

#include <string>
#include <string_view>
#include <vector>

namespace envmon {

[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);
[[nodiscard]] std::string_view trim(std::string_view s);
[[nodiscard]] std::string to_lower(std::string_view s);
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

// join({"a","b"}, ",") -> "a,b"
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Fixed-precision double formatting ("%.3f"-style) without locale surprises.
[[nodiscard]] std::string format_double(double v, int precision);

// Parse helpers returning false on malformed input instead of throwing.
[[nodiscard]] bool parse_double(std::string_view s, double& out);
[[nodiscard]] bool parse_u64(std::string_view s, unsigned long long& out);

}  // namespace envmon
