#pragma once
// Minimal INI-style configuration parsing.
//
// Used by the scenario-runner example so experiments can be driven from
// a text file (workload choice, durations, polling intervals) without
// recompiling — the kind of knob file a facility's monitoring deployment
// actually ships with.
//
// Format: `[section]` headers, `key = value` pairs, `#` or `;` comments,
// blank lines ignored.  Keys are unique per section (later wins).

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace envmon {

class Config {
 public:
  // Parses INI text; fails on malformed section headers or lines that
  // are neither comments, blanks, sections, nor key=value.
  [[nodiscard]] static Result<Config> parse(std::string_view text);

  [[nodiscard]] bool has(std::string_view section, std::string_view key) const;
  [[nodiscard]] std::optional<std::string> get(std::string_view section,
                                               std::string_view key) const;

  // Typed getters with defaults; wrong-typed values produce an error.
  [[nodiscard]] Result<std::string> get_string(std::string_view section,
                                               std::string_view key,
                                               std::string default_value) const;
  [[nodiscard]] Result<double> get_double(std::string_view section, std::string_view key,
                                          double default_value) const;
  [[nodiscard]] Result<long long> get_int(std::string_view section, std::string_view key,
                                          long long default_value) const;
  [[nodiscard]] Result<bool> get_bool(std::string_view section, std::string_view key,
                                      bool default_value) const;

  [[nodiscard]] std::vector<std::string> sections() const;
  [[nodiscard]] std::size_t size() const;

 private:
  // section -> key -> value
  std::map<std::string, std::map<std::string, std::string>, std::less<>> data_;
};

}  // namespace envmon
