#pragma once
// Minimal leveled logger.  Defaults to warnings only so tests and benches
// stay quiet; examples turn on info to narrate the run.

#include <sstream>
#include <string_view>

namespace envmon {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_line(LogLevel level, std::string_view msg);
}

// Usage: ENVMON_LOG(kInfo) << "rack " << id << " powered on";
#define ENVMON_LOG(level_suffix)                                             \
  for (bool envmon_log_once =                                                \
           ::envmon::LogLevel::level_suffix >= ::envmon::log_level();        \
       envmon_log_once; envmon_log_once = false)                             \
  ::envmon::detail::LogStream(::envmon::LogLevel::level_suffix)

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, ss_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

}  // namespace detail
}  // namespace envmon
