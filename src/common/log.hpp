#pragma once
// Minimal leveled logger.  Defaults to warnings only so tests and benches
// stay quiet; examples turn on info to narrate the run.
//
// Two extension points:
//   - a pluggable sink, so tests capture and assert on log output
//     instead of it going to stderr unchecked;
//   - a virtual-time source (normally an engine's clock — see
//     sim::ScopedLogClock), so lines are stamped with simulation time
//     rather than nothing.

#include <functional>
#include <sstream>
#include <string_view>

namespace envmon {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

// Receives every emitted line, fully formatted ("[INFO ] [t=3.500s] msg",
// no trailing newline).  A null sink restores the stderr default.
using LogSink = std::function<void(LogLevel, std::string_view)>;
void set_log_sink(LogSink sink);

// Returns current virtual time in seconds; when set, lines gain a
// `[t=...s]` stamp.  Null clears it.
using LogTimeSource = std::function<double()>;
void set_log_time_source(LogTimeSource source);

namespace detail {
void log_line(LogLevel level, std::string_view msg);
}

// Usage: ENVMON_LOG(kInfo) << "rack " << id << " powered on";
#define ENVMON_LOG(level_suffix)                                             \
  for (bool envmon_log_once =                                                \
           ::envmon::LogLevel::level_suffix >= ::envmon::log_level();        \
       envmon_log_once; envmon_log_once = false)                             \
  ::envmon::detail::LogStream(::envmon::LogLevel::level_suffix)

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, ss_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

}  // namespace detail
}  // namespace envmon
