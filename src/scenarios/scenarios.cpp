#include "scenarios/scenarios.hpp"

#include <map>

#include "analysis/series_ops.hpp"
#include "bgq/emon.hpp"
#include "bgq/env_monitor.hpp"
#include "bgq/machine.hpp"
#include "ipmi/bmc.hpp"
#include "mic/card.hpp"
#include "mic/micras.hpp"
#include "mic/smc.hpp"
#include "mic/sysmgmt.hpp"
#include "moneq/backend_bgq.hpp"
#include "moneq/backend_mic.hpp"
#include "moneq/backend_nvml.hpp"
#include "moneq/backend_rapl.hpp"
#include "nvml/api.hpp"
#include "rapl/reader.hpp"
#include "tsdb/database.hpp"
#include "workloads/library.hpp"

namespace envmon::scenarios {

namespace {

// Throws on failure: scenario assembly errors are programming errors in
// the harness, not conditions a bench should handle.
void check(const Status& s, const char* what) {
  if (!s.is_ok()) throw std::runtime_error(std::string(what) + ": " + s.to_string());
}

}  // namespace

BgqRunResult run_bgq_mmps(const BgqMmpsOptions& options) {
  sim::Engine engine;
  bgq::BgqMachine machine;  // one rack
  tsdb::EnvDatabase db;

  auto monitor =
      bgq::EnvMonitor::create(engine, machine, db,
                              bgq::EnvMonitorOptions{options.env_poll_interval, 0x1234, false});
  if (!monitor.is_ok()) throw std::runtime_error(monitor.status().to_string());
  monitor.value()->start();

  // The job starts after an idle margin (so Fig 1 shows the idle floor).
  const auto workload = workloads::mmps({options.job_duration, 6});
  const sim::SimTime job_start = sim::SimTime::zero() + options.idle_margin;
  machine.run_workload(&workload, job_start, 0, options.job_boards);

  // MonEQ profiles one node board, job time only (it runs with the job).
  bgq::EmonSession emon(machine.board(0));
  moneq::BgqBackend backend(emon);
  smpi::World world(32);  // one rank per node of the board
  moneq::NodeProfiler profiler(engine, world, 0);
  check(profiler.add_backend(backend), "add_backend");
  check(profiler.set_polling_interval(options.moneq_interval), "set_polling_interval");

  engine.run_until(job_start);
  check(profiler.initialize(), "MonEQ_Initialize");
  engine.run_until(job_start + options.job_duration);
  smpi::FileSystemModel fs;
  check(profiler.finalize(&fs, nullptr), "MonEQ_Finalize");

  // Let the environmental monitor record the idle tail as well.
  engine.run_until(job_start + options.job_duration + options.idle_margin);

  BgqRunResult result;
  result.job_duration = options.job_duration;
  result.moneq_overhead = profiler.overhead();

  for (const auto& rec : db.query({std::nullopt, std::string(bgq::kMetricBpmInputPower),
                                   std::nullopt, std::nullopt})) {
    result.bpm_input_power.push_back(TracePoint{rec.timestamp, rec.value});
  }

  // Regroup MonEQ's samples into per-domain power series, relative to
  // the job start (Fig 2's x-axis is seconds since launch).
  std::map<std::string, std::vector<TracePoint>> by_domain;
  for (const auto& s : profiler.samples()) {
    if (s.quantity != moneq::Quantity::kPowerWatts) continue;
    by_domain[s.domain].push_back(
        TracePoint{sim::SimTime::zero() + (s.t - job_start), s.value});
  }
  for (auto& [name, points] : by_domain) {
    result.moneq_domains.push_back(DomainSeries{name, std::move(points)});
  }
  return result;
}

MoneqOverheadRow run_moneq_overhead(int nodes, sim::Duration app_runtime) {
  sim::Engine engine;
  bgq::Topology topo;
  topo.racks = std::max(1, nodes / 1024);
  bgq::BgqMachine machine(topo);

  // The toy application runs for the same wall time at every scale.
  const auto workload = workloads::dgemm({app_runtime, 0.9, 0.5});
  machine.run_workload(&workload, engine.now());

  bgq::EmonSession emon(machine.board(0));
  moneq::BgqBackend backend(emon);
  smpi::World world(nodes);
  moneq::NodeProfiler profiler(engine, world, 0);
  check(profiler.add_backend(backend), "add_backend");
  // Most frequent interval possible on BG/Q: the 560 ms EMON generation.
  check(profiler.initialize(), "MonEQ_Initialize");
  engine.run_until(engine.now() + app_runtime);
  smpi::FileSystemModel fs;
  check(profiler.finalize(&fs, nullptr), "MonEQ_Finalize");

  const auto report = profiler.overhead();
  MoneqOverheadRow row;
  row.nodes = nodes;
  row.app_runtime_s = app_runtime.to_seconds();
  row.init_s = report.initialize.to_seconds();
  row.finalize_s = report.finalize.to_seconds();
  row.collection_s = report.collection.to_seconds();
  row.total_s = report.total().to_seconds();
  return row;
}

RaplGaussResult run_rapl_gauss(const RaplGaussOptions& options) {
  sim::Engine engine;
  rapl::CpuPackage package(engine);
  const auto workload = workloads::gaussian_elimination({options.workload,
                                                         sim::Duration::from_seconds(3.0),
                                                         sim::Duration::from_seconds(0.5),
                                                         sim::Duration::from_seconds(0.15),
                                                         0.14});
  package.run_workload(&workload, sim::SimTime::zero() + options.idle_lead);

  rapl::MsrRaplReader reader(package, rapl::Credentials{true, 0});
  rapl::EnergyAccountant pkg_energy(package.config().units.joules_per_unit());

  RaplGaussResult result;
  const sim::SimTime end =
      sim::SimTime::zero() + options.idle_lead + options.workload + options.idle_tail;
  std::optional<sim::SimTime> last_t;
  sim::TimerHandle timer = engine.schedule_periodic(options.sampling, [&] {
    const sim::SimTime now = engine.now();
    auto sample = reader.read_energy(rapl::RaplDomain::kPackage, now);
    if (!sample) return;
    const Joules delta = pkg_energy.advance(sample.value().raw);
    if (last_t) {
      const double dt = (now - *last_t).to_seconds();
      if (dt > 0.0) {
        result.pkg_power.push_back(TracePoint{now, delta.value() / dt});
      }
    }
    last_t = now;
  });
  engine.run_until(end);
  timer.cancel();

  result.mean_query_cost_ms = reader.cost().mean_per_query().to_millis();
  return result;
}

namespace {

NvmlRunResult run_nvml_profile(const power::UtilizationProfile& workload,
                               sim::Duration total) {
  sim::Engine engine;
  nvml::NvmlLibrary library(engine);
  library.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  if (library.init() != nvml::NvmlReturn::kSuccess) {
    throw std::runtime_error("nvmlInit failed");
  }
  nvml::NvmlDeviceHandle handle;
  if (library.device_get_handle_by_index(0, &handle) != nvml::NvmlReturn::kSuccess) {
    throw std::runtime_error("nvmlDeviceGetHandleByIndex failed");
  }
  library.device_for_testing(0)->run_workload(&workload, sim::SimTime::zero());

  NvmlRunResult result;
  sim::TimerHandle timer =
      engine.schedule_periodic(sim::Duration::millis(100), [&] {  // Fig 4/5 capture rate
        unsigned mw = 0;
        if (library.device_get_power_usage(handle, &mw) == nvml::NvmlReturn::kSuccess) {
          result.board_power.push_back(
              TracePoint{engine.now(), static_cast<double>(mw) / 1000.0});
        }
        unsigned celsius = 0;
        if (library.device_get_temperature(handle, nvml::TemperatureSensor::kGpuDie,
                                           &celsius) == nvml::NvmlReturn::kSuccess) {
          result.die_temp.push_back(TracePoint{engine.now(), static_cast<double>(celsius)});
        }
      });
  engine.run_until(sim::SimTime::zero() + total);
  timer.cancel();
  result.mean_query_cost_ms = library.cost().mean_per_query().to_millis();
  return result;
}

}  // namespace

NvmlRunResult run_nvml_noop(sim::Duration total) {
  const auto workload = workloads::gpu_noop({total});
  return run_nvml_profile(workload, total);
}

NvmlRunResult run_nvml_vecadd(sim::Duration compute) {
  workloads::GpuVectorAddOptions options;
  options.compute = compute;
  const auto workload = workloads::gpu_vector_add(options);
  return run_nvml_profile(workload, workload.total_duration() + sim::Duration::seconds(2));
}

PhiNoopResult run_phi_noop(PhiCollector collector, sim::Duration total,
                           sim::Duration interval) {
  sim::Engine engine;
  mic::PhiCard card(engine);
  const auto workload = workloads::noop_busyloop(total);
  card.run_workload(&workload, sim::SimTime::zero());

  PhiNoopResult result;
  sim::CostMeter meter;

  mic::ScifNetwork network;
  const mic::ScifNodeId card_node = 1;
  mic::SysMgmtService service(card, network, card_node);
  mic::MicrasDaemon daemon(card);
  daemon.start();
  ipmi::Bmc bmc;
  mic::Smc smc(card);
  smc.attach_to_bmc(bmc);
  ipmi::IpmbClient ipmb(bmc, 0x81);

  std::optional<mic::SysMgmtClient> api_client;
  if (collector == PhiCollector::kInbandApi) {
    auto client = mic::SysMgmtClient::connect(network, card_node);
    if (!client.is_ok()) throw std::runtime_error(client.status().to_string());
    api_client.emplace(std::move(client).value());
  }

  sim::TimerHandle timer = engine.schedule_periodic(interval, [&] {
    switch (collector) {
      case PhiCollector::kInbandApi: {
        if (auto p = api_client->power(engine.now()); p) {
          result.power_samples.push_back(p.value().value());
        }
        break;
      }
      case PhiCollector::kMicrasDaemon: {
        if (auto text = daemon.read_file(mic::kPowerFile, engine.now(), &meter); text) {
          if (auto p = mic::parse_power_file(text.value()); p) {
            result.power_samples.push_back(p.value().total.value());
          }
        }
        break;
      }
      case PhiCollector::kOutOfBandIpmb: {
        if (auto p = ipmb.read_sensor(smc, mic::kSmcSensorPower); p) {
          result.power_samples.push_back(p.value());
        }
        break;
      }
    }
  });
  // Skip the initial warm-up so the distribution reflects steady state.
  engine.run_until(sim::SimTime::zero() + sim::Duration::seconds(5));
  result.power_samples.clear();
  engine.run_until(sim::SimTime::zero() + total);
  timer.cancel();

  if (collector == PhiCollector::kInbandApi && api_client) {
    result.mean_query_cost_ms = api_client->cost().mean_per_query().to_millis();
  } else if (collector == PhiCollector::kMicrasDaemon) {
    result.mean_query_cost_ms = meter.mean_per_query().to_millis();
  }
  return result;
}

PhiStampedeResult run_phi_stampede_gauss(int cards) {
  sim::Engine engine;
  const auto workload = workloads::offload_gauss({});
  const sim::Duration total = workload.total_duration();

  std::vector<std::unique_ptr<mic::PhiCard>> fleet;
  std::vector<std::unique_ptr<mic::MicrasDaemon>> daemons;
  fleet.reserve(static_cast<std::size_t>(cards));
  for (int i = 0; i < cards; ++i) {
    mic::PhiPowerConfig config;
    // Stampede's cards idle in a deeper package state while the hosts
    // generate data; per-card seeds decorrelate sensor noise.
    config.cores = power::RailModel{Watts{32.0}, Watts{150.0}, Volts{1.0}};
    config.seed = 0x9d11u + static_cast<std::uint64_t>(i) * 7919u;
    auto card = std::make_unique<mic::PhiCard>(engine, mic::PhiSpec{}, config);
    card->run_workload(&workload, sim::SimTime::zero());
    daemons.push_back(std::make_unique<mic::MicrasDaemon>(*card));
    daemons.back()->start();
    fleet.push_back(std::move(card));
  }

  std::vector<std::vector<TracePoint>> per_card(fleet.size());
  sim::TimerHandle timer = engine.schedule_periodic(sim::Duration::millis(500), [&] {
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      if (auto text = daemons[i]->read_file(mic::kPowerFile, engine.now()); text) {
        if (auto p = mic::parse_power_file(text.value()); p) {
          per_card[i].push_back(TracePoint{engine.now(), p.value().total.value()});
        }
      }
    }
  });
  engine.run_until(sim::SimTime::zero() + total);
  timer.cancel();

  PhiStampedeResult result;
  result.cards = cards;
  result.sum_power = analysis::sum_series(per_card);
  return result;
}

}  // namespace envmon::scenarios
