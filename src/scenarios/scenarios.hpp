#pragma once
// End-to-end experiment assemblies.
//
// Each function stands up one of the paper's measurement scenarios on
// the simulated substrate and returns the resulting series/reports.
// The bench harness renders them as the corresponding table or figure;
// the integration tests assert their shapes; the examples narrate them.

#include <string>
#include <vector>

#include "moneq/profiler.hpp"
#include "sim/trace.hpp"

namespace envmon::scenarios {

using sim::TracePoint;

// ---------------------------------------------------------------- BG/Q --

struct BgqMmpsOptions {
  sim::Duration job_duration = sim::Duration::seconds(1500);
  sim::Duration idle_margin = sim::Duration::seconds(300);
  sim::Duration env_poll_interval = sim::Duration::seconds(302);
  sim::Duration moneq_interval = sim::Duration::millis(560);
  // How many node boards the job occupies (SIZE_MAX = the whole rack).
  // MonEQ always profiles board 0, which must be inside the job.
  std::size_t job_boards = SIZE_MAX;
};

struct DomainSeries {
  std::string name;
  std::vector<TracePoint> points;
};

struct BgqRunResult {
  std::vector<TracePoint> bpm_input_power;       // env DB view (Fig 1)
  std::vector<DomainSeries> moneq_domains;       // EMON/MonEQ view (Fig 2)
  moneq::OverheadReport moneq_overhead;
  sim::Duration job_duration;
};

[[nodiscard]] BgqRunResult run_bgq_mmps(const BgqMmpsOptions& options = {});

// Table III: the fixed-runtime toy application at several scales.
struct MoneqOverheadRow {
  int nodes = 0;
  double app_runtime_s = 0.0;
  double init_s = 0.0;
  double finalize_s = 0.0;
  double collection_s = 0.0;
  double total_s = 0.0;
};
[[nodiscard]] MoneqOverheadRow run_moneq_overhead(int nodes,
                                                  sim::Duration app_runtime =
                                                      sim::Duration::from_seconds(202.74));

// ---------------------------------------------------------------- RAPL --

struct RaplGaussOptions {
  sim::Duration idle_lead = sim::Duration::seconds(8);
  sim::Duration workload = sim::Duration::seconds(50);
  sim::Duration idle_tail = sim::Duration::seconds(10);
  sim::Duration sampling = sim::Duration::millis(100);  // Fig 3's capture rate
};

struct RaplGaussResult {
  std::vector<TracePoint> pkg_power;  // Fig 3
  double mean_query_cost_ms = 0.0;
};
[[nodiscard]] RaplGaussResult run_rapl_gauss(const RaplGaussOptions& options = {});

// ---------------------------------------------------------------- NVML --

struct NvmlRunResult {
  std::vector<TracePoint> board_power;  // Figs 4/5
  std::vector<TracePoint> die_temp;     // Fig 5 right axis
  double mean_query_cost_ms = 0.0;
};

// Fig 4: NOOP kernels on a K20, sampled at 100 ms.
[[nodiscard]] NvmlRunResult run_nvml_noop(sim::Duration total = sim::Duration::from_seconds(12.5));

// Fig 5: vector add (10 s host generation, transfer, long compute).
[[nodiscard]] NvmlRunResult run_nvml_vecadd(sim::Duration compute = sim::Duration::seconds(88));

// ----------------------------------------------------------------- Phi --

enum class PhiCollector { kInbandApi, kMicrasDaemon, kOutOfBandIpmb };

struct PhiNoopResult {
  std::vector<double> power_samples;  // Fig 7 distribution
  double mean_query_cost_ms = 0.0;
};
[[nodiscard]] PhiNoopResult run_phi_noop(PhiCollector collector,
                                         sim::Duration total = sim::Duration::seconds(120),
                                         sim::Duration interval = sim::Duration::millis(500));

// Fig 8: Gaussian elimination offloaded to `cards` Xeon Phis; returns the
// summed card power.
struct PhiStampedeResult {
  std::vector<TracePoint> sum_power;
  int cards = 0;
};
[[nodiscard]] PhiStampedeResult run_phi_stampede_gauss(int cards = 128);

}  // namespace envmon::scenarios
