#include "power/thermal.hpp"

#include <cmath>

namespace envmon::power {

Celsius ThermalModel::step(sim::SimTime t, Watts dissipated) {
  if (!started_) {
    // First observation: integrate from the epoch assuming the current
    // dissipation held, so a late observer sees the accumulated history
    // rather than the cold-start temperature.
    started_ = true;
    last_t_ = sim::SimTime::zero();
  }
  const double dt = (t - last_t_).to_seconds();
  last_t_ = t;
  if (dt <= 0.0) return temp_;
  const double tau = options_.resistance_c_per_w * options_.capacity_j_per_c;
  const Celsius target = steady_state(dissipated);
  const double alpha = 1.0 - std::exp(-dt / tau);
  temp_ += Celsius{alpha * (target.value() - temp_.value())};
  return temp_;
}

}  // namespace envmon::power
