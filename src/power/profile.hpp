#pragma once
// Piecewise-constant utilization profiles.
//
// A workload is modeled as a sequence of phases; within a phase each rail
// has a constant utilization in [0, 1].  Piecewise-constant utilization
// makes energy integration exact (RAPL's energy-status registers integrate
// true power; we must not accumulate numerical drift over a 200 s run).

#include <initializer_list>
#include <utility>
#include <vector>

#include "power/rail.hpp"
#include "sim/time.hpp"

namespace envmon::power {

struct Phase {
  sim::Duration duration;
  RailTable<double> util{};  // zero-initialized: idle
  // Optional label for tagging/tracing (e.g. "datagen", "compute").
  const char* label = "";
};

class UtilizationProfile {
 public:
  UtilizationProfile() = default;
  explicit UtilizationProfile(std::vector<Phase> phases);

  // Utilization of `rail` at absolute profile time t (t=0 is profile
  // start).  Outside [0, total_duration) every rail reads 0 (idle).
  [[nodiscard]] double util(Rail rail, sim::Duration t) const;

  // Exact mean utilization over [t0, t1) — the analytic integral divided
  // by the interval, used for energy accounting.
  [[nodiscard]] double mean_util(Rail rail, sim::Duration t0, sim::Duration t1) const;

  [[nodiscard]] const Phase* phase_at(sim::Duration t) const;
  [[nodiscard]] sim::Duration total_duration() const { return total_; }
  [[nodiscard]] const std::vector<Phase>& phases() const { return phases_; }
  [[nodiscard]] bool empty() const { return phases_.empty(); }

 private:
  std::vector<Phase> phases_;
  std::vector<sim::Duration> starts_;  // phase start offsets, ascending
  sim::Duration total_;
};

// Fluent builder so workload definitions read like the paper's
// descriptions ("data generation for ~100 s, then compute").
class ProfileBuilder {
 public:
  ProfileBuilder& phase(sim::Duration duration, const char* label,
                        std::initializer_list<std::pair<Rail, double>> utils);
  // Repeats the previous `count` phases `times` additional times.
  ProfileBuilder& repeat_last(std::size_t count, std::size_t times);

  [[nodiscard]] UtilizationProfile build() &&;

 private:
  std::vector<Phase> phases_;
};

}  // namespace envmon::power
