#include "power/sensor.hpp"

#include <algorithm>
#include <cmath>

namespace envmon::power {

double SensorPipeline::slew(sim::SimTime t, double x) {
  if (!options_.slew_tau) return x;
  if (!last_slew_t_) {
    // First observation: assume the device has been at x long enough.
    slew_value_ = x;
    last_slew_t_ = t;
    return slew_value_;
  }
  const double dt = (t - *last_slew_t_).to_seconds();
  const double tau = options_.slew_tau->to_seconds();
  if (dt > 0.0 && tau > 0.0) {
    const double alpha = 1.0 - std::exp(-dt / tau);
    slew_value_ += alpha * (x - slew_value_);
  }
  last_slew_t_ = t;
  return slew_value_;
}

double SensorPipeline::hold(sim::SimTime t, double x) {
  if (!options_.update_period) return x;
  const auto period = *options_.update_period;
  if (!next_refresh_) {
    // Sensor refreshes for the first time at the first sampling instant.
    held_value_ = x;
    last_refresh_ = t;
    next_refresh_ = t + period;
    return held_value_;
  }
  // Catch up on any refresh instants that have passed.  The refreshed
  // value is the (slewed) input at sampling time; with refresh periods
  // far below workload phase lengths this is indistinguishable from
  // evaluating at the exact refresh instant, and keeps the pipeline pull-
  // based.
  while (*next_refresh_ <= t) {
    held_value_ = x;
    last_refresh_ = *next_refresh_;
    sim::Duration jitter{};
    if (options_.update_jitter.ns() > 0) {
      const auto half = options_.update_jitter.ns();
      jitter = sim::Duration::nanos(
          static_cast<std::int64_t>(rng_.uniform(-static_cast<double>(half),
                                                 static_cast<double>(half))));
    }
    *next_refresh_ = *next_refresh_ + period + jitter;
  }
  return held_value_;
}

double SensorPipeline::degrade(double x) {
  if (options_.noise_sigma > 0.0) x += rng_.normal(0.0, options_.noise_sigma);
  if (options_.quantum > 0.0) x = std::round(x / options_.quantum) * options_.quantum;
  if (options_.min_value) x = std::max(x, *options_.min_value);
  if (options_.max_value) x = std::min(x, *options_.max_value);
  return x;
}

double SensorPipeline::sample(sim::SimTime t, double true_value) {
  return degrade(hold(t, slew(t, true_value)));
}

void SensorPipeline::reset() {
  last_slew_t_.reset();
  slew_value_ = 0.0;
  next_refresh_.reset();
  last_refresh_.reset();
  held_value_ = 0.0;
}

}  // namespace envmon::power
