#include "power/profile.hpp"

#include <algorithm>
#include <stdexcept>

namespace envmon::power {

UtilizationProfile::UtilizationProfile(std::vector<Phase> phases) : phases_(std::move(phases)) {
  starts_.reserve(phases_.size());
  sim::Duration t{};
  for (const auto& p : phases_) {
    if (p.duration.ns() <= 0) {
      throw std::invalid_argument("UtilizationProfile: phase duration must be positive");
    }
    for (const double u : p.util) {
      if (u < 0.0 || u > 1.0) {
        throw std::invalid_argument("UtilizationProfile: utilization outside [0,1]");
      }
    }
    starts_.push_back(t);
    t += p.duration;
  }
  total_ = t;
}

const Phase* UtilizationProfile::phase_at(sim::Duration t) const {
  if (phases_.empty() || t.ns() < 0 || t >= total_) return nullptr;
  // Last phase whose start is <= t.
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), t);
  const auto idx = static_cast<std::size_t>(std::distance(starts_.begin(), it)) - 1;
  return &phases_[idx];
}

double UtilizationProfile::util(Rail rail, sim::Duration t) const {
  const Phase* p = phase_at(t);
  return p == nullptr ? 0.0 : p->util[rail_index(rail)];
}

double UtilizationProfile::mean_util(Rail rail, sim::Duration t0, sim::Duration t1) const {
  if (t1 <= t0) return 0.0;
  // Clamp the integration range to the profile; outside it util is 0.
  const sim::Duration lo = std::max(t0, sim::Duration{});
  const sim::Duration hi = std::min(t1, total_);
  double integral_ns = 0.0;  // util * ns
  if (lo < hi && !phases_.empty()) {
    auto it = std::upper_bound(starts_.begin(), starts_.end(), lo);
    auto idx = static_cast<std::size_t>(std::distance(starts_.begin(), it)) - 1;
    sim::Duration cursor = lo;
    while (cursor < hi && idx < phases_.size()) {
      const sim::Duration phase_end = starts_[idx] + phases_[idx].duration;
      const sim::Duration seg_end = std::min(phase_end, hi);
      integral_ns += phases_[idx].util[rail_index(rail)] *
                     static_cast<double>((seg_end - cursor).ns());
      cursor = seg_end;
      ++idx;
    }
  }
  return integral_ns / static_cast<double>((t1 - t0).ns());
}

ProfileBuilder& ProfileBuilder::phase(sim::Duration duration, const char* label,
                                      std::initializer_list<std::pair<Rail, double>> utils) {
  Phase p;
  p.duration = duration;
  p.label = label;
  for (const auto& [rail, u] : utils) p.util[rail_index(rail)] = u;
  phases_.push_back(p);
  return *this;
}

ProfileBuilder& ProfileBuilder::repeat_last(std::size_t count, std::size_t times) {
  if (count == 0 || count > phases_.size()) {
    throw std::invalid_argument("ProfileBuilder::repeat_last: bad count");
  }
  const std::size_t begin = phases_.size() - count;
  for (std::size_t rep = 0; rep < times; ++rep) {
    for (std::size_t i = 0; i < count; ++i) phases_.push_back(phases_[begin + i]);
  }
  return *this;
}

UtilizationProfile ProfileBuilder::build() && { return UtilizationProfile(std::move(phases_)); }

}  // namespace envmon::power
