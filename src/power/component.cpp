#include "power/component.hpp"

namespace envmon::power {

double DevicePowerModel::util_at(Rail rail, sim::SimTime t) const {
  if (profile_ == nullptr) return 0.0;
  return profile_->util(rail, t - workload_start_);
}

Watts DevicePowerModel::rail_power_at(Rail rail, sim::SimTime t) const {
  return rails_[rail_index(rail)].at_util(util_at(rail, t));
}

Watts DevicePowerModel::total_power_at(sim::SimTime t) const {
  Watts total{0.0};
  for (const Rail r : kAllRails) total += rail_power_at(r, t);
  return total;
}

Joules DevicePowerModel::rail_energy_between(Rail rail, sim::SimTime t0, sim::SimTime t1) const {
  if (t1 <= t0) return Joules{0.0};
  const Seconds dt{(t1 - t0).to_seconds()};
  const RailModel& m = rails_[rail_index(rail)];
  double mean_u = 0.0;
  if (profile_ != nullptr) {
    mean_u = profile_->mean_util(rail, t0 - workload_start_, t1 - workload_start_);
  }
  return m.at_util(mean_u) * dt;
}

Joules DevicePowerModel::total_energy_between(sim::SimTime t0, sim::SimTime t1) const {
  Joules total{0.0};
  for (const Rail r : kAllRails) total += rail_energy_between(r, t0, t1);
  return total;
}

Amps DevicePowerModel::rail_current_at(Rail rail, sim::SimTime t) const {
  const Volts v = rail_voltage(rail);
  if (v.value() <= 0.0) return Amps{0.0};
  return rail_power_at(rail, t) / v;
}

}  // namespace envmon::power
