#pragma once
// Component (rail) power models and the device-level power source.
//
// Each rail draws idle_watts + utilization * dynamic_watts; a device's
// true power is the sum over its rails driven by a workload profile.
// True power is what the physical sensors observe; every vendor mechanism
// then degrades it differently (see sensor.hpp).

#include <optional>

#include "common/units.hpp"
#include "power/profile.hpp"
#include "power/rail.hpp"
#include "sim/time.hpp"

namespace envmon::power {

struct RailModel {
  Watts idle{0.0};
  Watts dynamic{0.0};  // additional draw at utilization 1.0
  Volts nominal_voltage{0.0};

  [[nodiscard]] Watts at_util(double u) const { return idle + dynamic * u; }
};

// A device: a set of rail models plus an attached workload profile that
// starts at some simulation time.  True power is exact and analytic.
class DevicePowerModel {
 public:
  void set_rail(Rail rail, RailModel model) { rails_[rail_index(rail)] = model; }
  [[nodiscard]] const RailModel& rail(Rail r) const { return rails_[rail_index(r)]; }

  // Attach a workload starting at `start`.  Replaces any previous one.
  void run_workload(const UtilizationProfile* profile, sim::SimTime start) {
    profile_ = profile;
    workload_start_ = start;
  }
  [[nodiscard]] bool has_workload() const { return profile_ != nullptr; }
  [[nodiscard]] sim::SimTime workload_start() const { return workload_start_; }
  [[nodiscard]] const UtilizationProfile* workload() const { return profile_; }

  // Utilization of a rail at absolute sim time t (0 when no workload).
  [[nodiscard]] double util_at(Rail rail, sim::SimTime t) const;

  // Instantaneous true power of one rail / the whole device.
  [[nodiscard]] Watts rail_power_at(Rail rail, sim::SimTime t) const;
  [[nodiscard]] Watts total_power_at(sim::SimTime t) const;

  // Exact energy over [t0, t1) — piecewise-constant integration.
  [[nodiscard]] Joules rail_energy_between(Rail rail, sim::SimTime t0, sim::SimTime t1) const;
  [[nodiscard]] Joules total_energy_between(sim::SimTime t0, sim::SimTime t1) const;

  // Nominal voltage/current view of a rail (current = power / voltage),
  // which is the raw form MonEQ reads from BG/Q domains (paper §II-A).
  [[nodiscard]] Volts rail_voltage(Rail rail) const { return rails_[rail_index(rail)].nominal_voltage; }
  [[nodiscard]] Amps rail_current_at(Rail rail, sim::SimTime t) const;

 private:
  RailTable<RailModel> rails_{};
  const UtilizationProfile* profile_ = nullptr;
  sim::SimTime workload_start_;
};

}  // namespace envmon::power
