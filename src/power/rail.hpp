#pragma once
// Power rails: the component classes whose draw the vendor mechanisms
// expose.  The union of what Table I lists across platforms — BG/Q's seven
// domains, RAPL's package/cores/uncore/DRAM planes, a GPU board's
// core/memory split, a Phi card's core/memory/board rails.

#include <array>
#include <cstdint>
#include <string_view>

namespace envmon::power {

enum class Rail : std::uint8_t {
  kCpuCore = 0,  // chip core / PP0 / GPU SMs / Phi cores
  kDram,         // main memory (DDR/GDDR)
  kNetwork,      // HSS network (BG/Q)
  kLink,         // link chip core (BG/Q)
  kOptics,       // optical modules (BG/Q)
  kPcie,         // PCI Express interface
  kSram,         // on-chip SRAM (BG/Q)
  kUncore,       // RAPL PP1 / uncore plane
  kBoard,        // everything else on the board (VRs, fans, misc logic)
};

inline constexpr std::size_t kRailCount = 9;

inline constexpr std::array<Rail, kRailCount> kAllRails = {
    Rail::kCpuCore, Rail::kDram, Rail::kNetwork, Rail::kLink, Rail::kOptics,
    Rail::kPcie,    Rail::kSram, Rail::kUncore,  Rail::kBoard,
};

[[nodiscard]] constexpr std::string_view to_string(Rail r) {
  switch (r) {
    case Rail::kCpuCore: return "cpu_core";
    case Rail::kDram: return "dram";
    case Rail::kNetwork: return "network";
    case Rail::kLink: return "link";
    case Rail::kOptics: return "optics";
    case Rail::kPcie: return "pcie";
    case Rail::kSram: return "sram";
    case Rail::kUncore: return "uncore";
    case Rail::kBoard: return "board";
  }
  return "unknown";
}

[[nodiscard]] constexpr std::size_t rail_index(Rail r) { return static_cast<std::size_t>(r); }

// Fixed-size per-rail value table; cheaper and clearer than a map in the
// hot sampling path (Core Guidelines Per.16: use compact data structures).
template <typename T>
using RailTable = std::array<T, kRailCount>;

}  // namespace envmon::power
