#pragma once
// First-order thermal RC model.
//
// Fig 5 of the paper shows GPU die temperature climbing steadily while the
// vector-add kernel runs.  A single RC node — ambient temperature, thermal
// resistance (C/W) to ambient, heat capacity (J/C) — reproduces exactly
// that shape: exponential approach to T_ambient + R * P.

#include "common/units.hpp"
#include "sim/time.hpp"

namespace envmon::power {

struct ThermalOptions {
  Celsius ambient{25.0};
  double resistance_c_per_w = 0.25;  // steady-state rise per watt
  double capacity_j_per_c = 400.0;   // thermal mass
  Celsius initial{25.0};
};

class ThermalModel {
 public:
  explicit ThermalModel(ThermalOptions options)
      : options_(options), temp_(options.initial) {}

  // Advances the model assuming constant dissipation `power` over the
  // interval since the last step (exact solution of the RC ODE).
  Celsius step(sim::SimTime t, Watts dissipated);

  [[nodiscard]] Celsius temperature() const { return temp_; }
  [[nodiscard]] Celsius steady_state(Watts p) const {
    return options_.ambient + Celsius{options_.resistance_c_per_w * p.value()};
  }

 private:
  ThermalOptions options_;
  Celsius temp_;
  bool started_ = false;
  sim::SimTime last_t_;
};

}  // namespace envmon::power
