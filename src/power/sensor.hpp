#pragma once
// The sensor pipeline: how each vendor mechanism degrades true power.
//
// The paper's per-platform observations map onto four orthogonal effects:
//   * slew      — the measured quantity approaches the true value with a
//                 time constant (the ~5 s ramp NVML shows on the K20 when
//                 a kernel starts, Fig 4);
//   * hold      — the sensor refreshes on its own schedule and reads
//                 return the last refreshed value (RAPL updates every
//                 ~1 ms with +/-50k-cycle jitter; NVML ~60 ms; EMON
//                 returns "the oldest generation of power data");
//   * noise     — additive measurement noise;
//   * quantize  — finite reporting resolution (NVML reports milliwatts
//                 but is only accurate to +/-5 W; RAPL counts in 15.26 uJ
//                 units).
//
// A SensorPipeline composes these stages in a fixed order
// (slew -> hold -> noise -> quantize -> clamp); stages not configured are
// skipped.  Pipelines are stateful (slew memory, hold schedule) and must
// be sampled with non-decreasing timestamps.

#include <optional>

#include "common/rng.hpp"
#include "sim/time.hpp"

namespace envmon::power {

struct SensorOptions {
  // First-order low-pass time constant; nullopt = track instantly.
  std::optional<sim::Duration> slew_tau;
  // Refresh period of the sensor's internal value; nullopt = continuous.
  std::optional<sim::Duration> update_period;
  // Uniform jitter applied to each refresh instant (+/- jitter).
  sim::Duration update_jitter{};
  // Gaussian noise sigma, in the measured unit.
  double noise_sigma = 0.0;
  // Reporting resolution; values are rounded to a multiple of this.
  double quantum = 0.0;
  // Physical clamp.
  std::optional<double> min_value;
  std::optional<double> max_value;
};

class SensorPipeline {
 public:
  SensorPipeline(SensorOptions options, Rng rng)
      : options_(options), rng_(rng) {}

  // Samples the sensor at time t given the instantaneous true value.
  // t must be non-decreasing across calls.
  double sample(sim::SimTime t, double true_value);

  // Exposes when the held value was last refreshed (age of the data) —
  // the paper cares about staleness explicitly.
  [[nodiscard]] std::optional<sim::SimTime> last_refresh() const { return last_refresh_; }

  void reset();

 private:
  double slew(sim::SimTime t, double x);
  double hold(sim::SimTime t, double x);
  double degrade(double x);  // noise + quantize + clamp

  SensorOptions options_;
  Rng rng_;

  // Slew state.
  std::optional<sim::SimTime> last_slew_t_;
  double slew_value_ = 0.0;

  // Hold state.
  std::optional<sim::SimTime> next_refresh_;
  std::optional<sim::SimTime> last_refresh_;
  double held_value_ = 0.0;
};

}  // namespace envmon::power
