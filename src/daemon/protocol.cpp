#include "daemon/protocol.hpp"

#include "tsdb/checksum.hpp"

namespace envmon::daemon {

namespace wire = tsdb::wire;

std::vector<std::uint8_t> frame(std::span<const std::uint8_t> payload) {
  wire::Writer w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(tsdb::crc32c(payload));
  w.bytes(payload);
  return w.take();
}

FrameHeader decode_frame_header(std::span<const std::uint8_t> hdr) {
  wire::Reader r(hdr);
  FrameHeader h;
  h.payload_len = r.u32();
  h.crc = r.u32();
  return h;
}

bool frame_payload_ok(const FrameHeader& h, std::span<const std::uint8_t> payload) {
  return payload.size() == h.payload_len && tsdb::crc32c(payload) == h.crc;
}

std::vector<std::uint8_t> encode_hello(const Hello& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kHello));
  w.u32(kMagic);
  w.u32(m.ver_min);
  w.u32(m.ver_max);
  w.u32(m.caps_requested);
  w.str(m.tenant);
  return w.take();
}

std::optional<Hello> decode_hello(std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(FrameType::kHello)) return std::nullopt;
  if (r.u32() != kMagic) return std::nullopt;
  Hello m;
  m.ver_min = r.u32();
  m.ver_max = r.u32();
  m.caps_requested = r.u32();
  m.tenant = r.str();
  if (!r.done()) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> encode_hello_reply(const HelloReply& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kHelloReply));
  w.u32(m.version);
  w.u32(m.caps_granted);
  w.u64(m.session_id);
  w.u32(m.max_frame_bytes);
  w.u32(m.max_batch_rows);
  w.u64(m.credit_window_rows);
  return w.take();
}

std::optional<HelloReply> decode_hello_reply(std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(FrameType::kHelloReply)) return std::nullopt;
  HelloReply m;
  m.version = r.u32();
  m.caps_granted = r.u32();
  m.session_id = r.u64();
  m.max_frame_bytes = r.u32();
  m.max_batch_rows = r.u32();
  m.credit_window_rows = r.u64();
  if (!r.done()) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> encode_metric_def(const MetricDef& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kMetricDef));
  w.u32(m.id);
  w.str(m.name);
  return w.take();
}

std::optional<MetricDef> decode_metric_def(std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(FrameType::kMetricDef)) return std::nullopt;
  MetricDef m;
  m.id = r.u32();
  m.name = r.str();
  if (!r.done() || m.name.empty()) return std::nullopt;
  return m;
}

namespace {

void put_i16(wire::Writer& w, int v) {
  w.u8(static_cast<std::uint8_t>(static_cast<std::uint16_t>(v) & 0xFF));
  w.u8(static_cast<std::uint8_t>((static_cast<std::uint16_t>(v) >> 8) & 0xFF));
}

int get_i16(wire::Reader& r) {
  const auto lo = static_cast<std::uint16_t>(r.u8());
  const auto hi = static_cast<std::uint16_t>(r.u8());
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(lo | (hi << 8)));
}

}  // namespace

std::vector<std::uint8_t> encode_insert_batch(std::uint64_t batch_seq,
                                              std::span<const tsdb::Record> records,
                                              bool dict_sync,
                                              const std::vector<std::uint32_t>& metric_ids) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kInsertBatch));
  w.u64(batch_seq);
  w.u32(static_cast<std::uint32_t>(records.size()));
  for (std::size_t i = 0; i < records.size(); ++i) {
    const tsdb::Record& rec = records[i];
    w.i64(rec.timestamp.ns());
    put_i16(w, rec.location.rack);
    put_i16(w, rec.location.midplane);
    put_i16(w, rec.location.board);
    put_i16(w, rec.location.card);
    if (dict_sync) {
      w.u32(metric_ids[i]);
    } else {
      w.str(rec.metric);
    }
    w.f64(rec.value);
  }
  return w.take();
}

std::optional<DecodedBatch> decode_insert_batch(std::span<const std::uint8_t> payload,
                                                bool dict_sync,
                                                const std::vector<std::string>& dictionary,
                                                BatchDecodeError* error) {
  BatchDecodeError scratch;
  BatchDecodeError& err = error != nullptr ? *error : scratch;
  wire::Reader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(FrameType::kInsertBatch)) {
    err.structural = true;
    return std::nullopt;
  }
  DecodedBatch out;
  out.batch_seq = r.u64();
  const std::uint32_t rows = r.u32();
  // Row floor: 8 (ts) + 8 (location) + 4 (id or length prefix) + 8
  // (value) — a length prefix larger than the remaining bytes could
  // otherwise reserve unbounded memory from a hostile frame.
  if (static_cast<std::uint64_t>(rows) * 28 > r.remaining()) {
    err.structural = true;
    return std::nullopt;
  }
  out.records.reserve(rows);
  for (std::uint32_t i = 0; i < rows; ++i) {
    tsdb::Record rec;
    rec.timestamp = sim::SimTime::from_ns(r.i64());
    rec.location.rack = get_i16(r);
    rec.location.midplane = get_i16(r);
    rec.location.board = get_i16(r);
    rec.location.card = get_i16(r);
    if (dict_sync) {
      const std::uint32_t id = r.u32();
      if (!r.ok()) break;
      if (id >= dictionary.size() || dictionary[id].empty()) {
        err.bad_metric_id = true;
        err.metric_id = id;
        return std::nullopt;
      }
      rec.metric = dictionary[id];
    } else {
      rec.metric = r.str();
      if (rec.metric.empty()) {
        err.structural = true;
        return std::nullopt;
      }
    }
    rec.value = r.f64();
    if (!r.ok()) break;
    out.records.push_back(std::move(rec));
  }
  if (!r.done() || out.records.size() != rows) {
    err.structural = true;
    return std::nullopt;
  }
  return out;
}

std::vector<std::uint8_t> encode_batch_reply(const BatchReply& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kBatchReply));
  w.u64(m.batch_seq);
  w.u64(m.accepted);
  w.u8(static_cast<std::uint8_t>(m.rejected.size()));
  for (const auto& [code, count] : m.rejected) {
    w.u8(static_cast<std::uint8_t>(status_code_to_wire(code) & 0xFF));
    w.u8(static_cast<std::uint8_t>(status_code_to_wire(code) >> 8));
    w.u64(count);
  }
  w.u64(m.credits_released);
  return w.take();
}

std::optional<BatchReply> decode_batch_reply(std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(FrameType::kBatchReply)) return std::nullopt;
  BatchReply m;
  m.batch_seq = r.u64();
  m.accepted = r.u64();
  const std::uint8_t n = r.u8();
  for (std::uint8_t i = 0; i < n; ++i) {
    const auto lo = static_cast<std::uint16_t>(r.u8());
    const auto hi = static_cast<std::uint16_t>(r.u8());
    const StatusCode code = status_code_from_wire(static_cast<std::uint16_t>(lo | (hi << 8)));
    m.rejected.emplace_back(code, r.u64());
  }
  m.credits_released = r.u64();
  if (!r.done()) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> encode_flush(const FlushRequest& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kFlush));
  w.u64(m.token);
  return w.take();
}

std::optional<FlushRequest> decode_flush(std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(FrameType::kFlush)) return std::nullopt;
  FlushRequest m;
  m.token = r.u64();
  if (!r.done()) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> encode_flush_reply(const FlushReply& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kFlushReply));
  w.u64(m.token);
  w.u64(m.rows_total);
  w.u8(m.durable ? 1 : 0);
  return w.take();
}

std::optional<FlushReply> decode_flush_reply(std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(FrameType::kFlushReply)) return std::nullopt;
  FlushReply m;
  m.token = r.u64();
  m.rows_total = r.u64();
  m.durable = r.u8() != 0;
  if (!r.done()) return std::nullopt;
  return m;
}

namespace {

std::vector<std::uint8_t> encode_nonce(FrameType type, std::uint64_t nonce) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(nonce);
  return w.take();
}

std::optional<std::uint64_t> decode_nonce(FrameType type, std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(type)) return std::nullopt;
  const std::uint64_t nonce = r.u64();
  if (!r.done()) return std::nullopt;
  return nonce;
}

}  // namespace

std::vector<std::uint8_t> encode_ping(std::uint64_t nonce) {
  return encode_nonce(FrameType::kPing, nonce);
}
std::optional<std::uint64_t> decode_ping(std::span<const std::uint8_t> payload) {
  return decode_nonce(FrameType::kPing, payload);
}
std::vector<std::uint8_t> encode_pong(std::uint64_t nonce) {
  return encode_nonce(FrameType::kPong, nonce);
}
std::optional<std::uint64_t> decode_pong(std::span<const std::uint8_t> payload) {
  return decode_nonce(FrameType::kPong, payload);
}

std::vector<std::uint8_t> encode_goodbye() {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kGoodbye));
  return w.take();
}

std::vector<std::uint8_t> encode_goodbye_reply() {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kGoodbyeReply));
  return w.take();
}

std::vector<std::uint8_t> encode_error(const ErrorReply& m) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kError));
  const std::uint16_t code = status_code_to_wire(m.code);
  w.u8(static_cast<std::uint8_t>(code & 0xFF));
  w.u8(static_cast<std::uint8_t>(code >> 8));
  w.str(m.message);
  return w.take();
}

std::optional<ErrorReply> decode_error(std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(FrameType::kError)) return std::nullopt;
  ErrorReply m;
  const auto lo = static_cast<std::uint16_t>(r.u8());
  const auto hi = static_cast<std::uint16_t>(r.u8());
  m.code = status_code_from_wire(static_cast<std::uint16_t>(lo | (hi << 8)));
  m.message = r.str();
  if (!r.done()) return std::nullopt;
  return m;
}

}  // namespace envmon::daemon
