#pragma once
// Order-sensitive content digest of a database's full record stream.
//
// Used by the daemon tests and bench to assert byte-identity: the same
// records applied in the same order — whether by an in-process writer,
// the daemon's pump, or a frame-log replay — produce the same digest.
// query() returns rows ordered by (timestamp, insertion sequence), so
// the digest covers both contents and application order.

#include <cstdint>
#include <cstring>
#include <string_view>

#include "tsdb/database.hpp"

namespace envmon::daemon {

class Fnv1a {
 public:
  void mix(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001B3ull;
    }
  }
  void mix_u64(std::uint64_t v) { mix(&v, sizeof v); }
  void mix_str(std::string_view s) {
    mix_u64(s.size());
    mix(s.data(), s.size());
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ull;
};

inline std::uint64_t database_digest(const tsdb::EnvDatabase& db) {
  Fnv1a h;
  const auto rows = db.query({});
  h.mix_u64(rows.size());
  for (const auto& rec : rows) {
    h.mix_u64(static_cast<std::uint64_t>(rec.timestamp.ns()));
    h.mix_u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(rec.location.rack)));
    h.mix_u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(rec.location.midplane)));
    h.mix_u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(rec.location.board)));
    h.mix_u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(rec.location.card)));
    h.mix_str(rec.metric);
    std::uint64_t bits = 0;
    std::memcpy(&bits, &rec.value, sizeof bits);
    h.mix_u64(bits);
  }
  return h.value();
}

}  // namespace envmon::daemon
