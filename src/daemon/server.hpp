#pragma once
// envmond: the multi-tenant ingestion daemon (DESIGN.md §14).
//
// Accepts envmon protocol sessions on a Unix-domain stream socket and
// maps them onto the repo's existing single-writer ingest path: every
// validated InsertBatch becomes one EpochBatch on a bounded
// fleet::IngestQueue (epoch = global submission sequence, one NodeBatch
// whose node id is the session id), and a single pump thread applies
// batches in submission order via EnvDatabase::insert_batch — so N
// concurrent network producers yield exactly the database a single
// in-process writer would have produced from the same interleaving.
//
// Threading:
//   listener thread  — accept(2) loop, spawns one thread per session
//   session threads  — read frames, run SessionCore, submit batches
//   pump thread      — pops the IngestQueue, applies, sends the
//                      deferred BatchReply/FlushReply
//
// Replies to a batch are sent only after the pump applied it; the
// credit window (rows in flight per session) is released by that reply,
// which both paces producers and bounds daemon-resident rows at
// sessions x credit_window_rows + queue depth.
//
// Per-tenant rate limits are delay-only (TokenBucket): an over-budget
// producer is slowed, never rejected, so throttling cannot change
// database contents and frame-log replay stays deterministic.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "daemon/framelog.hpp"
#include "daemon/session.hpp"
#include "fleet/ingest.hpp"
#include "obs/metrics.hpp"
#include "tsdb/database.hpp"

namespace envmon::daemon {

// Delay-only token bucket.  acquire() lets the balance go negative and
// sleeps off the deficit, so a burst up to `burst_rows` passes
// untouched and sustained load is paced to `rows_per_sec`.
class TokenBucket {
 public:
  TokenBucket(double rows_per_sec, double burst_rows);

  // Blocks until the batch fits the budget; returns seconds slept.
  double acquire(std::uint64_t rows);
  [[nodiscard]] bool unlimited() const { return rate_ <= 0.0; }

 private:
  std::mutex mutex_;
  double rate_;
  double burst_;
  double tokens_;
  std::chrono::steady_clock::time_point last_;
};

struct TenantPolicy {
  double rows_per_sec = 0.0;  // 0 = unthrottled
  double burst_rows = 0.0;    // 0 = one second's worth of rate
};

struct ServerOptions {
  std::string socket_path;
  // Captures every acted-on frame for deterministic replay
  // (framelog.hpp); empty disables capture.
  std::string frame_log_path;
  std::uint32_t ver_min = kProtocolVersionMin;
  std::uint32_t ver_max = kProtocolVersionMax;
  std::uint32_t caps = kCapDictSync | kCapDurableFlush;
  std::uint32_t max_frame_bytes = 4u << 20;
  std::uint32_t max_batch_rows = 1u << 16;
  std::uint64_t credit_window_rows = 1u << 16;
  // Submitted batches the pump may fall behind before submitters block.
  std::size_t queue_capacity = 64;
  TenantPolicy default_policy;
  std::map<std::string, TenantPolicy> tenant_policies;
  // When set, a Hello naming a tenant absent from tenant_policies is
  // refused with kUnauthenticated.
  bool require_known_tenant = false;
  bool flush_on_stop = true;  // durable flush as part of stop()
};

class Server {
 public:
  Server(tsdb::EnvDatabase& db, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  Status start();
  // Idempotent.  Stops accepting, wakes and joins every session thread
  // (in-flight batches still drain), closes the queue, joins the pump,
  // then flushes the durable store — a client crash mid-stream or a
  // stop() mid-burst both leave the database consistent.
  void stop();

  struct Stats {
    std::uint64_t sessions_accepted = 0;
    std::uint64_t frames = 0;
    std::uint64_t batches = 0;
    std::uint64_t rows_accepted = 0;
    std::uint64_t rows_rejected = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t flushes = 0;
    std::uint64_t throttle_waits = 0;
    double throttle_seconds = 0.0;
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const std::string& socket_path() const { return options_.socket_path; }

 private:
  struct SessionState {
    SessionState(int fd_in, const SessionCore::Config& cfg)
        : fd(fd_in), id(static_cast<std::uint32_t>(cfg.session_id)), core(cfg) {}
    ~SessionState();
    int fd;
    std::uint32_t id;
    SessionCore core;
    std::mutex core_mutex;   // session thread vs pump access to `core`
    std::mutex write_mutex;  // interleaves session-thread and pump sends
    std::atomic<bool> dead{false};
  };

  struct Pending {
    enum class Kind { kBatch, kFlush } kind = Kind::kBatch;
    std::shared_ptr<SessionState> session;
    std::uint64_t batch_seq = 0;  // batch: protocol sequence; flush: token
    std::uint64_t rows = 0;
  };

  void listen_loop();
  void session_loop(std::shared_ptr<SessionState> session);
  void pump_loop();
  bool submit(const std::shared_ptr<SessionState>& session, Pending::Kind kind,
              std::uint64_t seq_or_token, std::vector<tsdb::Record>&& records,
              std::span<const std::uint8_t> payload);
  bool send_payload(SessionState& session, std::span<const std::uint8_t> payload);
  TokenBucket& bucket_for(const std::string& tenant);

  tsdb::EnvDatabase* db_;
  ServerOptions options_;
  fleet::IngestQueue queue_;
  FrameLogWriter frame_log_;

  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread listen_thread_;
  std::thread pump_thread_;

  std::mutex sessions_mutex_;
  std::vector<std::thread> session_threads_;
  std::vector<std::weak_ptr<SessionState>> sessions_;
  std::uint32_t next_session_id_ = 1;

  // One critical section orders everything that couples sessions: the
  // submission sequence, the frame-log append, the pending descriptor,
  // and the queue push.  Frame-log order == application order follows.
  std::mutex submit_mutex_;
  std::uint64_t next_submit_seq_ = 1;
  std::mutex pending_mutex_;
  std::deque<Pending> pending_;

  std::mutex buckets_mutex_;
  std::map<std::string, std::unique_ptr<TokenBucket>> buckets_;

  mutable std::mutex stats_mutex_;
  Stats stats_;
  std::uint64_t rows_total_ = 0;  // accepted rows, pump thread only

  obs::Counter* m_sessions_;
  obs::Gauge* m_active_;
  obs::Counter* m_frames_;
  obs::Counter* m_batches_;
  obs::Counter* m_rows_accepted_;
  obs::Counter* m_rows_rejected_;
  obs::Counter* m_protocol_errors_;
  obs::Counter* m_flushes_;
  obs::Counter* m_throttle_waits_;
  obs::Gauge* m_throttle_seconds_;
};

}  // namespace envmon::daemon
