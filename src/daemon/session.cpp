#include "daemon/session.hpp"

#include <algorithm>
#include <utility>

namespace envmon::daemon {

SessionCore::Action SessionCore::fail(StatusCode code, std::string message) {
  ++protocol_errors_;
  state_ = State::kClosed;
  Action a;
  a.replies.push_back(encode_error(ErrorReply{code, std::move(message)}));
  a.close = true;
  return a;
}

SessionCore::Action SessionCore::on_transport_error(StatusCode code, std::string message) {
  return fail(code, std::move(message));
}

SessionCore::Action SessionCore::on_frame(std::span<const std::uint8_t> payload) {
  if (state_ == State::kClosed) {
    Action a;
    a.close = true;
    return a;
  }
  if (payload.empty()) return fail(StatusCode::kInvalidArgument, "empty frame payload");
  const auto type = static_cast<FrameType>(payload[0]);

  if (state_ == State::kAwaitHello) {
    if (type != FrameType::kHello) {
      return fail(StatusCode::kFailedPrecondition, "expected Hello before any other frame");
    }
    return handle_hello(payload);
  }

  switch (type) {
    case FrameType::kHello:
      return fail(StatusCode::kFailedPrecondition, "duplicate Hello");
    case FrameType::kMetricDef:
      return handle_metric_def(payload);
    case FrameType::kInsertBatch:
      return handle_insert_batch(payload);
    case FrameType::kFlush: {
      const auto m = decode_flush(payload);
      if (!m) return fail(StatusCode::kInvalidArgument, "malformed Flush");
      Action a;
      a.flush_token = m->token;
      return a;
    }
    case FrameType::kPing: {
      const auto nonce = decode_ping(payload);
      if (!nonce) return fail(StatusCode::kInvalidArgument, "malformed Ping");
      Action a;
      a.replies.push_back(encode_pong(*nonce));
      return a;
    }
    case FrameType::kGoodbye: {
      state_ = State::kClosed;
      Action a;
      a.replies.push_back(encode_goodbye_reply());
      a.goodbye = true;
      a.close = true;
      return a;
    }
    default:
      return fail(StatusCode::kInvalidArgument,
                  "unknown frame type " + std::to_string(payload[0]));
  }
}

SessionCore::Action SessionCore::handle_hello(std::span<const std::uint8_t> payload) {
  const auto hello = decode_hello(payload);
  if (!hello) {
    return fail(StatusCode::kInvalidArgument, "malformed Hello (bad magic or fields)");
  }
  if (hello->ver_min > hello->ver_max) {
    return fail(StatusCode::kInvalidArgument, "Hello version range is inverted");
  }
  const std::uint32_t chosen = std::min(config_.server_ver_max, hello->ver_max);
  if (chosen < config_.server_ver_min || chosen < hello->ver_min) {
    return fail(StatusCode::kUnsupported,
                "no common protocol version: server speaks " +
                    std::to_string(config_.server_ver_min) + ".." +
                    std::to_string(config_.server_ver_max) + ", client asked " +
                    std::to_string(hello->ver_min) + ".." + std::to_string(hello->ver_max));
  }
  tenant_ = hello->tenant;
  version_ = chosen;
  caps_ = hello->caps_requested & config_.caps_supported & caps_allowed_for(chosen);
  state_ = State::kStreaming;

  HelloReply reply;
  reply.version = chosen;
  reply.caps_granted = caps_;
  reply.session_id = config_.session_id;
  reply.max_frame_bytes = config_.max_frame_bytes;
  reply.max_batch_rows = config_.max_batch_rows;
  reply.credit_window_rows = config_.credit_window_rows;
  Action a;
  a.replies.push_back(encode_hello_reply(reply));
  return a;
}

SessionCore::Action SessionCore::handle_metric_def(std::span<const std::uint8_t> payload) {
  if ((caps_ & kCapDictSync) == 0) {
    return fail(StatusCode::kUnsupported, "MetricDef requires the dict-sync capability");
  }
  const auto def = decode_metric_def(payload);
  if (!def) return fail(StatusCode::kInvalidArgument, "malformed MetricDef");
  // Ids index a vector; cap them so a hostile id cannot reserve memory.
  if (def->id > (1u << 20)) {
    return fail(StatusCode::kOutOfRange, "metric id " + std::to_string(def->id) + " too large");
  }
  if (def->id < dictionary_.size() && !dictionary_[def->id].empty() &&
      dictionary_[def->id] != def->name) {
    return fail(StatusCode::kFailedPrecondition,
                "metric id " + std::to_string(def->id) + " redefined");
  }
  if (def->id >= dictionary_.size()) dictionary_.resize(def->id + 1);
  dictionary_[def->id] = def->name;
  return Action{};
}

SessionCore::Action SessionCore::handle_insert_batch(std::span<const std::uint8_t> payload) {
  BatchDecodeError err;
  auto batch = decode_insert_batch(payload, (caps_ & kCapDictSync) != 0, dictionary_, &err);
  if (!batch) {
    if (err.bad_metric_id) {
      return fail(StatusCode::kInvalidArgument,
                  "batch references undefined metric id " + std::to_string(err.metric_id));
    }
    return fail(StatusCode::kInvalidArgument, "malformed InsertBatch");
  }
  if (batch->batch_seq != next_batch_seq_) {
    return fail(StatusCode::kFailedPrecondition,
                "batch_seq " + std::to_string(batch->batch_seq) + ", expected " +
                    std::to_string(next_batch_seq_));
  }
  if (batch->records.size() > config_.max_batch_rows) {
    return fail(StatusCode::kOutOfRange,
                "batch of " + std::to_string(batch->records.size()) +
                    " rows exceeds the negotiated limit of " +
                    std::to_string(config_.max_batch_rows));
  }
  if (outstanding_rows_ + batch->records.size() > config_.credit_window_rows) {
    return fail(StatusCode::kResourceExhausted,
                "credit overrun: " + std::to_string(outstanding_rows_) + " rows in flight, " +
                    std::to_string(batch->records.size()) + " more offered against a window of " +
                    std::to_string(config_.credit_window_rows));
  }
  ++next_batch_seq_;
  outstanding_rows_ += batch->records.size();
  Action a;
  a.batch = std::move(*batch);
  return a;
}

std::vector<std::uint8_t> SessionCore::make_batch_reply(
    std::uint64_t batch_seq, const tsdb::EnvDatabase::BatchResult& result,
    std::uint64_t rows_released) {
  BatchReply reply;
  reply.batch_seq = batch_seq;
  reply.accepted = result.accepted;
  for (const auto& [code, count] : result.by_code()) {
    if (count > 0) reply.rejected.emplace_back(code, count);
  }
  reply.credits_released = rows_released;
  return encode_batch_reply(reply);
}

std::vector<std::uint8_t> SessionCore::make_flush_reply(std::uint64_t token,
                                                        std::uint64_t rows_total,
                                                        bool durable) const {
  return encode_flush_reply(FlushReply{token, rows_total, durable});
}

}  // namespace envmon::daemon
