#include "daemon/framelog.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <utility>

#include "daemon/session.hpp"
#include "tsdb/checksum.hpp"
#include "tsdb/wire.hpp"

namespace envmon::daemon {

namespace wire = tsdb::wire;

namespace {

bool write_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& data, std::size_t off) {
  return static_cast<std::uint32_t>(data[off]) |
         (static_cast<std::uint32_t>(data[off + 1]) << 8) |
         (static_cast<std::uint32_t>(data[off + 2]) << 16) |
         (static_cast<std::uint32_t>(data[off + 3]) << 24);
}

}  // namespace

FrameLogWriter::~FrameLogWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status FrameLogWriter::open(const std::string& path, const FrameLogHeader& header) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) return Status::failed_precondition("frame log already open");
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::internal("frame log open(" + path + "): " + std::strerror(errno));
  }
  wire::Writer w;
  w.u32(kFrameLogMagic);
  w.u32(kFrameLogVersion);
  w.u32(header.ver_min);
  w.u32(header.ver_max);
  w.u32(header.caps_supported);
  w.u32(header.max_frame_bytes);
  w.u32(header.max_batch_rows);
  w.u64(header.credit_window_rows);
  if (!write_all(fd, w.take())) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::internal("frame log header write: " + err);
  }
  fd_ = fd;
  entries_ = 0;
  return Status::ok();
}

void FrameLogWriter::append(std::uint32_t session_id, std::span<const std::uint8_t> payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  wire::Writer w;
  w.u32(session_id);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(tsdb::crc32c(payload));
  w.bytes(payload);
  if (write_all(fd_, w.take())) ++entries_;
}

Status FrameLogWriter::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return Status::ok();
  const bool synced = ::fsync(fd_) == 0;
  const bool closed = ::close(fd_) == 0;
  fd_ = -1;
  if (!synced || !closed) return Status::internal("frame log close failed");
  return Status::ok();
}

Result<FrameLog> read_frame_log(const std::string& path, bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::not_found("frame log open(" + path + "): " + std::strerror(errno));
  }
  std::vector<std::uint8_t> data;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::internal("frame log read: " + err);
    }
    if (n == 0) break;
    data.insert(data.end(), buf, buf + n);
  }
  ::close(fd);

  constexpr std::size_t kHeaderBytes = 7 * 4 + 8;
  if (data.size() < kHeaderBytes) {
    return Status::invalid_argument("frame log shorter than its header");
  }
  wire::Reader r(data);
  if (r.u32() != kFrameLogMagic) return Status::invalid_argument("frame log bad magic");
  const std::uint32_t version = r.u32();
  if (version != kFrameLogVersion) {
    return Status::unsupported("frame log version " + std::to_string(version));
  }
  FrameLog log;
  log.header.ver_min = r.u32();
  log.header.ver_max = r.u32();
  log.header.caps_supported = r.u32();
  log.header.max_frame_bytes = r.u32();
  log.header.max_batch_rows = r.u32();
  log.header.credit_window_rows = r.u64();

  // Entries: stop at the first torn or corrupt one (clean prefix).
  std::size_t off = kHeaderBytes;
  while (off + 12 <= data.size()) {
    const std::uint32_t session_id = get_u32(data, off);
    const std::uint32_t len = get_u32(data, off + 4);
    const std::uint32_t crc = get_u32(data, off + 8);
    if (off + 12 + len > data.size()) break;  // torn tail
    const std::span<const std::uint8_t> payload(data.data() + off + 12, len);
    if (tsdb::crc32c(payload) != crc) break;  // corrupt tail
    FrameLogEntry entry;
    entry.session_id = session_id;
    entry.payload.assign(payload.begin(), payload.end());
    log.entries.push_back(std::move(entry));
    off += 12 + len;
  }
  if (off != data.size() && truncated != nullptr) *truncated = true;
  return log;
}

Status replay_frame_log(const std::string& path, tsdb::EnvDatabase& db, ReplayStats* stats) {
  auto loaded = read_frame_log(path);
  if (!loaded.is_ok()) return loaded.status();
  const FrameLog& log = loaded.value();

  SessionCore::Config base;
  base.server_ver_min = log.header.ver_min;
  base.server_ver_max = log.header.ver_max;
  base.caps_supported = log.header.caps_supported;
  base.max_frame_bytes = log.header.max_frame_bytes;
  base.max_batch_rows = log.header.max_batch_rows;
  base.credit_window_rows = log.header.credit_window_rows;

  std::unordered_map<std::uint32_t, SessionCore> sessions;
  ReplayStats local;
  std::uint64_t rows_total = 0;
  for (const FrameLogEntry& entry : log.entries) {
    ++local.frames;
    auto it = sessions.find(entry.session_id);
    if (it == sessions.end()) {
      SessionCore::Config cfg = base;
      cfg.session_id = entry.session_id;
      it = sessions.try_emplace(entry.session_id, cfg).first;
      ++local.sessions;
    }
    SessionCore& session = it->second;
    SessionCore::Action action = session.on_frame(entry.payload);
    if (action.batch.has_value()) {
      ++local.batches;
      const std::uint64_t offered = action.batch->records.size();
      const auto result = db.insert_batch(action.batch->records);
      local.rows_accepted += result.accepted;
      local.rows_rejected += result.rejected();
      rows_total += result.accepted;
      // Build the same deferred reply the live pump sends, so replay
      // exercises the identical post-application path.
      (void)session.make_batch_reply(action.batch->batch_seq, result, offered);
      session.release_credits(offered);
    }
    if (action.flush_token.has_value()) {
      if (db.durable()) {
        Status fs = db.flush();
        if (!fs.is_ok()) return fs;
      }
      (void)session.make_flush_reply(*action.flush_token, rows_total, db.durable());
    }
  }
  for (const auto& [id, session] : sessions) {
    (void)id;
    local.protocol_errors += session.protocol_errors();
  }
  if (stats != nullptr) *stats = local;
  return Status::ok();
}

}  // namespace envmon::daemon
