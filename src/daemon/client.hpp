#pragma once
// envmon::daemon::Client — the producer side of the envmond protocol.
//
// Blocking, single-threaded, and pipelined: send_batch() returns as
// soon as the batch is written, and only blocks (reading BatchReply
// frames) when the credit window granted at Hello would be exceeded.
// With the default 64k-row window a producer keeps many batches in
// flight without ever overrunning the daemon.
//
// When the server grants kCapDictSync the client interns metric names
// transparently: the first batch naming a metric is preceded by a
// MetricDef frame, and rows carry a 4-byte id instead of the string.
// drain() waits for every outstanding reply; flush() additionally asks
// the daemon for a durability barrier.  Any Error frame from the
// server surfaces as the equivalent typed Status and poisons the
// session (common/status.hpp — same taxonomy, same codes).

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "daemon/protocol.hpp"
#include "tsdb/database.hpp"

namespace envmon::daemon {

class Client {
 public:
  struct Options {
    std::string socket_path;
    std::string tenant = "default";
    std::uint32_t ver_min = kProtocolVersionMin;
    std::uint32_t ver_max = kProtocolVersionMax;
    std::uint32_t caps_requested = kCapDictSync | kCapDurableFlush;
  };

  struct Totals {
    std::uint64_t batches_sent = 0;
    std::uint64_t rows_sent = 0;
    std::uint64_t rows_accepted = 0;
    std::uint64_t rows_rejected = 0;
    // Rejected rows by StatusCode wire value (kStatusCodeCount slots).
    std::array<std::uint64_t, kStatusCodeCount> rejected_by_code{};
  };

  explicit Client(Options options) : options_(std::move(options)) {}
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects and performs the Hello handshake.
  Status connect();

  // Writes one InsertBatch, interning metrics first when negotiated;
  // blocks only while the credit window is exhausted.
  Status send_batch(std::span<const tsdb::Record> records);

  // Blocks until every outstanding batch has been acknowledged.
  Status drain();

  // drain() + a durability barrier on the daemon; the reply reports the
  // store's cumulative accepted rows and whether it is durable.
  Result<FlushReply> flush();

  Status ping();

  // Goodbye handshake; further calls fail with kFailedPrecondition.
  Status close();

  [[nodiscard]] bool connected() const { return fd_ >= 0 && handshaken_; }
  [[nodiscard]] std::uint64_t session_id() const { return session_id_; }
  [[nodiscard]] std::uint32_t version() const { return version_; }
  [[nodiscard]] std::uint32_t caps() const { return caps_; }
  [[nodiscard]] const Totals& totals() const { return totals_; }

 private:
  Status send_payload(std::span<const std::uint8_t> payload);
  Status read_payload(std::vector<std::uint8_t>& payload);
  // Reads one reply frame and applies it (BatchReply -> credits).
  Status absorb_one_reply();
  Status fail(Status status);

  Options options_;
  int fd_ = -1;
  bool handshaken_ = false;
  bool poisoned_ = false;
  std::uint64_t session_id_ = 0;
  std::uint32_t version_ = 0;
  std::uint32_t caps_ = 0;
  std::uint32_t max_frame_bytes_ = 0;
  std::uint32_t max_batch_rows_ = 0;
  std::uint64_t credit_window_rows_ = 0;
  std::uint64_t credits_ = 0;          // rows we may still put in flight
  std::uint64_t outstanding_batches_ = 0;
  std::uint64_t next_batch_seq_ = 1;
  std::uint64_t nonce_ = 0;
  std::uint64_t flush_token_ = 0;
  std::unordered_map<std::string, std::uint32_t> metric_ids_;
  std::vector<std::uint32_t> id_scratch_;
  Totals totals_;
};

}  // namespace envmon::daemon
