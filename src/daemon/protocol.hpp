#pragma once
// The envmond wire protocol (DESIGN.md §14).
//
// The paper's collection mechanisms are in-process library calls; the
// production system they feed is not.  envmond puts the environmental
// database behind a Unix-domain socket so producers link a thin client
// instead of the whole stack, in the style of the Nix daemon's worker
// protocol: length-prefixed binary frames, an explicit protocol-version
// handshake with capability negotiation, and typed error replies that
// carry the SAME envmon::StatusCode taxonomy an in-process caller sees
// (common/status.hpp — the codes are frozen wire values).
//
// Framing.  Every message travels as
//
//     u32 payload_len | u32 crc32c(payload) | payload
//
// (little-endian, the WAL's framing discipline — tsdb/wal.hpp).  The
// first payload byte is the frame type.  A receiver treats an oversized
// length prefix or a CRC mismatch as transport corruption: it replies
// kDataLoss / kOutOfRange and drops the connection, because a stream
// that mis-framed once cannot be re-synchronized.
//
// Handshake.  The client opens with Hello {magic, ver_min..ver_max,
// capability bits, tenant}; the server either replies HelloReply
// {chosen version, granted caps, session id, limits, initial credits}
// or rejects with a typed Error (kUnsupported on a disjoint version
// range, kUnauthenticated on an unknown tenant).  The chosen version is
// min(server_max, client_max); capabilities are the intersection of
// requested, server-supported, and version-allowed bits.
//
// Dictionary sync (v2 + kCapDictSync).  The client interns each metric
// name once via MetricDef {id, name}; batch rows then carry the u32 id.
// A v1 session sends names inline in every row — byte-for-byte more
// expensive but fully supported (the downgrade path the tests pin).
//
// Backpressure.  Credits are ROWS.  HelloReply grants an initial
// window; every InsertBatch spends its row count; every BatchReply
// releases its batch's rows back.  A client that overruns its window is
// in protocol violation (kResourceExhausted, fatal).  Because replies
// are sent only after the ingest pump has APPLIED a batch, the window
// bounds daemon-resident rows per session; the bounded IngestQueue
// behind it bounds the whole daemon.
//
// Data-level rejects are not errors: BatchReply carries per-StatusCode
// reject counts (out-of-order -> kInvalidArgument, rate-limited ->
// kResourceExhausted, injected outage -> kUnavailable) — exactly the
// categories tsdb::EnvDatabase::BatchResult reports in-process.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "tsdb/database.hpp"
#include "tsdb/wire.hpp"

namespace envmon::daemon {

// 'EVMD' — leads every Hello so a peer that dialed the wrong socket is
// rejected before anything is interpreted.
inline constexpr std::uint32_t kMagic = 0x45564D44u;

// Protocol versions this tree speaks.  v1: inline metric names, no
// optional capabilities.  v2: dictionary sync + durable-flush request.
inline constexpr std::uint32_t kProtocolVersionMin = 1;
inline constexpr std::uint32_t kProtocolVersionMax = 2;

// Capability bits (Hello.caps_requested / HelloReply.caps_granted).
inline constexpr std::uint32_t kCapDictSync = 1u << 0;     // v2+
inline constexpr std::uint32_t kCapDurableFlush = 1u << 1; // v2+
[[nodiscard]] constexpr std::uint32_t caps_allowed_for(std::uint32_t version) {
  return version >= 2 ? (kCapDictSync | kCapDurableFlush) : 0u;
}

// Frame header: payload_len | crc32c(payload).
inline constexpr std::size_t kFrameHeaderBytes = 8;
// Hard ceiling while the session limit is still unnegotiated (a Hello
// fits in far less; anything bigger is not a Hello).
inline constexpr std::uint32_t kHelloMaxFrameBytes = 4096;

// Frame types (payload[0]).  Client->server in the low range,
// server->client with the high bit set.
enum class FrameType : std::uint8_t {
  kHello = 1,
  kMetricDef = 2,
  kInsertBatch = 3,
  kFlush = 4,
  kPing = 5,
  kGoodbye = 6,

  kHelloReply = 0x81,
  kBatchReply = 0x83,
  kFlushReply = 0x84,
  kPong = 0x85,
  kGoodbyeReply = 0x86,
  kError = 0xFF,
};

// --- message bodies ---------------------------------------------------

struct Hello {
  std::uint32_t ver_min = kProtocolVersionMin;
  std::uint32_t ver_max = kProtocolVersionMax;
  std::uint32_t caps_requested = 0;
  std::string tenant;
};

struct HelloReply {
  std::uint32_t version = 0;
  std::uint32_t caps_granted = 0;
  std::uint64_t session_id = 0;
  std::uint32_t max_frame_bytes = 0;
  std::uint32_t max_batch_rows = 0;
  std::uint64_t credit_window_rows = 0;  // initial credit grant
};

struct MetricDef {
  std::uint32_t id = 0;
  std::string name;
};

// InsertBatch row limits are negotiated; rows are encoded inline after
// the header fields (see encode_insert_batch).
struct BatchHeader {
  std::uint64_t batch_seq = 0;  // client-assigned, strictly +1 per batch
  std::uint32_t rows = 0;
};

struct BatchReply {
  std::uint64_t batch_seq = 0;
  std::uint64_t accepted = 0;
  // Reject counts keyed by the shared taxonomy; only non-zero codes are
  // on the wire.
  std::vector<std::pair<StatusCode, std::uint64_t>> rejected;
  std::uint64_t credits_released = 0;
  [[nodiscard]] std::uint64_t rejected_total() const {
    std::uint64_t n = 0;
    for (const auto& [code, count] : rejected) n += count;
    return n;
  }
};

struct FlushRequest {
  std::uint64_t token = 0;
};

struct FlushReply {
  std::uint64_t token = 0;
  std::uint64_t rows_total = 0;  // db rows after the barrier
  bool durable = false;          // a durable flush (WAL fsync) happened
};

struct ErrorReply {
  StatusCode code = StatusCode::kInternal;
  std::string message;
  [[nodiscard]] Status to_status() const { return {code, message}; }
};

// --- framing ----------------------------------------------------------

// Wraps `payload` in the length+crc header.
[[nodiscard]] std::vector<std::uint8_t> frame(std::span<const std::uint8_t> payload);

// Parses a frame header; returns the payload length or an error when the
// length exceeds `max_frame_bytes`.
struct FrameHeader {
  std::uint32_t payload_len = 0;
  std::uint32_t crc = 0;
};
[[nodiscard]] FrameHeader decode_frame_header(std::span<const std::uint8_t> hdr);
// Validates payload bytes against the header's CRC.
[[nodiscard]] bool frame_payload_ok(const FrameHeader& h, std::span<const std::uint8_t> payload);

// --- payload encode / decode -----------------------------------------
//
// Encoders produce the full payload (type byte first).  Decoders expect
// the full payload and return nullopt on any structural error; they are
// total — arbitrary garbage never invokes UB (tsdb::wire::Reader).

[[nodiscard]] std::vector<std::uint8_t> encode_hello(const Hello& m);
[[nodiscard]] std::optional<Hello> decode_hello(std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_hello_reply(const HelloReply& m);
[[nodiscard]] std::optional<HelloReply> decode_hello_reply(std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_metric_def(const MetricDef& m);
[[nodiscard]] std::optional<MetricDef> decode_metric_def(std::span<const std::uint8_t> payload);

// Rows: {i64 ts_ns, i16 rack, i16 midplane, i16 board, i16 card,
// metric, f64 value} where metric is a u32 dictionary id under
// kCapDictSync and an inline string otherwise.
[[nodiscard]] std::vector<std::uint8_t> encode_insert_batch(
    std::uint64_t batch_seq, std::span<const tsdb::Record> records, bool dict_sync,
    const std::vector<std::uint32_t>& metric_ids);
struct DecodedBatch {
  std::uint64_t batch_seq = 0;
  std::vector<tsdb::Record> records;
};
// `dictionary` resolves ids when dict_sync; an undefined id fails the
// decode (sets `bad_metric_id`).
struct BatchDecodeError {
  bool structural = false;      // truncated / malformed bytes
  bool bad_metric_id = false;   // id not defined by a prior MetricDef
  std::uint32_t metric_id = 0;
};
[[nodiscard]] std::optional<DecodedBatch> decode_insert_batch(
    std::span<const std::uint8_t> payload, bool dict_sync,
    const std::vector<std::string>& dictionary, BatchDecodeError* error = nullptr);

[[nodiscard]] std::vector<std::uint8_t> encode_batch_reply(const BatchReply& m);
[[nodiscard]] std::optional<BatchReply> decode_batch_reply(std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_flush(const FlushRequest& m);
[[nodiscard]] std::optional<FlushRequest> decode_flush(std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_flush_reply(const FlushReply& m);
[[nodiscard]] std::optional<FlushReply> decode_flush_reply(std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_ping(std::uint64_t nonce);
[[nodiscard]] std::optional<std::uint64_t> decode_ping(std::span<const std::uint8_t> payload);
[[nodiscard]] std::vector<std::uint8_t> encode_pong(std::uint64_t nonce);
[[nodiscard]] std::optional<std::uint64_t> decode_pong(std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_goodbye();
[[nodiscard]] std::vector<std::uint8_t> encode_goodbye_reply();

[[nodiscard]] std::vector<std::uint8_t> encode_error(const ErrorReply& m);
[[nodiscard]] std::optional<ErrorReply> decode_error(std::span<const std::uint8_t> payload);

}  // namespace envmon::daemon
