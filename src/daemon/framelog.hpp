#pragma once
// Replayable frame log for envmond sessions (DESIGN.md §14.7).
//
// The server records every client->server frame it ACTS on, in the
// order it acted — Hello/MetricDef/control frames as each session
// thread processes them, InsertBatch/Flush frames inside the ingest
// submission lock, i.e. in exactly the order batches enter the shared
// IngestQueue.  That order is the only thing that couples concurrent
// sessions, so feeding the log back through the same SessionCore state
// machines single-threaded reproduces the database byte-for-byte: a
// captured production session becomes a deterministic test fixture.
//
// File format ("EVFL"):
//     u32 magic 'EVFL' | u32 version (1)
//     u32 ver_min | u32 ver_max | u32 caps | u32 max_frame_bytes
//     u32 max_batch_rows | u64 credit_window_rows   (the server config,
//         so replay negotiates every handshake exactly as the live
//         server did)
//     repeated: u32 session_id | u32 payload_len | u32 crc32c | payload
//
// The reader validates CRCs and stops at the first torn or corrupt
// entry (a capture that died mid-write still replays its clean prefix —
// the WAL's recovery discipline applied to session capture).

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "daemon/protocol.hpp"
#include "tsdb/database.hpp"

namespace envmon::daemon {

inline constexpr std::uint32_t kFrameLogMagic = 0x4546564Cu;  // "EVFL" (LE bytes)
inline constexpr std::uint32_t kFrameLogVersion = 1;

// The protocol-affecting server configuration, embedded in the capture
// header so replay handshakes land on the same version and capability
// decisions the live server made.
struct FrameLogHeader {
  std::uint32_t ver_min = kProtocolVersionMin;
  std::uint32_t ver_max = kProtocolVersionMax;
  std::uint32_t caps_supported = kCapDictSync | kCapDurableFlush;
  std::uint32_t max_frame_bytes = 4u << 20;
  std::uint32_t max_batch_rows = 1u << 16;
  std::uint64_t credit_window_rows = 1u << 16;
};

class FrameLogWriter {
 public:
  FrameLogWriter() = default;
  ~FrameLogWriter();
  FrameLogWriter(const FrameLogWriter&) = delete;
  FrameLogWriter& operator=(const FrameLogWriter&) = delete;

  Status open(const std::string& path, const FrameLogHeader& header);
  // Thread-safe; entries land in call order.
  void append(std::uint32_t session_id, std::span<const std::uint8_t> payload);
  Status close();
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] std::uint64_t entries() const { return entries_; }

 private:
  std::mutex mutex_;
  int fd_ = -1;
  std::uint64_t entries_ = 0;
};

struct FrameLogEntry {
  std::uint32_t session_id = 0;
  std::vector<std::uint8_t> payload;
};

// Loads the clean prefix of a frame log; `truncated` reports whether a
// torn/corrupt tail was dropped.
struct FrameLog {
  FrameLogHeader header;
  std::vector<FrameLogEntry> entries;
};
[[nodiscard]] Result<FrameLog> read_frame_log(const std::string& path,
                                              bool* truncated = nullptr);

// Replays a capture into `db`: every logged frame is fed through a
// fresh SessionCore per session, batches apply synchronously in log
// order via insert_batch, flush barriers call db.flush() when durable.
// The resulting database state is byte-identical to the live run's (up
// to the last logged frame).
struct ReplayStats {
  std::uint64_t frames = 0;
  std::uint64_t batches = 0;
  std::uint64_t rows_accepted = 0;
  std::uint64_t rows_rejected = 0;
  std::uint64_t sessions = 0;
  std::uint64_t protocol_errors = 0;
};
Status replay_frame_log(const std::string& path, tsdb::EnvDatabase& db,
                        ReplayStats* stats = nullptr);

}  // namespace envmon::daemon
