#include "daemon/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace envmon::daemon {

namespace {

bool read_exact(int fd, std::uint8_t* buf, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::read(fd, buf + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::fail(Status status) {
  poisoned_ = true;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return status;
}

Status Client::send_payload(std::span<const std::uint8_t> payload) {
  if (!send_all(fd_, frame(payload))) {
    return fail(Status::unavailable(std::string("send: ") + std::strerror(errno)));
  }
  return Status::ok();
}

Status Client::read_payload(std::vector<std::uint8_t>& payload) {
  std::uint8_t header[kFrameHeaderBytes];
  if (!read_exact(fd_, header, sizeof header)) {
    return fail(Status::unavailable("connection closed by daemon"));
  }
  const FrameHeader h = decode_frame_header(header);
  if (h.payload_len == 0 || h.payload_len > (64u << 20)) {
    return fail(Status::data_loss("reply frame with absurd length"));
  }
  payload.resize(h.payload_len);
  if (!read_exact(fd_, payload.data(), payload.size())) {
    return fail(Status::unavailable("connection closed mid-frame"));
  }
  if (!frame_payload_ok(h, payload)) {
    return fail(Status::data_loss("reply frame checksum mismatch"));
  }
  return Status::ok();
}

Status Client::connect() {
  if (fd_ >= 0) return Status::failed_precondition("client already connected");
  poisoned_ = false;

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::invalid_argument("socket path empty or longer than sun_path");
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(), options_.socket_path.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::internal(std::string("socket: ") + std::strerror(errno));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return Status::unavailable("connect(" + options_.socket_path + "): " + err);
  }

  Hello hello;
  hello.ver_min = options_.ver_min;
  hello.ver_max = options_.ver_max;
  hello.caps_requested = options_.caps_requested;
  hello.tenant = options_.tenant;
  if (Status s = send_payload(encode_hello(hello)); !s.is_ok()) return s;

  std::vector<std::uint8_t> payload;
  if (Status s = read_payload(payload); !s.is_ok()) return s;
  if (const auto err = decode_error(payload)) return fail(err->to_status());
  const auto reply = decode_hello_reply(payload);
  if (!reply) return fail(Status::data_loss("malformed HelloReply"));

  handshaken_ = true;
  session_id_ = reply->session_id;
  version_ = reply->version;
  caps_ = reply->caps_granted;
  max_frame_bytes_ = reply->max_frame_bytes;
  max_batch_rows_ = reply->max_batch_rows;
  credit_window_rows_ = reply->credit_window_rows;
  credits_ = credit_window_rows_;
  return Status::ok();
}

Status Client::absorb_one_reply() {
  std::vector<std::uint8_t> payload;
  if (Status s = read_payload(payload); !s.is_ok()) return s;
  if (const auto err = decode_error(payload)) return fail(err->to_status());
  const auto reply = decode_batch_reply(payload);
  if (!reply) return fail(Status::data_loss("expected BatchReply"));
  credits_ += reply->credits_released;
  totals_.rows_accepted += reply->accepted;
  for (const auto& [code, count] : reply->rejected) {
    totals_.rows_rejected += count;
    totals_.rejected_by_code[status_code_to_wire(code)] += count;
  }
  if (outstanding_batches_ > 0) --outstanding_batches_;
  return Status::ok();
}

Status Client::send_batch(std::span<const tsdb::Record> records) {
  if (!connected()) return Status::failed_precondition("not connected");
  if (poisoned_) return Status::aborted("session poisoned by a prior error");
  const bool dict = (caps_ & kCapDictSync) != 0;

  std::size_t offset = 0;
  while (offset < records.size()) {
    const std::size_t chunk_rows =
        std::min<std::size_t>(records.size() - offset, max_batch_rows_);
    const auto chunk = records.subspan(offset, chunk_rows);

    if (dict) {
      id_scratch_.clear();
      id_scratch_.reserve(chunk.size());
      for (const auto& rec : chunk) {
        auto it = metric_ids_.find(rec.metric);
        if (it == metric_ids_.end()) {
          const auto id = static_cast<std::uint32_t>(metric_ids_.size());
          it = metric_ids_.emplace(rec.metric, id).first;
          if (Status s = send_payload(encode_metric_def(MetricDef{id, rec.metric}));
              !s.is_ok()) {
            return s;
          }
        }
        id_scratch_.push_back(it->second);
      }
    }

    while (credits_ < chunk.size()) {
      if (Status s = absorb_one_reply(); !s.is_ok()) return s;
    }

    const auto payload =
        encode_insert_batch(next_batch_seq_, chunk, dict, id_scratch_);
    if (Status s = send_payload(payload); !s.is_ok()) return s;
    ++next_batch_seq_;
    ++outstanding_batches_;
    credits_ -= chunk.size();
    ++totals_.batches_sent;
    totals_.rows_sent += chunk.size();
    offset += chunk_rows;
  }
  return Status::ok();
}

Status Client::drain() {
  if (!connected()) return Status::failed_precondition("not connected");
  while (outstanding_batches_ > 0) {
    if (Status s = absorb_one_reply(); !s.is_ok()) return s;
  }
  return Status::ok();
}

Result<FlushReply> Client::flush() {
  if (Status s = drain(); !s.is_ok()) return s;
  if ((caps_ & kCapDurableFlush) == 0) {
    return Status::unsupported("daemon did not grant the durable-flush capability");
  }
  const std::uint64_t token = ++flush_token_;
  if (Status s = send_payload(encode_flush(FlushRequest{token})); !s.is_ok()) return s;
  std::vector<std::uint8_t> payload;
  if (Status s = read_payload(payload); !s.is_ok()) return s;
  if (const auto err = decode_error(payload)) return fail(err->to_status());
  const auto reply = decode_flush_reply(payload);
  if (!reply || reply->token != token) {
    return fail(Status::data_loss("malformed or mismatched FlushReply"));
  }
  return *reply;
}

Status Client::ping() {
  if (Status s = drain(); !s.is_ok()) return s;
  const std::uint64_t nonce = ++nonce_;
  if (Status s = send_payload(encode_ping(nonce)); !s.is_ok()) return s;
  std::vector<std::uint8_t> payload;
  if (Status s = read_payload(payload); !s.is_ok()) return s;
  if (const auto err = decode_error(payload)) return fail(err->to_status());
  const auto pong = decode_pong(payload);
  if (!pong || *pong != nonce) return fail(Status::data_loss("mismatched Pong"));
  return Status::ok();
}

Status Client::close() {
  if (fd_ < 0) return Status::ok();
  Status drained = outstanding_batches_ > 0 && !poisoned_ ? drain() : Status::ok();
  if (drained.is_ok() && !poisoned_) {
    if (Status s = send_payload(encode_goodbye()); s.is_ok()) {
      std::vector<std::uint8_t> payload;
      (void)read_payload(payload);  // GoodbyeReply; best effort
    }
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  handshaken_ = false;
  return drained;
}

}  // namespace envmon::daemon
