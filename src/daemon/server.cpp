#include "daemon/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace envmon::daemon {

namespace {

bool read_exact(int fd, std::uint8_t* buf, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::read(fd, buf + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // peer closed (a torn frame is discarded)
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TokenBucket::TokenBucket(double rows_per_sec, double burst_rows)
    : rate_(rows_per_sec),
      burst_(burst_rows > 0.0 ? burst_rows : rows_per_sec),
      tokens_(burst_),
      last_(std::chrono::steady_clock::now()) {}

double TokenBucket::acquire(std::uint64_t rows) {
  if (rate_ <= 0.0) return 0.0;
  double wait_seconds = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto now = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(now - last_).count();
    last_ = now;
    tokens_ = std::min(burst_, tokens_ + rate_ * dt);
    tokens_ -= static_cast<double>(rows);
    if (tokens_ < 0.0) wait_seconds = -tokens_ / rate_;
  }
  if (wait_seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(wait_seconds));
  }
  return wait_seconds;
}

Server::SessionState::~SessionState() {
  if (fd >= 0) ::close(fd);
}

Server::Server(tsdb::EnvDatabase& db, ServerOptions options)
    : db_(&db), options_(std::move(options)), queue_(options_.queue_capacity) {
  auto& reg = obs::default_registry();
  m_sessions_ = &reg.counter("envmond_sessions_total", "Sessions accepted by envmond");
  m_active_ = &reg.gauge("envmond_active_sessions", "Sessions currently connected");
  m_frames_ = &reg.counter("envmond_frames_total", "Protocol frames received");
  m_batches_ = &reg.counter("envmond_batches_total", "Insert batches applied");
  m_rows_accepted_ = &reg.counter("envmond_rows_accepted_total", "Rows accepted into the store");
  m_rows_rejected_ = &reg.counter("envmond_rows_rejected_total", "Rows rejected by the store");
  m_protocol_errors_ =
      &reg.counter("envmond_protocol_errors_total", "Sessions killed by protocol violations");
  m_flushes_ = &reg.counter("envmond_flushes_total", "Durable flush barriers served");
  m_throttle_waits_ =
      &reg.counter("envmond_throttle_waits_total", "Batches delayed by tenant rate limits");
  m_throttle_seconds_ =
      &reg.gauge("envmond_throttle_seconds", "Cumulative seconds spent in tenant throttling");
}

Server::~Server() { stop(); }

Status Server::start() {
  if (running_.load()) return Status::failed_precondition("server already started");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::invalid_argument("socket path empty or longer than sun_path");
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(), options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::internal(std::string("socket: ") + std::strerror(errno));
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::internal("bind(" + options_.socket_path + "): " + err);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::internal("listen: " + err);
  }

  if (!options_.frame_log_path.empty()) {
    FrameLogHeader header;
    header.ver_min = options_.ver_min;
    header.ver_max = options_.ver_max;
    header.caps_supported = options_.caps;
    header.max_frame_bytes = options_.max_frame_bytes;
    header.max_batch_rows = options_.max_batch_rows;
    header.credit_window_rows = options_.credit_window_rows;
    Status s = frame_log_.open(options_.frame_log_path, header);
    if (!s.is_ok()) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return s;
    }
  }

  stopping_.store(false);
  running_.store(true);
  pump_thread_ = std::thread([this] { pump_loop(); });
  listen_thread_ = std::thread([this] { listen_loop(); });
  return Status::ok();
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  if (listen_thread_.joinable()) listen_thread_.join();

  // Wake every session thread blocked in read(2); they drain their
  // final submissions and exit.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto& weak : sessions_) {
      if (auto s = weak.lock()) ::shutdown(s->fd, SHUT_RDWR);
    }
    threads.swap(session_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }

  queue_.close();
  if (pump_thread_.joinable()) pump_thread_.join();

  if (options_.flush_on_stop && db_->durable()) {
    if (db_->flush().is_ok()) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.flushes;
    }
  }
  (void)frame_log_.close();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(options_.socket_path.c_str());
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

TokenBucket& Server::bucket_for(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(buckets_mutex_);
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    TenantPolicy policy = options_.default_policy;
    if (auto pit = options_.tenant_policies.find(tenant); pit != options_.tenant_policies.end()) {
      policy = pit->second;
    }
    it = buckets_
             .emplace(tenant,
                      std::make_unique<TokenBucket>(policy.rows_per_sec, policy.burst_rows))
             .first;
  }
  return *it->second;
}

void Server::listen_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 200);
    if (pr <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    SessionCore::Config cfg;
    cfg.server_ver_min = options_.ver_min;
    cfg.server_ver_max = options_.ver_max;
    cfg.caps_supported = options_.caps;
    cfg.max_frame_bytes = options_.max_frame_bytes;
    cfg.max_batch_rows = options_.max_batch_rows;
    cfg.credit_window_rows = options_.credit_window_rows;

    std::lock_guard<std::mutex> lock(sessions_mutex_);
    cfg.session_id = next_session_id_;
    auto session = std::make_shared<SessionState>(fd, cfg);
    ++next_session_id_;
    sessions_.push_back(session);
    session_threads_.emplace_back([this, session] { session_loop(session); });
    m_sessions_->inc();
    m_active_->add(1.0);
    {
      std::lock_guard<std::mutex> slock(stats_mutex_);
      ++stats_.sessions_accepted;
    }
  }
}

bool Server::send_payload(SessionState& session, std::span<const std::uint8_t> payload) {
  if (session.dead.load()) return false;
  const std::vector<std::uint8_t> framed = frame(payload);
  std::lock_guard<std::mutex> lock(session.write_mutex);
  if (!send_all(session.fd, framed)) {
    session.dead.store(true);
    return false;
  }
  return true;
}

bool Server::submit(const std::shared_ptr<SessionState>& session, Pending::Kind kind,
                    std::uint64_t seq_or_token, std::vector<tsdb::Record>&& records,
                    std::span<const std::uint8_t> payload) {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  fleet::EpochBatch batch;
  batch.epoch = next_submit_seq_;
  batch.rows = records.size();
  if (kind == Pending::Kind::kBatch) {
    fleet::NodeBatch node;
    node.node = static_cast<int>(session->id);
    node.records = std::move(records);
    batch.nodes.push_back(std::move(node));
  }
  {
    std::lock_guard<std::mutex> plock(pending_mutex_);
    pending_.push_back(Pending{kind, session, seq_or_token, batch.rows});
  }
  if (!queue_.push(std::move(batch))) {
    // Shutdown race: the descriptor we just appended is still the
    // newest (submit_mutex_ is held), and its batch never entered the
    // queue, so the pump cannot have consumed it.
    std::lock_guard<std::mutex> plock(pending_mutex_);
    pending_.pop_back();
    return false;
  }
  ++next_submit_seq_;
  frame_log_.append(session->id, payload);
  return true;
}

void Server::session_loop(std::shared_ptr<SessionState> session) {
  std::vector<std::uint8_t> header(kFrameHeaderBytes);
  std::vector<std::uint8_t> payload;
  TokenBucket* bucket = nullptr;

  while (!session->dead.load()) {
    if (!read_exact(session->fd, header.data(), header.size())) break;
    const FrameHeader h = decode_frame_header(header);
    const std::uint32_t limit =
        session->core.handshaken() ? options_.max_frame_bytes : kHelloMaxFrameBytes;
    if (h.payload_len == 0 || h.payload_len > limit) {
      const auto err = encode_error(ErrorReply{
          StatusCode::kOutOfRange, "frame of " + std::to_string(h.payload_len) +
                                       " bytes outside the negotiated limit of " +
                                       std::to_string(limit)});
      (void)send_payload(*session, err);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.protocol_errors;
      }
      m_protocol_errors_->inc();
      break;
    }
    payload.resize(h.payload_len);
    if (!read_exact(session->fd, payload.data(), payload.size())) break;
    if (!frame_payload_ok(h, payload)) {
      const auto err =
          encode_error(ErrorReply{StatusCode::kDataLoss, "frame checksum mismatch"});
      (void)send_payload(*session, err);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.protocol_errors;
      }
      m_protocol_errors_->inc();
      break;
    }
    m_frames_->inc();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.frames;
    }

    const bool was_handshaken = session->core.handshaken();
    SessionCore::Action action;
    {
      std::lock_guard<std::mutex> lock(session->core_mutex);
      action = session->core.on_frame(payload);
    }

    // Tenant gate: policy lives in the server, not the state machine.
    if (!was_handshaken && session->core.handshaken() && options_.require_known_tenant &&
        options_.tenant_policies.find(session->core.tenant()) ==
            options_.tenant_policies.end()) {
      const auto err = encode_error(
          ErrorReply{StatusCode::kUnauthenticated,
                     "unknown tenant \"" + session->core.tenant() + "\""});
      (void)send_payload(*session, err);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.protocol_errors;
      }
      m_protocol_errors_->inc();
      break;
    }

    for (const auto& reply : action.replies) {
      if (!send_payload(*session, reply)) break;
    }

    const bool is_submission = action.batch.has_value() || action.flush_token.has_value();
    if (action.batch.has_value()) {
      if (bucket == nullptr) bucket = &bucket_for(session->core.tenant());
      const double waited = bucket->acquire(action.batch->records.size());
      if (waited > 0.0) {
        m_throttle_waits_->inc();
        m_throttle_seconds_->add(waited);
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.throttle_waits;
        stats_.throttle_seconds += waited;
      }
      if (!submit(session, Pending::Kind::kBatch, action.batch->batch_seq,
                  std::move(action.batch->records), payload)) {
        break;  // queue closed: shutting down
      }
    } else if (action.flush_token.has_value()) {
      if (!submit(session, Pending::Kind::kFlush, *action.flush_token, {}, payload)) break;
    }
    if (!is_submission) {
      // Hello, MetricDef, Ping, Goodbye — and rejected frames, so a
      // replay hits the identical protocol error.  Submissions are
      // logged inside submit() where their global order is fixed.
      frame_log_.append(session->id, payload);
    }

    if (action.close) break;
  }

  session->dead.store(true);
  ::shutdown(session->fd, SHUT_RDWR);
  {
    // Violations the state machine counted (malformed frames, sequence
    // and credit overruns) fold into the server totals on exit.
    std::lock_guard<std::mutex> lock(session->core_mutex);
    const std::uint64_t errs = session->core.protocol_errors();
    std::lock_guard<std::mutex> slock(stats_mutex_);
    stats_.protocol_errors += errs;
  }
  if (session->core.protocol_errors() > 0) m_protocol_errors_->inc();
  m_active_->add(-1.0);
}

void Server::pump_loop() {
  while (auto batch = queue_.pop()) {
    Pending pending;
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending = std::move(pending_.front());
      pending_.pop_front();
    }
    if (pending.kind == Pending::Kind::kBatch) {
      const auto result =
          db_->insert_batch(batch->nodes.empty() ? std::span<const tsdb::Record>{}
                                                 : std::span<const tsdb::Record>(
                                                       batch->nodes.front().records));
      rows_total_ += result.accepted;
      m_batches_->inc();
      m_rows_accepted_->inc(result.accepted);
      m_rows_rejected_->inc(result.rejected());
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.batches;
        stats_.rows_accepted += result.accepted;
        stats_.rows_rejected += result.rejected();
      }
      std::vector<std::uint8_t> reply;
      {
        std::lock_guard<std::mutex> lock(pending.session->core_mutex);
        reply = pending.session->core.make_batch_reply(pending.batch_seq, result, pending.rows);
        pending.session->core.release_credits(pending.rows);
      }
      (void)send_payload(*pending.session, reply);
    } else {
      bool durable = db_->durable();
      if (durable) {
        durable = db_->flush().is_ok();
        if (durable) {
          m_flushes_->inc();
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.flushes;
        }
      }
      std::vector<std::uint8_t> reply;
      {
        std::lock_guard<std::mutex> lock(pending.session->core_mutex);
        reply = pending.session->core.make_flush_reply(pending.batch_seq, rows_total_, durable);
      }
      (void)send_payload(*pending.session, reply);
    }
  }
}

}  // namespace envmon::daemon
