#pragma once
// envmond session protocol state machine — socket-free.
//
// One SessionCore per connected client.  The live server feeds it
// received frame payloads and performs the actions it returns; the
// frame-log replayer (framelog.hpp) feeds it the same payloads from a
// capture and applies batches synchronously.  Keeping the machine free
// of file descriptors is what makes a captured session a deterministic
// test fixture: replay exercises exactly the code the live path ran.
//
// States: AwaitHello -> Streaming -> Closed.  Any protocol violation
// (bad magic, disjoint versions, unknown tenant, out-of-sequence batch,
// undefined metric id, credit overrun, malformed payload) produces a
// typed Error reply and closes the session — a stream that violated the
// protocol once cannot be trusted to stay framed.  Data-level rejects
// (out-of-order rows, rate limiting, injected outages) are NOT
// violations; they ride BatchReply as per-StatusCode counts.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "daemon/protocol.hpp"
#include "tsdb/database.hpp"

namespace envmon::daemon {

class SessionCore {
 public:
  struct Config {
    std::uint32_t server_ver_min = kProtocolVersionMin;
    std::uint32_t server_ver_max = kProtocolVersionMax;
    std::uint32_t caps_supported = kCapDictSync | kCapDurableFlush;
    std::uint32_t max_frame_bytes = 4u << 20;
    std::uint32_t max_batch_rows = 1u << 16;
    std::uint64_t credit_window_rows = 1u << 16;
    std::uint64_t session_id = 0;
  };

  // What the transport should do after feeding one frame.
  struct Action {
    // Encoded reply payloads to frame and send now, in order.
    std::vector<std::vector<std::uint8_t>> replies;
    // A validated batch to submit to the ingest pump; its BatchReply is
    // deferred until the pump applied it (make_batch_reply).
    std::optional<DecodedBatch> batch;
    // A flush barrier to submit; FlushReply deferred (make_flush_reply).
    std::optional<std::uint64_t> flush_token;
    bool goodbye = false;  // client asked to close cleanly
    bool close = false;    // tear the session down after sending replies
  };

  explicit SessionCore(Config config) : config_(config) {}

  // Feeds one received payload (framing already validated).
  [[nodiscard]] Action on_frame(std::span<const std::uint8_t> payload);

  // Transport-level failures detected outside the state machine.
  [[nodiscard]] Action on_transport_error(StatusCode code, std::string message);

  // Deferred replies, built by the ingest side after application.
  [[nodiscard]] std::vector<std::uint8_t> make_batch_reply(
      std::uint64_t batch_seq, const tsdb::EnvDatabase::BatchResult& result,
      std::uint64_t rows_released);
  [[nodiscard]] std::vector<std::uint8_t> make_flush_reply(std::uint64_t token,
                                                           std::uint64_t rows_total,
                                                           bool durable) const;

  // Credit bookkeeping (the transport serializes access).
  void release_credits(std::uint64_t rows) { outstanding_rows_ -= rows; }

  [[nodiscard]] bool handshaken() const { return state_ == State::kStreaming; }
  [[nodiscard]] bool closed() const { return state_ == State::kClosed; }
  [[nodiscard]] const std::string& tenant() const { return tenant_; }
  [[nodiscard]] std::uint32_t version() const { return version_; }
  [[nodiscard]] std::uint32_t caps() const { return caps_; }
  [[nodiscard]] std::uint64_t outstanding_rows() const { return outstanding_rows_; }
  [[nodiscard]] std::uint64_t protocol_errors() const { return protocol_errors_; }

 private:
  enum class State { kAwaitHello, kStreaming, kClosed };

  Action fail(StatusCode code, std::string message);
  Action handle_hello(std::span<const std::uint8_t> payload);
  Action handle_metric_def(std::span<const std::uint8_t> payload);
  Action handle_insert_batch(std::span<const std::uint8_t> payload);

  Config config_;
  State state_ = State::kAwaitHello;
  std::string tenant_;
  std::uint32_t version_ = 0;
  std::uint32_t caps_ = 0;
  // Client-id -> metric-name dictionary (kCapDictSync).  Ids must be
  // defined before use; redefinition with a different name is fatal.
  std::vector<std::string> dictionary_;
  std::uint64_t next_batch_seq_ = 1;
  std::uint64_t outstanding_rows_ = 0;
  std::uint64_t protocol_errors_ = 0;
};

}  // namespace envmon::daemon
