#include "sched/scheduler.hpp"

#include <algorithm>

namespace envmon::sched {

Scheduler::Scheduler(sim::Engine& engine, ElectricityPricing pricing,
                     SchedulerOptions options)
    : engine_(&engine), pricing_(std::move(pricing)), options_(options) {}

Status Scheduler::submit(Job job) {
  if (job.boards <= 0 || job.boards > options_.total_boards) {
    return Status::invalid_argument("job requests " + std::to_string(job.boards) + " of " +
                      std::to_string(options_.total_boards) + " boards");
  }
  if (job.duration.ns() <= 0) {
    return Status::invalid_argument("job duration must be positive");
  }
  if (job.submit < engine_->now()) {
    return Status::invalid_argument("job submitted in the past");
  }
  ++pending_;
  engine_->schedule_at(job.submit, [this, job] {
    queue_.push_back(job);
    try_start_jobs();
  });
  return Status::ok();
}

bool Scheduler::power_budget_allows(const Job& job) const {
  if (options_.policy != Policy::kPowerAware) return true;
  if (!pricing_.is_peak_at(engine_->now())) return true;
  const double projected =
      jobs_power_watts_ + job.watts_per_board * static_cast<double>(job.boards);
  return projected <= options_.peak_power_budget_watts;
}

void Scheduler::try_start_jobs() {
  // Strict FIFO: the head blocks the queue (no backfill), which keeps
  // the policy comparison clean.
  bool deferred_for_power = false;
  while (!queue_.empty()) {
    const Job& head = queue_.front();
    if (head.boards > options_.total_boards - boards_in_use_) break;
    if (!power_budget_allows(head)) {
      deferred_for_power = true;
      break;
    }
    start_job(head);
    queue_.pop_front();
  }
  if (deferred_for_power && !retry_timer_.active()) {
    // Wake when the tariff next gets cheaper and re-evaluate.
    const sim::SimTime retry = pricing_.next_cheaper_time(engine_->now());
    if (retry > engine_->now()) {
      retry_timer_ = engine_->schedule_at(retry, [this] {
        retry_timer_.cancel();
        try_start_jobs();
      });
    }
  }
}

void Scheduler::start_job(const Job& job) {
  const sim::SimTime start = engine_->now();
  const sim::SimTime end = start + job.duration;
  const double watts = job.watts_per_board * static_cast<double>(job.boards);

  boards_in_use_ += job.boards;
  jobs_power_watts_ += watts;
  if (pricing_.is_peak_at(start)) {
    peak_on_peak_watts_ = std::max(peak_on_peak_watts_, jobs_power_watts_);
  }

  JobRecord record;
  record.job = job;
  record.start = start;
  record.end = end;
  record.energy_mwh = watts * 1e-6 * job.duration.to_seconds() / 3600.0;
  record.cost_usd = pricing_.cost_usd(watts, start, end);
  completed_.push_back(record);
  const std::size_t index = completed_.size() - 1;

  engine_->schedule_at(end, [this, index] { finish_job(index); });
}

void Scheduler::finish_job(std::size_t record_index) {
  const JobRecord& record = completed_[record_index];
  boards_in_use_ -= record.job.boards;
  jobs_power_watts_ -=
      record.job.watts_per_board * static_cast<double>(record.job.boards);
  --pending_;
  try_start_jobs();
}

void Scheduler::run_to_completion() {
  while (pending_ > 0 && (engine_->pending_events() > 0 || !queue_.empty())) {
    if (engine_->pending_events() == 0) break;  // stuck: nothing can start
    engine_->run_until(engine_->now() + sim::Duration::seconds(60));
  }
}

Scheduler::Summary Scheduler::summary() const {
  Summary s;
  sim::SimTime last_end;
  sim::Duration wait_sum{};
  for (const auto& r : completed_) {
    s.total_job_cost_usd += r.cost_usd;
    s.total_energy_mwh += r.energy_mwh;
    last_end = std::max(last_end, r.end);
    wait_sum += r.wait();
  }
  s.makespan = last_end - sim::SimTime::zero();
  if (!completed_.empty()) {
    s.mean_wait =
        sim::Duration::nanos(wait_sum.ns() / static_cast<std::int64_t>(completed_.size()));
  }
  s.peak_on_peak_watts = peak_on_peak_watts_;
  return s;
}

}  // namespace envmon::sched
