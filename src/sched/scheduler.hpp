#pragma once
// Power-aware job scheduling on the simulated BG/Q.
//
// The closing of the paper's motivating loop (§I): environmental data →
// "useful, actionable information".  Jobs carry a per-board power
// estimate (learned from prior runs' MonEQ/BPM data); the scheduler
// decides when to start them against a board-capacity constraint and —
// in power-aware mode — an on-peak rack power budget, deferring
// power-hungry work to cheaper hours the way the authors' SC'13 system
// did (reported savings: up to 23% of the bill).

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "sched/pricing.hpp"
#include "sim/engine.hpp"

namespace envmon::sched {

struct Job {
  int id = 0;
  std::string name;
  int boards = 1;                  // node boards requested
  sim::Duration duration{};        // wall time once started
  double watts_per_board = 1500.0; // learned power estimate
  sim::SimTime submit;
};

struct JobRecord {
  Job job;
  sim::SimTime start;
  sim::SimTime end;
  double energy_mwh = 0.0;
  double cost_usd = 0.0;

  [[nodiscard]] sim::Duration wait() const { return start - job.submit; }
};

enum class Policy {
  kFcfs,        // start as soon as boards are free
  kPowerAware,  // additionally hold a rack power budget during on-peak
};

struct SchedulerOptions {
  Policy policy = Policy::kFcfs;
  int total_boards = 32;  // one rack
  // On-peak budget for job power (power-aware mode only).
  double peak_power_budget_watts = 24'000.0;
  // Idle floor power billed whether or not jobs run.
  double idle_watts = 27'000.0;
};

class Scheduler {
 public:
  Scheduler(sim::Engine& engine, ElectricityPricing pricing, SchedulerOptions options);

  // Enqueues a job for consideration at its submit time.
  Status submit(Job job);

  // Runs the simulation until all submitted jobs have completed.
  void run_to_completion();

  [[nodiscard]] const std::vector<JobRecord>& completed() const { return completed_; }
  [[nodiscard]] int boards_in_use() const { return boards_in_use_; }
  [[nodiscard]] double jobs_power_watts() const { return jobs_power_watts_; }

  // Aggregate results.
  struct Summary {
    double total_job_cost_usd = 0.0;
    double total_energy_mwh = 0.0;
    sim::Duration makespan{};
    sim::Duration mean_wait{};
    double peak_on_peak_watts = 0.0;  // max job power observed during on-peak
  };
  [[nodiscard]] Summary summary() const;

 private:
  void try_start_jobs();
  void start_job(const Job& job);
  void finish_job(std::size_t record_index);
  [[nodiscard]] bool power_budget_allows(const Job& job) const;

  sim::Engine* engine_;
  ElectricityPricing pricing_;
  SchedulerOptions options_;

  std::deque<Job> queue_;           // submitted, not yet started (FIFO)
  int boards_in_use_ = 0;
  double jobs_power_watts_ = 0.0;
  double peak_on_peak_watts_ = 0.0;
  std::vector<JobRecord> completed_;
  std::size_t pending_ = 0;  // submitted (incl. queued + running), not finished
  sim::TimerHandle retry_timer_;
};

}  // namespace envmon::sched
