#include "sched/pricing.hpp"

#include <algorithm>
#include <cmath>

namespace envmon::sched {

namespace {
constexpr double kHoursPerDay = 24.0;

double hour_of_day(sim::SimTime t) {
  const double hours = t.to_seconds() / 3600.0;
  return hours - std::floor(hours / kHoursPerDay) * kHoursPerDay;
}
}  // namespace

Result<ElectricityPricing> ElectricityPricing::create(std::vector<TariffPeriod> periods) {
  if (periods.empty()) {
    return Status::invalid_argument("tariff needs at least one period");
  }
  if (periods.front().start_hour != 0.0) {
    return Status::invalid_argument("first tariff period must start at hour 0");
  }
  for (std::size_t i = 0; i < periods.size(); ++i) {
    if (periods[i].start_hour < 0.0 || periods[i].start_hour >= kHoursPerDay) {
      return Status::invalid_argument("tariff start hour outside [0,24)");
    }
    if (i > 0 && periods[i].start_hour <= periods[i - 1].start_hour) {
      return Status::invalid_argument("tariff periods must be ascending");
    }
    if (periods[i].usd_per_mwh < 0.0) {
      return Status::invalid_argument("negative price");
    }
  }
  return ElectricityPricing(std::move(periods));
}

ElectricityPricing ElectricityPricing::default_day_ahead() {
  auto pricing = create({
      {0.0, 34.0, "off-peak"},
      {6.0, 88.0, "on-peak"},
      {22.0, 34.0, "off-peak"},
  });
  return pricing.value();
}

std::size_t ElectricityPricing::period_index(double hour) const {
  std::size_t idx = 0;
  for (std::size_t i = 0; i < periods_.size(); ++i) {
    if (periods_[i].start_hour <= hour) idx = i;
  }
  return idx;
}

const TariffPeriod& ElectricityPricing::period_at(sim::SimTime t) const {
  return periods_[period_index(hour_of_day(t))];
}

double ElectricityPricing::usd_per_mwh_at(sim::SimTime t) const {
  return period_at(t).usd_per_mwh;
}

bool ElectricityPricing::is_peak_at(sim::SimTime t) const {
  // "Peak" = the most expensive rate in the tariff.
  double max_rate = 0.0;
  for (const auto& p : periods_) max_rate = std::max(max_rate, p.usd_per_mwh);
  return usd_per_mwh_at(t) >= max_rate;
}

double ElectricityPricing::cost_usd(double watts, sim::SimTime t0, sim::SimTime t1) const {
  if (t1 <= t0 || watts <= 0.0) return 0.0;
  // Step through period boundaries.
  double cost = 0.0;
  sim::SimTime cursor = t0;
  while (cursor < t1) {
    const double hour = hour_of_day(cursor);
    const std::size_t idx = period_index(hour);
    const double next_boundary_hour =
        idx + 1 < periods_.size() ? periods_[idx + 1].start_hour : kHoursPerDay;
    const double hours_left_in_period = next_boundary_hour - hour;
    const sim::SimTime period_end =
        cursor + sim::Duration::from_seconds(hours_left_in_period * 3600.0);
    const sim::SimTime seg_end = std::min(period_end, t1);
    const double mwh = watts * 1e-6 * (seg_end - cursor).to_seconds() / 3600.0;
    cost += mwh * periods_[idx].usd_per_mwh;
    if (seg_end == cursor) break;  // defensive: avoid infinite loop
    cursor = seg_end;
  }
  return cost;
}

sim::SimTime ElectricityPricing::next_cheaper_time(sim::SimTime t) const {
  const double now_rate = usd_per_mwh_at(t);
  sim::SimTime cursor = t;
  const sim::SimTime horizon = t + sim::Duration::from_seconds(kHoursPerDay * 3600.0);
  while (cursor < horizon) {
    const double hour = hour_of_day(cursor);
    const std::size_t idx = period_index(hour);
    const double next_boundary_hour =
        idx + 1 < periods_.size() ? periods_[idx + 1].start_hour : kHoursPerDay;
    cursor = cursor + sim::Duration::from_seconds((next_boundary_hour - hour) * 3600.0);
    if (usd_per_mwh_at(cursor) < now_rate) return cursor;
  }
  return t;  // no cheaper period exists (flat tariff)
}

}  // namespace envmon::sched
