#pragma once
// Dynamic electricity pricing.
//
// The paper's motivation (§I) cites the authors' SC'13 work "Integrating
// dynamic pricing of electricity into energy aware scheduling for HPC
// systems", which used BG/Q power data to cut the electricity bill by up
// to 23%.  This models the price signal: a repeating daily tariff of
// named periods, each with a $/MWh rate.

#include <string>
#include <vector>

#include "common/status.hpp"
#include "sim/time.hpp"

namespace envmon::sched {

struct TariffPeriod {
  double start_hour = 0.0;  // within the day, [0, 24)
  double usd_per_mwh = 0.0;
  std::string name;         // "off-peak", "on-peak", ...
};

class ElectricityPricing {
 public:
  // Periods must be sorted by start_hour, first at 0.0.
  static Result<ElectricityPricing> create(std::vector<TariffPeriod> periods);

  // A typical day-ahead shape: off-peak until 6h, on-peak 6-22h, off-peak
  // after (rates roughly matching mid-2010s PJM averages).
  [[nodiscard]] static ElectricityPricing default_day_ahead();

  [[nodiscard]] double usd_per_mwh_at(sim::SimTime t) const;
  [[nodiscard]] const TariffPeriod& period_at(sim::SimTime t) const;
  [[nodiscard]] bool is_peak_at(sim::SimTime t) const;

  // Cost of drawing `watts` continuously over [t0, t1), integrating the
  // tariff exactly across period boundaries.
  [[nodiscard]] double cost_usd(double watts, sim::SimTime t0, sim::SimTime t1) const;

  // Next instant at or after t where the price becomes cheaper than at t
  // (used by deferring schedulers).  Never more than one day ahead.
  [[nodiscard]] sim::SimTime next_cheaper_time(sim::SimTime t) const;

 private:
  explicit ElectricityPricing(std::vector<TariffPeriod> periods)
      : periods_(std::move(periods)) {}

  [[nodiscard]] std::size_t period_index(double hour_of_day) const;

  std::vector<TariffPeriod> periods_;
};

}  // namespace envmon::sched
