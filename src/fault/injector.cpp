#include "fault/injector.hpp"

#include <algorithm>

#include "obs/export.hpp"

namespace envmon::fault {

namespace {

// Stable 64-bit FNV-1a so a site's RNG stream depends only on (seed,
// name), never on schedule or intercept order.
std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Injector::Injector(sim::Engine& engine, std::uint64_t seed)
    : engine_(&engine), seed_(seed) {}

Injector::Site& Injector::site(std::string_view name) {
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    it = sites_.try_emplace(std::string(name)).first;
    it->second.rng.reseed(seed_ ^ hash_name(name));
    if (obs::enabled()) {
      it->second.injected_metric = &obs::default_registry().counter(
          "envmon_fault_injected_total", "Faults injected into backend-facing surfaces",
          obs::label("site", name));
    }
  }
  return it->second;
}

void Injector::fail_next(std::string_view s, StatusCode code, std::string message,
                         int count) {
  Site& st = site(s);
  st.fail_next += count;
  st.fail_next_code = code;
  st.fail_next_message = std::move(message);
}

void Injector::fail_between(std::string_view s, sim::SimTime from, sim::SimTime to,
                            StatusCode code, std::string message) {
  site(s).failures.push_back(FailWindow{from, to, code, std::move(message), 1.0});
}

void Injector::kill_at(std::string_view s, sim::SimTime at, std::string message) {
  Site& st = site(s);
  st.kill_time = at;
  st.kill_message = std::move(message);
}

void Injector::revive_at(std::string_view s, sim::SimTime at) { site(s).revive_time = at; }

void Injector::flap_between(std::string_view s, sim::SimTime from, sim::SimTime to,
                            double fail_probability, StatusCode code, std::string message) {
  site(s).failures.push_back(
      FailWindow{from, to, code, std::move(message), std::clamp(fail_probability, 0.0, 1.0)});
}

void Injector::delay_between(std::string_view s, sim::SimTime from, sim::SimTime to,
                             sim::Duration extra) {
  site(s).delays.push_back(DelayWindow{from, to, extra});
}

void Injector::corrupt_between(std::string_view s, sim::SimTime from, sim::SimTime to,
                               double scale, double offset) {
  site(s).corruptions.push_back(CorruptWindow{from, to, scale, offset});
}

void Injector::note_injection(Site& s, std::string_view name, std::string_view what) {
  ++s.injected;
  ++injected_total_;
  if (s.injected_metric != nullptr) s.injected_metric->inc();
  if (tracer_ != nullptr) {
    tracer_->event("fault.inject", std::string(name) + ": " + std::string(what));
  }
  if (recorder_ != nullptr) {
    recorder_->record(engine_->now(), recorder_node_, "fault", "fault.inject",
                      std::string(name) + ": " + std::string(what));
  }
}

Outcome Injector::intercept(std::string_view name) {
  // Sites with nothing scheduled stay clean, but still count their
  // traffic — intercepts() is how tests prove a hook is actually wired.
  Site& s = site(name);
  ++s.intercepts;
  const sim::SimTime now = engine_->now();

  Outcome out;
  for (const DelayWindow& w : s.delays) {
    if (now >= w.from && now < w.to) out.extra_latency += w.extra;
  }

  // Failure rules, strongest claim first.
  const bool killed = s.kill_time && now >= *s.kill_time &&
                      !(s.revive_time && now >= *s.revive_time);
  if (killed) {
    out.status = Status::unavailable(s.kill_message);
    note_injection(s, name, "kill");
  } else if (s.fail_next > 0) {
    --s.fail_next;
    out.status = Status(s.fail_next_code, s.fail_next_message);
    note_injection(s, name, "transient");
  } else {
    for (const FailWindow& w : s.failures) {
      if (now < w.from || now >= w.to) continue;
      // Flap windows draw; scheduled windows always fire.  The draw is
      // consumed only for operations inside the window, so schedules on
      // other sites never perturb this stream.
      if (w.probability >= 1.0 || s.rng.uniform() < w.probability) {
        out.status = Status(w.code, w.message);
        note_injection(s, name, w.probability >= 1.0 ? "window" : "flap");
        break;
      }
    }
  }

  if (out.status.is_ok()) {
    for (const CorruptWindow& w : s.corruptions) {
      if (now >= w.from && now < w.to) {
        out.corrupted = true;
        out.scale *= w.scale;
        out.offset = out.offset * w.scale + w.offset;
      }
    }
    if (out.corrupted) note_injection(s, name, "corrupt");
  }
  if (out.status.is_ok() && !out.corrupted && out.extra_latency.ns() > 0) {
    note_injection(s, name, "delay");
  }
  return out;
}

std::uint64_t Injector::intercepts(std::string_view name) const {
  const auto it = sites_.find(name);
  return it == sites_.end() ? 0 : it->second.intercepts;
}

std::uint64_t Injector::injected(std::string_view name) const {
  const auto it = sites_.find(name);
  return it == sites_.end() ? 0 : it->second.injected;
}

}  // namespace envmon::fault
