#pragma once
// Deterministic fault injection for backend-facing surfaces.
//
// The paper's §IV "stated limitations" are a catalogue of the ways each
// vendor mechanism fails in the field: EMON returns nothing before its
// first generation, /dev/cpu/*/msr vanishes without root, NVML boards
// fall off the bus, the Phi's in-band path can stall for tens of
// milliseconds, daemons get oom-killed.  This module makes those failure
// modes *schedulable*: an Injector holds per-site fault scripts on the
// virtual clock, and every instrumented surface (RAPL MSR reads, NVML
// calls, SCIF round trips, MICRAS pseudo-file reads, EMON snapshots,
// IPMB frames, tsdb inserts) asks it before completing an operation.
//
// Everything is deterministic: schedules are explicit, intermittent
// flapping draws from a per-site RNG forked from one seed by a stable
// hash of the site name, and time comes from the discrete-event engine —
// so a fault storm replays bit-identically given the same seed
// (the property bench/resilience_storm gates on).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/span.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace envmon::fault {

/// Canonical site names used by the built-in hooks.  Sites are free-form
/// strings; these constants just keep callers and schedules in agreement.
namespace sites {
inline constexpr std::string_view kRaplMsr = "rapl_msr";
inline constexpr std::string_view kNvml = "nvml";
inline constexpr std::string_view kMicScif = "mic_scif";
inline constexpr std::string_view kMicras = "mic_micras";
inline constexpr std::string_view kEmon = "bgq_emon";
inline constexpr std::string_view kIpmb = "ipmb";
inline constexpr std::string_view kTsdb = "tsdb";
}  // namespace sites

/// What one intercepted operation must do, decided by the Injector.
///
/// `status` is OK unless a failure fired; `extra_latency` models stalls
/// and timeouts and should be charged to the surface's cost meter even
/// when the operation otherwise succeeds; `corrupted` flags that the
/// surface should pass its reading through corrupt_value() before
/// returning it.
struct Outcome {
  Status status;
  sim::Duration extra_latency{};
  bool corrupted = false;
  double scale = 1.0;
  double offset = 0.0;

  /// Applies the scheduled corruption to a reading (identity when clean).
  [[nodiscard]] double corrupt_value(double v) const {
    return corrupted ? v * scale + offset : v;
  }
  [[nodiscard]] bool ok() const { return status.is_ok(); }
};

/// Scripted fault schedules, evaluated on the virtual clock.
///
/// All schedule methods may be called at any time, including mid-run
/// from engine callbacks.  Windows are half-open: [from, to).  A site
/// accumulates independent rule lists; on intercept() the rules compose
/// as: delays sum, the first matching failure rule (kill > fail_next >
/// fail window > flap) decides the status, and corruption applies only
/// to operations that still succeed.
class Injector {
 public:
  /// `engine` supplies the clock; `seed` drives every flap decision.
  explicit Injector(sim::Engine& engine, std::uint64_t seed = 0x5eedfa17u);

  /// When attached, every injected fault lands on the tracer's event
  /// ring as a "fault.inject" event (detail = "<site>: <what>").
  void attach_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// When attached, every injected fault is also recorded on the flight
  /// recorder as a deterministic "fault"/"fault.inject" event tagged with
  /// `node` (the owning fleet rank, or -1 for standalone use).
  void attach_recorder(obs::FlightRecorder* recorder, int node = -1) {
    recorder_ = recorder;
    recorder_node_ = node;
  }

  /// The next `count` operations at `site` fail with `code` (transient
  /// errors — a stray EINTR, one bad SCIF round trip).
  void fail_next(std::string_view site, StatusCode code, std::string message, int count = 1);

  /// Every operation inside [from, to) fails with `code` (a daemon
  /// restart window, a permissions change that gets rolled back).
  void fail_between(std::string_view site, sim::SimTime from, sim::SimTime to,
                    StatusCode code, std::string message);

  /// Permanent device loss from `at` on (XID-style bus fall-off).  A
  /// later revive_at() models re-seating the device.
  void kill_at(std::string_view site, sim::SimTime at, std::string message = "device lost");

  /// Ends an earlier kill_at() from `at` on.
  void revive_at(std::string_view site, sim::SimTime at);

  /// Intermittent flapping: inside [from, to) each operation fails with
  /// probability `fail_probability`, drawn from the site's seeded RNG —
  /// the nvidia-smi-style silent sample loss of arXiv:2312.02741.
  void flap_between(std::string_view site, sim::SimTime from, sim::SimTime to,
                    double fail_probability, StatusCode code, std::string message);

  /// Latency spike: operations inside [from, to) stall `extra` longer
  /// (the Phi's tens-of-milliseconds in-band holds).  Compose several
  /// overlapping windows to shape a spike.
  void delay_between(std::string_view site, sim::SimTime from, sim::SimTime to,
                     sim::Duration extra);

  /// Corrupt readings inside [from, to): surfaces report
  /// value * scale + offset (stuck-at scale=0, bias offset!=0, ...).
  void corrupt_between(std::string_view site, sim::SimTime from, sim::SimTime to,
                       double scale, double offset = 0.0);

  /// Decides the fate of one operation at `site` at the engine's current
  /// virtual time.  Deterministic given the schedule, the seed, and the
  /// call sequence.  Unknown sites are clean (hooks can stay attached
  /// with nothing scheduled).
  [[nodiscard]] Outcome intercept(std::string_view site);

  /// Operations intercepted at `site` (clean or not).
  [[nodiscard]] std::uint64_t intercepts(std::string_view site) const;
  /// Operations at `site` that had a fault injected (failure, stall, or
  /// corruption).
  [[nodiscard]] std::uint64_t injected(std::string_view site) const;
  /// Faults injected across all sites.
  [[nodiscard]] std::uint64_t injected_total() const { return injected_total_; }

 private:
  struct FailWindow {
    sim::SimTime from, to;
    StatusCode code;
    std::string message;
    double probability = 1.0;  // < 1.0 for flap windows
  };
  struct DelayWindow {
    sim::SimTime from, to;
    sim::Duration extra;
  };
  struct CorruptWindow {
    sim::SimTime from, to;
    double scale, offset;
  };
  struct Site {
    int fail_next = 0;
    StatusCode fail_next_code = StatusCode::kUnavailable;
    std::string fail_next_message;
    std::optional<sim::SimTime> kill_time;
    std::optional<sim::SimTime> revive_time;
    std::string kill_message;
    std::vector<FailWindow> failures;  // scheduled + flap windows
    std::vector<DelayWindow> delays;
    std::vector<CorruptWindow> corruptions;
    Rng rng;
    std::uint64_t intercepts = 0;
    std::uint64_t injected = 0;
    obs::Counter* injected_metric = nullptr;
  };

  Site& site(std::string_view name);
  void note_injection(Site& s, std::string_view name, std::string_view what);

  sim::Engine* engine_;
  std::uint64_t seed_;
  obs::Tracer* tracer_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  int recorder_node_ = -1;
  std::map<std::string, Site, std::less<>> sites_;
  std::uint64_t injected_total_ = 0;
};

/// A named attach point owned by a backend-facing surface.
///
/// Surfaces hold a Hook and call intercept() at the top of each
/// operation; a detached hook (the default) is free and always clean, so
/// instrumented modules pay nothing when no injector is wired up.
class Hook {
 public:
  Hook() = default;

  /// Routes this surface's operations through `injector` under `site`.
  void attach(Injector& injector, std::string site) {
    injector_ = &injector;
    site_ = std::move(site);
  }
  void detach() { injector_ = nullptr; }
  [[nodiscard]] bool attached() const { return injector_ != nullptr; }

  /// Clean outcome when detached; the injector's verdict otherwise.
  [[nodiscard]] Outcome intercept() const {
    return injector_ == nullptr ? Outcome{} : injector_->intercept(site_);
  }

 private:
  Injector* injector_ = nullptr;
  std::string site_;
};

}  // namespace envmon::fault
