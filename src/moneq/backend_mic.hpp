#pragma once
// MonEQ backends for the Intel Xeon Phi: the in-band SysMgmt/SCIF path
// and the on-card MICRAS daemon path.  The paper profiles both and finds
// the trade-off of Fig 7: the API perturbs the card's power; the daemon
// is cheap but only reachable from code running on the card.

#include "mic/micras.hpp"
#include "mic/sysmgmt.hpp"
#include "moneq/backend.hpp"

namespace envmon::moneq {

class MicInbandBackend final : public Backend {
 public:
  explicit MicInbandBackend(mic::SysMgmtClient& client) : client_(&client) {}

  [[nodiscard]] std::string_view name() const override { return "mic_sysmgmt_api"; }
  [[nodiscard]] PlatformId platform() const override { return PlatformId::kXeonPhi; }

  // The card's internal sensor refreshes every ~50 ms; a 14.2 ms query
  // cost makes polling much below ~100 ms pure overhead anyway.
  [[nodiscard]] sim::Duration min_polling_interval() const override {
    return sim::Duration::millis(50);
  }

  [[nodiscard]] Result<std::vector<Sample>> collect(sim::SimTime now,
                                                    sim::CostMeter& meter) override;

  [[nodiscard]] BackendLimitations limitations() const override;

 private:
  mic::SysMgmtClient* client_;
};

class MicDaemonBackend final : public Backend {
 public:
  explicit MicDaemonBackend(mic::MicrasDaemon& daemon) : daemon_(&daemon) {}

  [[nodiscard]] std::string_view name() const override { return "mic_micras_daemon"; }
  [[nodiscard]] PlatformId platform() const override { return PlatformId::kXeonPhi; }

  [[nodiscard]] sim::Duration min_polling_interval() const override {
    return sim::Duration::millis(50);
  }

  [[nodiscard]] Result<std::vector<Sample>> collect(sim::SimTime now,
                                                    sim::CostMeter& meter) override;

  [[nodiscard]] BackendLimitations limitations() const override;

 private:
  mic::MicrasDaemon* daemon_;
};

}  // namespace envmon::moneq
