#include "moneq/capi.hpp"

namespace envmon::moneq::capi {

namespace {

struct Binding {
  NodeProfiler* profiler = nullptr;
  const smpi::FileSystemModel* fs = nullptr;
  OutputTarget* output = nullptr;
};

Binding& binding() {
  static Binding b;
  return b;
}

int from_status(const Status& s) {
  if (s.is_ok()) return kMonEQOk;
  switch (s.code()) {
    case StatusCode::kFailedPrecondition: return kMonEQErrState;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange: return kMonEQErrInvalid;
    default: return kMonEQErrBackend;
  }
}

}  // namespace

void MonEQ_Bind(NodeProfiler* profiler, const smpi::FileSystemModel* fs,
                OutputTarget* output) {
  binding() = Binding{profiler, fs, output};
}

NodeProfiler* MonEQ_BoundProfiler() { return binding().profiler; }

int MonEQ_Initialize() {
  if (binding().profiler == nullptr) return kMonEQErrNotBound;
  return from_status(binding().profiler->initialize());
}

int MonEQ_Finalize() {
  if (binding().profiler == nullptr) return kMonEQErrNotBound;
  return from_status(binding().profiler->finalize(binding().fs, binding().output));
}

int MonEQ_SetPollingInterval(double seconds) {
  if (binding().profiler == nullptr) return kMonEQErrNotBound;
  if (seconds <= 0.0) return kMonEQErrInvalid;
  return from_status(
      binding().profiler->set_polling_interval(sim::Duration::from_seconds(seconds)));
}

int MonEQ_StartTag(const char* name) {
  if (binding().profiler == nullptr) return kMonEQErrNotBound;
  if (name == nullptr) return kMonEQErrInvalid;
  return from_status(binding().profiler->start_tag(name));
}

int MonEQ_EndTag(const char* name) {
  if (binding().profiler == nullptr) return kMonEQErrNotBound;
  if (name == nullptr) return kMonEQErrInvalid;
  return from_status(binding().profiler->end_tag(name));
}

}  // namespace envmon::moneq::capi
