#include "moneq/profiler.hpp"

#include <algorithm>
#include <cmath>

#include "obs/export.hpp"

namespace envmon::moneq {

NodeProfiler::NodeProfiler(sim::Engine& engine, const smpi::World& world, int rank,
                           ProfilerOptions options)
    : engine_(&engine), world_(&world), rank_(rank), options_(options) {}

Status NodeProfiler::add_backend(Backend& backend) {
  if (initialized_) {
    return Status::failed_precondition("backends must be attached before initialize()");
  }
  backends_.push_back(&backend);
  return Status::ok();
}

sim::Duration NodeProfiler::effective_interval() const {
  if (options_.polling_interval) return *options_.polling_interval;
  // Default mode: "the lowest polling interval possible for the given
  // hardware" — across everything attached, the largest minimum wins so
  // no backend is polled below its floor.
  sim::Duration floor = sim::Duration::millis(1);
  for (const Backend* b : backends_) {
    floor = std::max(floor, b->min_polling_interval());
  }
  return floor;
}

Status NodeProfiler::set_polling_interval(sim::Duration interval) {
  if (initialized_) {
    return Status::failed_precondition("polling interval must be set before initialize()");
  }
  if (interval.ns() <= 0) {
    return Status::invalid_argument("polling interval must be positive");
  }
  for (const Backend* b : backends_) {
    if (interval < b->min_polling_interval()) {
      return Status::out_of_range(std::string(b->name()) + ": interval below the hardware floor of " +
                        std::to_string(b->min_polling_interval().to_millis()) + " ms");
    }
    const sim::Duration max = b->max_polling_interval();
    if (max.ns() > 0 && interval > max) {
      return Status::out_of_range(std::string(b->name()) + ": interval above " +
                        std::to_string(max.to_seconds()) +
                        " s would corrupt the data (counter overfill)");
    }
  }
  options_.polling_interval = interval;
  return Status::ok();
}

Status NodeProfiler::initialize() {
  if (initialized_) {
    return Status::failed_precondition("profiler already initialized");
  }
  if (backends_.empty()) {
    return Status::failed_precondition("no collection backend attached");
  }
  interval_ = effective_interval();

  // Memory overhead is constant with respect to scale: the whole sample
  // array is allocated here, once.  In spool mode the buffer drains
  // every release_samples(), so it only ever holds one drain interval's
  // worth — pre-reserving max_samples would defeat the point.
  if (!options_.spool_samples) samples_.reserve(options_.max_samples);
  if (options_.spool_samples) {
    if (options_.spool_reserve_bytes > 0) spool_.reserve(options_.spool_reserve_bytes);
    // The spool starts with the CSV header so take_file() can hand the
    // whole thing over by move, never copying the sample text.
    append_node_file_header(spool_);
  }

  int levels = 0;
  for (int n = world_->size() - 1; n > 0; n >>= 1) ++levels;
  init_cost_ = options_.init_base_cost + levels * options_.init_per_level_cost;

  if (obs::enabled()) {
    auto& registry =
        options_.registry != nullptr ? *options_.registry : obs::default_registry();
    polls_metric_ = &registry.counter("envmon_profiler_polls_total",
                                      "MonEQ profiler poll ticks executed");
    samples_metric_ = &registry.counter("envmon_profiler_samples_total",
                                        "Samples recorded into the profiler buffer");
    dropped_metric_ = &registry.counter("envmon_profiler_dropped_samples_total",
                                        "Samples dropped because the buffer was full");
    degraded_polls_metric_ =
        &registry.counter("envmon_profiler_degraded_polls_total",
                          "Poll ticks where at least one backend delivered nothing");
    buffer_hwm_metric_ = &registry.gauge("envmon_profiler_buffer_high_water",
                                         "Highest profiler buffer fill level seen");
    backend_metrics_.reserve(backends_.size());
    for (const Backend* backend : backends_) {
      const std::string labels = obs::label("backend", backend->name());
      BackendMetrics m;
      m.queries = &registry.counter("envmon_backend_queries_total",
                                    "Vendor-mechanism queries issued", labels);
      m.errors = &registry.counter("envmon_backend_query_errors_total",
                                   "Vendor-mechanism queries that failed", labels);
      m.latency_ms = &registry.histogram("envmon_backend_query_latency_ms",
                                         "Per-query collection cost in virtual ms",
                                         obs::Histogram::latency_bounds_ms(), labels);
      m.health = &registry.gauge(
          "envmon_backend_health",
          "Backend health state (0 healthy, 1 degraded, 2 quarantined, 3 recovered)",
          labels);
      m.retries = &registry.counter("envmon_backend_retries_total",
                                    "Bounded retry attempts after failed collects", labels);
      backend_metrics_.push_back(m);
    }
  } else {
    backend_metrics_.assign(backends_.size(), BackendMetrics{});
  }
  health_.assign(backends_.size(), BackendHealth(options_.degradation));
  gap_open_.assign(backends_.size(), false);

  timer_ = engine_->schedule_periodic(interval_, [this] { collect_now(); });
  initialized_ = true;
  return Status::ok();
}

void NodeProfiler::collect_now() {
  ++polls_;
  if (polls_metric_ != nullptr) polls_metric_->inc();
  obs::Tracer::Span poll_span;
  if (options_.tracer != nullptr) {
    poll_span = options_.tracer->span("moneq.poll");
  }
  bool all_delivered = true;
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (!poll_backend(i)) all_delivered = false;
  }
  if (!all_delivered) {
    ++degraded_polls_;
    if (degraded_polls_metric_ != nullptr) degraded_polls_metric_->inc();
  }
  if (buffer_hwm_metric_ != nullptr) {
    buffer_hwm_metric_->set_max(static_cast<double>(samples_.size()));
  }
}

void NodeProfiler::open_gap(std::size_t i, const std::string& reason) {
  gaps_.push_back(GapMarker{engine_->now(), std::string(backends_[i]->name()), true, reason});
  gap_open_[i] = true;
}

void NodeProfiler::close_gap(std::size_t i) {
  gaps_.push_back(GapMarker{engine_->now(), std::string(backends_[i]->name()), false, {}});
  gap_open_[i] = false;
}

bool NodeProfiler::poll_backend(std::size_t i) {
  Backend* backend = backends_[i];
  BackendHealth& health = health_[i];
  const BackendMetrics& metrics = backend_metrics_[i];
  const sim::SimTime now = engine_->now();
  const BackendState before = health.state();

  if (!health.should_poll(now)) {
    // Quarantined: the poll is suppressed outright — no query, no cost,
    // no error spam.  The gap opened when the failures began.
    if (metrics.health != nullptr) {
      metrics.health->set(static_cast<double>(health.state()));
    }
    return false;
  }

  bool delivered = false;
  std::string failure_reason;
  int retries_used = 0;
  for (;;) {
    obs::Tracer::Span query_span;
    if (options_.tracer != nullptr) {
      query_span = options_.tracer->span("backend.query", std::string(backend->name()));
    }
    const sim::Duration cost_before = collect_cost_.total();
    auto result = backend->collect(now, collect_cost_);
    const sim::Duration attempt_cost = collect_cost_.total() - cost_before;
    if (metrics.queries != nullptr) {
      metrics.queries->inc();
      metrics.latency_ms->observe(attempt_cost.to_millis());
    }
    query_span.end();
    if (retries_used > 0) health.spend_retry(attempt_cost);
    if (result) {
      for (auto& sample : result.value()) {
        // The cap is on lifetime samples, not buffer occupancy, so spool
        // mode drops at exactly the same point the unspooled path does.
        if (total_samples() >= options_.max_samples) {
          ++dropped_;
          if (dropped_metric_ != nullptr) dropped_metric_->inc();
          if (options_.tracer != nullptr) {
            options_.tracer->event("moneq.sample_dropped", sample.domain);
          }
          continue;
        }
        samples_.push_back(std::move(sample));
        if (samples_metric_ != nullptr) samples_metric_->inc();
      }
      delivered = true;
      break;
    }
    if (metrics.errors != nullptr) metrics.errors->inc();
    failure_reason = result.status().message();
    if (!health.may_retry(retries_used)) break;
    ++retries_used;
    if (metrics.retries != nullptr) metrics.retries->inc();
  }

  if (delivered) {
    health.on_poll_success(now);
    if (gap_open_[i]) close_gap(i);
  } else {
    health.on_poll_failure(now);
    if (!gap_open_[i]) open_gap(i, failure_reason);
  }
  if (health.state() != before) {
    const std::string transition = std::string(backend->name()) + ": " +
                                   std::string(to_string(before)) + " -> " +
                                   std::string(to_string(health.state()));
    if (options_.tracer != nullptr) {
      options_.tracer->event("backend.health", transition);
    }
    if (options_.recorder != nullptr) {
      options_.recorder->record(now, options_.recorder_node, "health", "backend.health",
                                transition);
    }
  }
  if (metrics.health != nullptr) {
    metrics.health->set(static_cast<double>(health.state()));
  }
  return delivered;
}

Status NodeProfiler::start_tag(const std::string& name) {
  if (!initialized_ || finalized_) {
    return Status::failed_precondition("tagging requires an active profiler");
  }
  tags_.push_back(TagMarker{engine_->now(), name, true});
  return Status::ok();
}

Status NodeProfiler::end_tag(const std::string& name) {
  if (!initialized_ || finalized_) {
    return Status::failed_precondition("tagging requires an active profiler");
  }
  // An end tag must close an open start tag of the same name.
  const auto open = std::count_if(tags_.begin(), tags_.end(), [&](const TagMarker& t) {
    return t.name == name && t.is_start;
  });
  const auto closed = std::count_if(tags_.begin(), tags_.end(), [&](const TagMarker& t) {
    return t.name == name && !t.is_start;
  });
  if (open <= closed) {
    return Status::failed_precondition("end tag without start: " + name);
  }
  tags_.push_back(TagMarker{engine_->now(), name, false});
  return Status::ok();
}

Status NodeProfiler::finalize(const smpi::FileSystemModel* fs, OutputTarget* target) {
  if (!initialized_) {
    return Status::failed_precondition("MonEQ_Finalize before initialize()");
  }
  if (finalized_) {
    return Status::failed_precondition("MonEQ already finalized");
  }
  timer_.cancel();
  finalized_ = true;

  // A backend still dark at shutdown leaves its gap open; close it at
  // the run's end so every GAP_START has a matching GAP_END on disk.
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (gap_open_[i]) close_gap(i);
  }

  // Every node writes its own file; the collective completes when the
  // slowest write does, so the same duration lands on every rank.
  const Bytes file_bytes{static_cast<double>(total_samples()) * options_.bytes_per_sample};
  finalize_cost_ = world_->barrier_cost();
  if (fs != nullptr) {
    finalize_cost_ += fs->time_to_write(world_->size(), file_bytes);
  }
  if (target != nullptr) {
    const Status s = target->write(node_file_name(rank_), render_file());
    if (!s.is_ok()) return s;
  }
  return Status::ok();
}

void NodeProfiler::release_samples() {
  if (samples_.empty()) return;
  append_sample_rows(spool_, samples_);
  released_samples_ += samples_.size();
  samples_.clear();
}

std::string NodeProfiler::render_file() const {
  std::string out;
  // In spool mode the header is already the spool's first row.
  if (!options_.spool_samples || spool_.empty()) append_node_file_header(out);
  out += spool_;
  append_sample_rows(out, samples_);
  append_marker_rows(out, tags_, gaps_);
  return out;
}

std::string NodeProfiler::take_file() {
  if (!options_.spool_samples || spool_.empty()) return render_file();
  release_samples();
  std::string out = std::move(spool_);
  spool_ = std::string();
  append_marker_rows(out, tags_, gaps_);
  return out;
}

OverheadReport NodeProfiler::overhead() const {
  OverheadReport report;
  report.initialize = init_cost_;
  report.collection = collect_cost_.total();
  report.finalize = finalize_cost_;
  report.polls = polls_;
  return report;
}

}  // namespace envmon::moneq
