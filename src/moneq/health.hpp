#pragma once
// Per-backend health state machines for graceful degradation.
//
// The paper's mechanisms fail independently — a daemon dies, a board
// falls off the bus, EMON has no generation yet — and MonEQ's job is to
// keep the surviving backends' series intact while the broken one is
// handled.  Each attached backend gets a BackendHealth that the profiler
// consults every poll:
//
//   healthy --fail--> degraded --N consecutive fails--> quarantined
//      ^                 |                                  |
//      |              success                         backoff elapses,
//      +----------------+                              probe the backend
//      ^                                                    |
//      |        probe success                               v
//      +---- recovered <------------------------------- (probe)
//                                          probe fail: re-quarantine with
//                                          doubled backoff (capped)
//
// Quarantine suppresses polls entirely (no cost charged, no error spam);
// retries within a poll are bounded per poll AND by a lifetime budget of
// virtual time, paid through the same cost meter as regular collection —
// a half-dead backend cannot silently eat the application's runtime.

#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace envmon::moneq {

enum class BackendState : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kQuarantined = 2,
  kRecovered = 3,
};

[[nodiscard]] constexpr std::string_view to_string(BackendState s) {
  switch (s) {
    case BackendState::kHealthy: return "healthy";
    case BackendState::kDegraded: return "degraded";
    case BackendState::kQuarantined: return "quarantined";
    case BackendState::kRecovered: return "recovered";
  }
  return "?";
}

// Fleet-level node liveness, one layer above the per-backend states.
// Driven by the fleet's heartbeat failure detector
// (fleet/failure_detector.hpp): a node heartbeats while at least one of
// its backends is not quarantined; confirmed consecutive misses walk the
// node Unknown/Alive -> Suspect -> Dead, and any heartbeat snaps it back
// to Alive (faults can revive a node mid-run).
enum class NodeLiveness : std::uint8_t {
  kUnknown = 0,  // no heartbeat heard yet
  kAlive = 1,
  kSuspect = 2,
  kDead = 3,
};

[[nodiscard]] constexpr std::string_view to_string(NodeLiveness s) {
  switch (s) {
    case NodeLiveness::kUnknown: return "unknown";
    case NodeLiveness::kAlive: return "alive";
    case NodeLiveness::kSuspect: return "suspect";
    case NodeLiveness::kDead: return "dead";
  }
  return "?";
}

/// Knobs for the degradation machinery.  The defaults are deliberately
/// conservative: one retry per poll, quarantine after three consecutive
/// failed polls, 1 s -> 60 s exponential backoff.
struct DegradationPolicy {
  /// Extra collect attempts after a failed one, within the same poll.
  int retries_per_poll = 1;
  /// Consecutive failed polls before the backend is quarantined.
  int polls_to_quarantine = 3;
  /// First quarantine window; doubles (by `backoff_factor`) every time a
  /// probe fails, up to `backoff_cap`.
  sim::Duration backoff_base = sim::Duration::seconds(1);
  double backoff_factor = 2.0;
  sim::Duration backoff_cap = sim::Duration::seconds(60);
  /// Lifetime ceiling on virtual time spent in retry attempts for one
  /// backend.  Exhausted budget means failed polls are accepted at first
  /// try — the state machine still runs, only the retries stop.
  sim::Duration retry_budget = sim::Duration::millis(50);
};

/// One backend's health, advanced by the profiler's poll outcomes.
class BackendHealth {
 public:
  explicit BackendHealth(DegradationPolicy policy = {})
      : policy_(policy), backoff_(policy.backoff_base) {}

  [[nodiscard]] BackendState state() const { return state_; }

  /// Whether the profiler should attempt a collect at `now`.  False only
  /// inside a quarantine backoff window; the first poll at or after the
  /// window's end is the recovery probe.
  [[nodiscard]] bool should_poll(sim::SimTime now) const {
    return state_ != BackendState::kQuarantined || now >= quarantine_until_;
  }

  /// Whether a failed collect may be retried, given how many retries this
  /// poll already used.  Both the per-poll bound and the lifetime budget
  /// must have room.
  [[nodiscard]] bool may_retry(int retries_this_poll) const {
    return retries_this_poll < policy_.retries_per_poll &&
           retry_spent_ < policy_.retry_budget;
  }

  /// Accounts one retry attempt costing `cost` of virtual time.
  void spend_retry(sim::Duration cost) {
    retry_spent_ += cost;
    ++retries_;
  }

  /// A poll delivered samples (possibly after retries).
  void on_poll_success(sim::SimTime now);
  /// A poll failed for good (all permitted retries exhausted).
  void on_poll_failure(sim::SimTime now);

  [[nodiscard]] int consecutive_failures() const { return consecutive_failures_; }
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] sim::Duration retry_budget_spent() const { return retry_spent_; }
  [[nodiscard]] sim::SimTime quarantined_until() const { return quarantine_until_; }
  [[nodiscard]] const DegradationPolicy& policy() const { return policy_; }

 private:
  void quarantine(sim::SimTime now);

  DegradationPolicy policy_;
  BackendState state_ = BackendState::kHealthy;
  int consecutive_failures_ = 0;
  sim::Duration backoff_;
  sim::SimTime quarantine_until_;
  sim::Duration retry_spent_{};
  std::uint64_t retries_ = 0;
};

}  // namespace envmon::moneq
