#pragma once
// MonEQ output files.
//
// MonEQ produces one file per node; accelerators on a node are
// "accounted for individually within the file produced for the node"
// (paper §III).  Tag markers are injected when the file is written,
// after the program has completed — which is why tagging costs almost
// nothing at run time.

#include <map>
#include <span>
#include <string>

#include "common/status.hpp"
#include "moneq/sample.hpp"
#include "tsdb/database.hpp"

namespace envmon::moneq {

// Where rendered files go.  Tests and benches use the in-memory target;
// examples write real files.
class OutputTarget {
 public:
  virtual ~OutputTarget() = default;
  virtual Status write(const std::string& filename, const std::string& content) = 0;
};

class MemoryOutput final : public OutputTarget {
 public:
  Status write(const std::string& filename, const std::string& content) override {
    files_[filename] = content;
    return Status::ok();
  }
  [[nodiscard]] const std::map<std::string, std::string>& files() const { return files_; }

 private:
  std::map<std::string, std::string> files_;
};

class DiskOutput final : public OutputTarget {
 public:
  explicit DiskOutput(std::string directory) : directory_(std::move(directory)) {}
  Status write(const std::string& filename, const std::string& content) override;

 private:
  std::string directory_;
};

// Renders samples + tags (+ collection-gap markers, if any) as the
// per-node CSV.  Gap rows use the same sentinel convention as tags:
// backend name in the domain column, #GAP_START/#GAP_END in the quantity
// column, the reason in the value column.
[[nodiscard]] std::string render_node_file(std::span<const Sample> samples,
                                           std::span<const TagMarker> tags,
                                           std::span<const GapMarker> gaps = {});

// Streaming pieces of render_node_file(): the sample section is a strict
// in-order fold over the stream, so a caller that drains samples
// incrementally (the fleet engine's spool mode) can render each batch as
// it goes, release the Sample structs, and still produce a byte-identical
// file — header, then every sample row in order, then the tag and gap
// markers appended post-run.
void append_node_file_header(std::string& out);
void append_sample_rows(std::string& out, std::span<const Sample> samples);
void append_marker_rows(std::string& out, std::span<const TagMarker> tags,
                        std::span<const GapMarker> gaps);

// Conventional file name for a rank's output.
[[nodiscard]] std::string node_file_name(int rank);

// The node's physical location under the BG/Q addressing scheme: ranks
// fill compute cards in order (32 cards per node board, 16 boards per
// midplane, 2 midplanes per rack).
[[nodiscard]] tsdb::Location node_location(int rank);

// Stores a node's sample stream into the environmental database through
// the batch-ingest path, one record per sample at the node's location,
// metrics named "moneq_<domain>".  Mirrors render_node_file, but lands
// the data where the fleet-scale queries are instead of in a CSV.
tsdb::EnvDatabase::BatchResult store_node_samples(tsdb::EnvDatabase& db, int rank,
                                                  std::span<const Sample> samples);

}  // namespace envmon::moneq
