#include "moneq/backend_nvml.hpp"

namespace envmon::moneq {

namespace {

Status from_nvml(nvml::NvmlReturn r, const char* what) {
  if (r == nvml::NvmlReturn::kSuccess) return Status::ok();
  const StatusCode code = r == nvml::NvmlReturn::kNotSupported ? StatusCode::kUnsupported
                          : r == nvml::NvmlReturn::kUninitialized
                              ? StatusCode::kFailedPrecondition
                              : StatusCode::kUnavailable;
  return Status(code, std::string(what) + ": " + nvml::nvml_error_string(r));
}

}  // namespace

Result<std::vector<Sample>> NvmlBackend::collect(sim::SimTime now, sim::CostMeter& meter) {
  const auto cost_before = library_->cost().total();
  std::vector<Sample> samples;

  unsigned milliwatts = 0;
  if (const auto r = library_->device_get_power_usage(handle_, &milliwatts);
      r != nvml::NvmlReturn::kSuccess) {
    meter.charge(library_->cost().total() - cost_before);
    return from_nvml(r, "nvmlDeviceGetPowerUsage");
  }
  samples.push_back(
      {now, label_, Quantity::kPowerWatts, static_cast<double>(milliwatts) / 1000.0});

  unsigned celsius = 0;
  if (library_->device_get_temperature(handle_, nvml::TemperatureSensor::kGpuDie, &celsius) ==
      nvml::NvmlReturn::kSuccess) {
    samples.push_back({now, "die_temp", Quantity::kTemperatureCelsius,
                       static_cast<double>(celsius)});
  }
  nvml::NvmlMemoryInfo mem;
  if (library_->device_get_memory_info(handle_, &mem) == nvml::NvmlReturn::kSuccess) {
    samples.push_back(
        {now, "mem_used", Quantity::kMemoryBytes, static_cast<double>(mem.used_bytes)});
    samples.push_back(
        {now, "mem_free", Quantity::kMemoryBytes, static_cast<double>(mem.free_bytes)});
  }
  unsigned fan = 0;
  if (library_->device_get_fan_speed(handle_, &fan) == nvml::NvmlReturn::kSuccess) {
    samples.push_back({now, "fan", Quantity::kFanPercent, static_cast<double>(fan)});
  }

  meter.charge(library_->cost().total() - cost_before);
  return samples;
}

BackendLimitations NvmlBackend::limitations() const {
  BackendLimitations l;
  l.scope = "entire board including memory (no GPU/memory split)";
  l.access_path = "NVML C API across the PCI bus";
  l.worst_case_staleness = sim::Duration::millis(60);  // sensor update time
  l.accuracy_band = 5.0;
  l.accuracy_note = "+/-5 W reported accuracy; several-second ramp after load steps";
  l.caveats = "power readings only on Kepler-class boards (K20/K40)";
  return l;
}

}  // namespace envmon::moneq
