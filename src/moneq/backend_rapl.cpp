#include "moneq/backend_rapl.hpp"

namespace envmon::moneq {

RaplBackend::RaplBackend(rapl::MsrRaplReader& reader, std::vector<rapl::RaplDomain> domains)
    : reader_(&reader) {
  domains_.reserve(domains.size());
  for (const auto d : domains) domains_.push_back(DomainState{d, std::nullopt, std::nullopt});
}

Result<std::vector<Sample>> RaplBackend::collect(sim::SimTime now, sim::CostMeter& meter) {
  const auto cost_before = reader_->cost().total();
  auto units = reader_->read_units();
  if (!units) {
    meter.charge(reader_->cost().total() - cost_before);
    return units.status();
  }
  std::vector<Sample> samples;
  samples.reserve(domains_.size() * 2);
  for (auto& state : domains_) {
    auto sample = reader_->read_energy(state.domain, now);
    if (!sample) {
      meter.charge(reader_->cost().total() - cost_before);
      return sample.status();
    }
    if (!state.accountant) {
      state.accountant.emplace(units.value().joules_per_unit());
    }
    const Joules delta = state.accountant->advance(sample.value().raw);
    const std::string domain{rapl::to_string(state.domain)};
    samples.push_back(
        {now, domain, Quantity::kEnergyJoules, state.accountant->total().value()});
    if (state.last_t) {
      const double dt = (now - *state.last_t).to_seconds();
      if (dt > 0.0) {
        samples.push_back({now, domain, Quantity::kPowerWatts, delta.value() / dt});
      }
    }
    state.last_t = now;
  }
  meter.charge(reader_->cost().total() - cost_before);
  return samples;
}

BackendLimitations RaplBackend::limitations() const {
  BackendLimitations l;
  l.scope = "socket (no per-core counters; DRAM channels not distinguished)";
  l.access_path = "/dev/cpu/*/msr (or perf_event on Linux >= 3.14)";
  l.worst_case_staleness = sim::Duration::millis(1);  // counter update cadence
  l.accuracy_note = "updates within +/-50,000 cycles; reliable at >= 60 ms sampling";
  l.requires_privilege = true;  // root-only msr device by default
  l.caveats = "32-bit energy counter overfills when sampled less often than ~60 s";
  return l;
}

}  // namespace envmon::moneq
