#pragma once
// Capability-keyed backend construction.
//
// Each vendor backend historically exposed its own constructor shape
// (EMON wants a session, RAPL a reader plus a domain list, NVML a
// library plus an opaque handle, the Phi one of two transports).  Fleet
// assembly — standing up hundreds of identical nodes — wants one
// construction surface instead: name the capability, hand over a config
// holding whichever substrate objects the node owns, and get a Backend
// or a Status explaining what was missing.  The bespoke constructors
// still exist (the backends need them), but callers should come through
// make_backend().

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "moneq/backend.hpp"
#include "nvml/api.hpp"
#include "rapl/registers.hpp"

namespace envmon::bgq {
class EmonSession;
}
namespace envmon::rapl {
class MsrRaplReader;
}
namespace envmon::mic {
class SysMgmtClient;
class MicrasDaemon;
}  // namespace envmon::mic

namespace envmon::moneq {

// One collection capability a node can carry.  Finer-grained than
// PlatformId because the Xeon Phi offers two distinct mechanisms with
// opposite trade-offs (paper Fig 7).
enum class Capability : std::uint8_t {
  kBgqEmon = 0,     // node-board power domains via the EMON API
  kRaplMsr,         // package energy counters via /dev/cpu/*/msr
  kNvml,            // GPU board sensors via NVML
  kMicSysMgmt,      // Phi in-band SysMgmt/SCIF path (perturbs the card)
  kMicDaemon,       // Phi on-card MICRAS daemon path
};
inline constexpr std::size_t kCapabilityCount = 5;

[[nodiscard]] constexpr std::string_view to_string(Capability c) {
  switch (c) {
    case Capability::kBgqEmon: return "bgq_emon";
    case Capability::kRaplMsr: return "rapl_msr";
    case Capability::kNvml: return "nvml";
    case Capability::kMicSysMgmt: return "mic_sysmgmt_api";
    case Capability::kMicDaemon: return "mic_micras_daemon";
  }
  return "?";
}

[[nodiscard]] constexpr PlatformId platform_of(Capability c) {
  switch (c) {
    case Capability::kBgqEmon: return PlatformId::kBgq;
    case Capability::kRaplMsr: return PlatformId::kRapl;
    case Capability::kNvml: return PlatformId::kNvml;
    case Capability::kMicSysMgmt:
    case Capability::kMicDaemon: return PlatformId::kXeonPhi;
  }
  return PlatformId::kBgq;
}

// Substrate a node makes available to its backends.  All pointers are
// non-owning (the vendor sessions belong to the caller, exactly as with
// the bespoke constructors); only the fields for requested capabilities
// need to be set.
struct BackendConfig {
  bgq::EmonSession* emon = nullptr;
  rapl::MsrRaplReader* rapl = nullptr;
  std::vector<rapl::RaplDomain> rapl_domains{rapl::RaplDomain::kPackage,
                                             rapl::RaplDomain::kPp0,
                                             rapl::RaplDomain::kDram};
  nvml::NvmlLibrary* nvml = nullptr;
  nvml::NvmlDeviceHandle nvml_handle{};
  std::string nvml_label = "board";
  mic::SysMgmtClient* mic_client = nullptr;
  mic::MicrasDaemon* mic_daemon = nullptr;
};

// Builds the backend for `capability` from `config`.  Fails with
// kInvalidArgument when the required substrate pointer is null.
[[nodiscard]] Result<std::unique_ptr<Backend>> make_backend(Capability capability,
                                                            const BackendConfig& config);

}  // namespace envmon::moneq
