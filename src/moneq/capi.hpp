#pragma once
// The MonEQ C API — the paper's Listing 1 surface.  DEPRECATED.
//
//   status = MonEQ_Initialize();  // Setup Power
//   /* User code */
//   status = MonEQ_Finalize();    // Finalize Power
//
// Two lines of code on any platform.  The C entry points operate on a
// bound NodeProfiler (per "process"); MonEQ_Bind* plays the role that
// linking against the platform library + MPI rank context plays on real
// hardware.
//
// This is now the v1 surface.  The int status codes drop the failure
// detail (kMonEQErrBackend covers everything from a missing GPU to a
// quarantined daemon), the thread-global binding cannot express a fleet,
// and callers must assemble substrate + profiler by hand.  New code
// should use envmon::fleet (fleet/api.hpp): FleetRunner owns the
// configure → run → report lifecycle and every error is a typed Status.
// These shims stay source-compatible until in-tree callers migrate; see
// DESIGN.md §9 for the per-call mapping.

#include "moneq/profiler.hpp"

namespace envmon::moneq::capi {

#define ENVMON_MONEQ_DEPRECATED \
  [[deprecated("MonEQ v1 C API: use envmon::fleet::FleetRunner (fleet/api.hpp)")]]

// MonEQ status codes (0 = success, negative = failure).
inline constexpr int kMonEQOk = 0;
inline constexpr int kMonEQErrNotBound = -1;
inline constexpr int kMonEQErrState = -2;
inline constexpr int kMonEQErrInvalid = -3;
inline constexpr int kMonEQErrBackend = -4;

// Binds the calling context to a profiler (and optionally the shared
// filesystem + output target used at finalize).  Pass nullptr to unbind.
ENVMON_MONEQ_DEPRECATED
void MonEQ_Bind(NodeProfiler* profiler, const smpi::FileSystemModel* fs = nullptr,
                OutputTarget* output = nullptr);

ENVMON_MONEQ_DEPRECATED [[nodiscard]] int MonEQ_Initialize();
ENVMON_MONEQ_DEPRECATED [[nodiscard]] int MonEQ_Finalize();

// Valid values are validated against the attached hardware; must be
// called between Bind and Initialize.
ENVMON_MONEQ_DEPRECATED [[nodiscard]] int MonEQ_SetPollingInterval(double seconds);

ENVMON_MONEQ_DEPRECATED [[nodiscard]] int MonEQ_StartTag(const char* name);
ENVMON_MONEQ_DEPRECATED [[nodiscard]] int MonEQ_EndTag(const char* name);

// Introspection used by examples to report what happened.
ENVMON_MONEQ_DEPRECATED [[nodiscard]] NodeProfiler* MonEQ_BoundProfiler();

#undef ENVMON_MONEQ_DEPRECATED

}  // namespace envmon::moneq::capi
