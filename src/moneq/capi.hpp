#pragma once
// The MonEQ C API — the paper's Listing 1 surface.
//
//   status = MonEQ_Initialize();  // Setup Power
//   /* User code */
//   status = MonEQ_Finalize();    // Finalize Power
//
// Two lines of code on any platform.  The C entry points operate on a
// bound NodeProfiler (per "process"); MonEQ_Bind* plays the role that
// linking against the platform library + MPI rank context plays on real
// hardware.  Examples use exactly this surface.

#include "moneq/profiler.hpp"

namespace envmon::moneq::capi {

// MonEQ status codes (0 = success, negative = failure).
inline constexpr int kMonEQOk = 0;
inline constexpr int kMonEQErrNotBound = -1;
inline constexpr int kMonEQErrState = -2;
inline constexpr int kMonEQErrInvalid = -3;
inline constexpr int kMonEQErrBackend = -4;

// Binds the calling context to a profiler (and optionally the shared
// filesystem + output target used at finalize).  Pass nullptr to unbind.
void MonEQ_Bind(NodeProfiler* profiler, const smpi::FileSystemModel* fs = nullptr,
                OutputTarget* output = nullptr);

[[nodiscard]] int MonEQ_Initialize();
[[nodiscard]] int MonEQ_Finalize();

// Valid values are validated against the attached hardware; must be
// called between Bind and Initialize.
[[nodiscard]] int MonEQ_SetPollingInterval(double seconds);

[[nodiscard]] int MonEQ_StartTag(const char* name);
[[nodiscard]] int MonEQ_EndTag(const char* name);

// Introspection used by examples to report what happened.
[[nodiscard]] NodeProfiler* MonEQ_BoundProfiler();

}  // namespace envmon::moneq::capi
