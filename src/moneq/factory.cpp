#include "moneq/factory.hpp"

#include "moneq/backend_bgq.hpp"
#include "moneq/backend_mic.hpp"
#include "moneq/backend_nvml.hpp"
#include "moneq/backend_rapl.hpp"

namespace envmon::moneq {

namespace {

Status missing(Capability capability, std::string_view field) {
  return Status::invalid_argument(std::string(to_string(capability)) + ": BackendConfig::" + std::string(field) +
                    " must be set");
}

}  // namespace

Result<std::unique_ptr<Backend>> make_backend(Capability capability,
                                              const BackendConfig& config) {
  switch (capability) {
    case Capability::kBgqEmon:
      if (config.emon == nullptr) return missing(capability, "emon");
      return std::unique_ptr<Backend>(std::make_unique<BgqBackend>(*config.emon));
    case Capability::kRaplMsr:
      if (config.rapl == nullptr) return missing(capability, "rapl");
      if (config.rapl_domains.empty()) {
        return Status::invalid_argument("rapl_msr: rapl_domains must be non-empty");
      }
      return std::unique_ptr<Backend>(
          std::make_unique<RaplBackend>(*config.rapl, config.rapl_domains));
    case Capability::kNvml:
      if (config.nvml == nullptr) return missing(capability, "nvml");
      if (config.nvml_handle.index == SIZE_MAX) return missing(capability, "nvml_handle");
      return std::unique_ptr<Backend>(
          std::make_unique<NvmlBackend>(*config.nvml, config.nvml_handle, config.nvml_label));
    case Capability::kMicSysMgmt:
      if (config.mic_client == nullptr) return missing(capability, "mic_client");
      return std::unique_ptr<Backend>(std::make_unique<MicInbandBackend>(*config.mic_client));
    case Capability::kMicDaemon:
      if (config.mic_daemon == nullptr) return missing(capability, "mic_daemon");
      return std::unique_ptr<Backend>(std::make_unique<MicDaemonBackend>(*config.mic_daemon));
  }
  return Status::invalid_argument("unknown capability");
}

}  // namespace envmon::moneq
