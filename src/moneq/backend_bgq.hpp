#pragma once
// MonEQ backend for Blue Gene/Q via EMON.

#include "bgq/emon.hpp"
#include "moneq/backend.hpp"

namespace envmon::moneq {

class BgqBackend final : public Backend {
 public:
  explicit BgqBackend(bgq::EmonSession& session) : session_(&session) {}

  [[nodiscard]] std::string_view name() const override { return "bgq_emon"; }
  [[nodiscard]] PlatformId platform() const override { return PlatformId::kBgq; }

  // EMON produces a new generation every 560 ms; polling faster only
  // re-reads the same data.
  [[nodiscard]] sim::Duration min_polling_interval() const override {
    return session_->options().generation_period;
  }

  [[nodiscard]] Result<std::vector<Sample>> collect(sim::SimTime now,
                                                    sim::CostMeter& meter) override;

  [[nodiscard]] BackendLimitations limitations() const override;

 private:
  bgq::EmonSession* session_;
};

}  // namespace envmon::moneq
