#pragma once
// The MonEQ profiler.
//
// Lifecycle mirrors the paper's Listing 1:
//
//   MonEQ_Initialize()  — allocates the sample array up front (memory
//                         overhead is a scale-independent constant),
//                         registers the SIGALRM-equivalent periodic
//                         timer at the chosen polling interval;
//   <user code>         — the only runtime overhead is the periodic
//                         collection call into the vendor mechanism;
//   MonEQ_Finalize()    — cancels the timer, gathers, and writes one
//                         file per node through the shared filesystem
//                         (the only phase whose cost scales with nodes,
//                         Table III).
//
// In its default mode the profiler polls at the lowest interval the
// attached backends support; users may set any valid interval.  Tagging
// wraps code regions with markers injected into the output post-run.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "moneq/backend.hpp"
#include "moneq/health.hpp"
#include "moneq/output.hpp"
#include "moneq/sample.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/span.hpp"
#include "sim/cost.hpp"
#include "sim/engine.hpp"
#include "smpi/smpi.hpp"

namespace envmon::moneq {

struct ProfilerOptions {
  // Default: the minimum across attached backends.
  std::optional<sim::Duration> polling_interval;
  // The pre-allocated sample buffer ("allocated to a reasonably large
  // number", §III) — when full, further samples are dropped and counted.
  std::size_t max_samples = 1u << 20;
  // Initialization cost model: set up data structures and register
  // timers, plus a small per-tree-level term for the collective that
  // agrees on start time (fits Table III's 2.7 -> 3.3 ms growth).
  sim::Duration init_base_cost = sim::Duration::micros(2200);
  sim::Duration init_per_level_cost = sim::Duration::micros(100);
  // Estimated bytes per recorded sample in the output file (sizing the
  // finalize write).
  double bytes_per_sample = 34.0;
  // When set, each poll opens a span with one child span per backend
  // query, and dropped samples become ring-buffer events.
  obs::Tracer* tracer = nullptr;
  // Registry receiving the profiler's self-observability series; nullptr
  // means the process-global default registry.  Fleet nodes pass their
  // own partition so hierarchical rollups stay deterministic.
  obs::Registry* registry = nullptr;
  // When set, backend health transitions land on the flight recorder as
  // deterministic "health"/"backend.health" events tagged recorder_node.
  obs::FlightRecorder* recorder = nullptr;
  int recorder_node = -1;
  // Graceful-degradation knobs: bounded retries, quarantine threshold,
  // and backoff shape shared by every attached backend (each backend
  // still tracks its own state).  See moneq/health.hpp.
  DegradationPolicy degradation;
  // Spool mode (the fleet engine sets this): the caller periodically
  // calls release_samples(), which renders buffered samples into the
  // node-file spool and frees the structs, so per-node memory scales
  // with rendered CSV text instead of retained Sample objects — and the
  // buffer is not pre-reserved to max_samples.  The max_samples drop cap
  // still applies to the lifetime total, and render_file() produces
  // bytes identical to the unspooled path.
  bool spool_samples = false;
  // Pre-reserve for the spool (0 = geometric growth).  The fleet engine
  // sizes this from horizon/polling: 100k node spools growing by
  // doubling in lockstep strand every freed half-size block in the
  // allocator, roughly doubling resident memory per node.
  std::size_t spool_reserve_bytes = 0;
};

struct OverheadReport {
  sim::Duration initialize;
  sim::Duration collection;
  sim::Duration finalize;
  std::uint64_t polls = 0;

  [[nodiscard]] sim::Duration total() const { return initialize + collection + finalize; }
  [[nodiscard]] double overhead_fraction(sim::Duration app_runtime) const {
    if (app_runtime.ns() <= 0) return 0.0;
    return static_cast<double>(total().ns()) / static_cast<double>(app_runtime.ns());
  }
};

class NodeProfiler {
 public:
  // `world` scales the init/finalize cost models; `rank` names the
  // output file.  The engine drives the virtual clock.
  NodeProfiler(sim::Engine& engine, const smpi::World& world, int rank,
               ProfilerOptions options = {});

  // Backends are non-owning: the vendor sessions they wrap belong to the
  // caller (you "link with the appropriate libraries").  Must be called
  // before initialize().
  Status add_backend(Backend& backend);

  // Must be called before initialize(); validated against every attached
  // backend's min/max interval.
  Status set_polling_interval(sim::Duration interval);

  Status initialize();
  [[nodiscard]] bool initialized() const { return initialized_; }

  // Tagging (6 lines of code for 3 work loops, per the paper).
  Status start_tag(const std::string& name);
  Status end_tag(const std::string& name);

  // Finalize: stop collection, account the write-out, render the file.
  // `fs` models the shared filesystem (nullptr = free writes); `target`
  // receives the rendered file (nullptr = discard).
  Status finalize(const smpi::FileSystemModel* fs = nullptr, OutputTarget* target = nullptr);

  // The buffered (not yet released) samples.  Without spool mode this is
  // the full history; with it, the tail since the last release_samples().
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  // Lifetime sample count, released or not — what samples().size() was
  // before spool mode existed.
  [[nodiscard]] std::uint64_t total_samples() const {
    return released_samples_ + samples_.size();
  }
  // Renders buffered samples into the node-file spool and clears the
  // buffer (keeping its capacity).  Cheap no-op when nothing is buffered.
  void release_samples();
  // The complete node file: header, spooled + buffered sample rows in
  // collection order, then tag and gap markers.
  [[nodiscard]] std::string render_file() const;
  // Destructive render_file(): in spool mode the spool is moved into the
  // result instead of copied, leaving the profiler without its sample
  // text.  At 100k nodes the non-destructive copy would briefly double
  // the dominant per-node allocation; call this once, at write-out.
  [[nodiscard]] std::string take_file();
  [[nodiscard]] const std::vector<TagMarker>& tags() const { return tags_; }
  [[nodiscard]] std::size_t dropped_samples() const { return dropped_; }
  [[nodiscard]] sim::Duration polling_interval() const { return interval_; }
  [[nodiscard]] OverheadReport overhead() const;

  // The health state machine of the i-th attached backend (attachment
  // order).  Valid after initialize().
  [[nodiscard]] const BackendHealth& backend_health(std::size_t i) const {
    return health_[i];
  }
  // Collection gaps observed so far: one start/end marker pair per
  // contiguous stretch of polls where a backend delivered nothing.
  // Still-open gaps are closed at finalize() time.
  [[nodiscard]] const std::vector<GapMarker>& gaps() const { return gaps_; }
  // Poll ticks where at least one backend failed or was quarantined.
  // (The old collection_errors() flat log is gone: backend_health(i)
  // gives per-backend liveness and failure counts, gaps() gives the
  // coverage holes with reasons.)
  [[nodiscard]] std::uint64_t degraded_polls() const { return degraded_polls_; }

 private:
  void collect_now();
  [[nodiscard]] sim::Duration effective_interval() const;
  // One backend's slice of a poll: attempt + bounded retries, health
  // transition, gap bookkeeping.  Returns whether samples were recorded.
  bool poll_backend(std::size_t i);
  void open_gap(std::size_t i, const std::string& reason);
  void close_gap(std::size_t i);

  // Per-backend self-observability series, labeled backend="<name>".
  // Null handles when obs was disabled at initialize().
  struct BackendMetrics {
    obs::Counter* queries = nullptr;
    obs::Counter* errors = nullptr;
    obs::Histogram* latency_ms = nullptr;
    obs::Gauge* health = nullptr;
    obs::Counter* retries = nullptr;
  };

  sim::Engine* engine_;
  const smpi::World* world_;
  int rank_;
  ProfilerOptions options_;

  std::vector<Backend*> backends_;
  std::vector<BackendMetrics> backend_metrics_;
  obs::Counter* polls_metric_ = nullptr;
  obs::Counter* samples_metric_ = nullptr;
  obs::Counter* dropped_metric_ = nullptr;
  obs::Counter* degraded_polls_metric_ = nullptr;
  obs::Gauge* buffer_hwm_metric_ = nullptr;
  std::vector<Sample> samples_;
  std::string spool_;  // CSV rows of released samples, in order
  std::uint64_t released_samples_ = 0;
  std::vector<TagMarker> tags_;
  std::size_t dropped_ = 0;

  std::vector<BackendHealth> health_;
  std::vector<bool> gap_open_;  // per backend: a GAP_START awaits its end
  std::vector<GapMarker> gaps_;
  std::uint64_t degraded_polls_ = 0;

  bool initialized_ = false;
  bool finalized_ = false;
  sim::Duration interval_{};
  sim::TimerHandle timer_;

  sim::Duration init_cost_{};
  sim::CostMeter collect_cost_;
  sim::Duration finalize_cost_{};
  std::uint64_t polls_ = 0;
};

}  // namespace envmon::moneq
