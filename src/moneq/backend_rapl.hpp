#pragma once
// MonEQ backend for Intel RAPL via the msr driver.
//
// RAPL exposes energy, not power; this backend differences successive
// counter readings (wrap-aware) and reports average power over the
// polling interval — what every RAPL-based tool (PAPI, TAU, MonEQ) does.

#include <array>
#include <optional>

#include "moneq/backend.hpp"
#include "rapl/reader.hpp"

namespace envmon::moneq {

class RaplBackend final : public Backend {
 public:
  RaplBackend(rapl::MsrRaplReader& reader,
              std::vector<rapl::RaplDomain> domains = {rapl::RaplDomain::kPackage,
                                                       rapl::RaplDomain::kPp0,
                                                       rapl::RaplDomain::kDram});

  [[nodiscard]] std::string_view name() const override { return "rapl_msr"; }
  [[nodiscard]] PlatformId platform() const override { return PlatformId::kRapl; }

  // "the RAPL interface [is] relatively accurate for data collection at
  // about 60ms" (paper §II-B).
  [[nodiscard]] sim::Duration min_polling_interval() const override {
    return sim::Duration::millis(60);
  }
  // "a sampling of more than about 60 seconds will result in erroneous
  // data" — the counter overfill limit.
  [[nodiscard]] sim::Duration max_polling_interval() const override {
    return sim::Duration::seconds(60);
  }

  [[nodiscard]] Result<std::vector<Sample>> collect(sim::SimTime now,
                                                    sim::CostMeter& meter) override;

  [[nodiscard]] BackendLimitations limitations() const override;

 private:
  struct DomainState {
    rapl::RaplDomain domain;
    std::optional<rapl::EnergyAccountant> accountant;  // built after units read
    std::optional<sim::SimTime> last_t;
  };

  rapl::MsrRaplReader* reader_;
  std::vector<DomainState> domains_;
};

}  // namespace envmon::moneq
