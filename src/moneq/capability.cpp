#include "moneq/capability.hpp"

namespace envmon::moneq {

std::string_view row_group(SensorRow row) {
  switch (row) {
    case SensorRow::kTotalPower:
    case SensorRow::kTotalVoltage:
    case SensorRow::kTotalCurrent:
    case SensorRow::kPciExpressPower:
    case SensorRow::kMainMemoryPower:
      return "Total Power Consumption (Watts)";
    case SensorRow::kTempDie:
    case SensorRow::kTempMemory:
    case SensorRow::kTempDevice:
    case SensorRow::kTempIntake:
    case SensorRow::kTempExhaust:
      return "Temperature";
    case SensorRow::kMemUsed:
    case SensorRow::kMemFree:
    case SensorRow::kMemSpeed:
    case SensorRow::kMemFrequency:
    case SensorRow::kMemVoltage:
    case SensorRow::kMemClockRate:
      return "Main Memory";
    case SensorRow::kProcVoltage:
    case SensorRow::kProcFrequency:
    case SensorRow::kProcClockRate:
      return "Processor";
    case SensorRow::kFanSpeed:
      return "Fans";
    case SensorRow::kPowerLimit:
      return "Limits";
  }
  return "?";
}

std::string_view row_label(SensorRow row) {
  switch (row) {
    case SensorRow::kTotalPower: return "Total Power Consumption (Watts)";
    case SensorRow::kTotalVoltage: return "Voltage";
    case SensorRow::kTotalCurrent: return "Current";
    case SensorRow::kPciExpressPower: return "PCI Express";
    case SensorRow::kMainMemoryPower: return "Main Memory";
    case SensorRow::kTempDie: return "Die";
    case SensorRow::kTempMemory: return "DDR/GDDR";
    case SensorRow::kTempDevice: return "Device";
    case SensorRow::kTempIntake: return "Intake (Fan-In)";
    case SensorRow::kTempExhaust: return "Exhaust (Fan-Out)";
    case SensorRow::kMemUsed: return "Used";
    case SensorRow::kMemFree: return "Free";
    case SensorRow::kMemSpeed: return "Speed (kT/sec)";
    case SensorRow::kMemFrequency: return "Frequency";
    case SensorRow::kMemVoltage: return "Voltage";
    case SensorRow::kMemClockRate: return "Clock Rate";
    case SensorRow::kProcVoltage: return "Voltage";
    case SensorRow::kProcFrequency: return "Frequency";
    case SensorRow::kProcClockRate: return "Clock Rate";
    case SensorRow::kFanSpeed: return "Speed (In RPM)";
    case SensorRow::kPowerLimit: return "Get/Set Power Limit";
  }
  return "?";
}

Availability availability(PlatformId platform, SensorRow row) {
  using A = Availability;
  using P = PlatformId;
  using R = SensorRow;
  switch (row) {
    case R::kTotalPower:
      // "Just about the only data point which is collectible on all of
      // these platforms is total power consumption" (§IV).
      return A::kYes;
    case R::kTotalVoltage:
    case R::kTotalCurrent:
      // Phi rails and BG/Q domains expose V/I pairs; NVML reports only
      // board watts; RAPL reports only energy counts.
      return (platform == P::kXeonPhi || platform == P::kBgq) ? A::kYes : A::kNo;
    case R::kPciExpressPower:
      // Phi: connector rails; BG/Q: a dedicated domain; NVML: folded
      // into board power; RAPL: outside the socket — not applicable.
      switch (platform) {
        case P::kXeonPhi: return A::kYes;
        case P::kBgq: return A::kYes;
        case P::kNvml: return A::kNo;
        case P::kRapl: return A::kNotApplicable;
      }
      return A::kNo;
    case R::kMainMemoryPower:
      // BG/Q DRAM domain and RAPL DRAM plane; Phi and NVML fold memory
      // into the card total (§IV laments exactly this for NVML).
      return (platform == P::kBgq || platform == P::kRapl) ? A::kYes : A::kNo;
    case R::kTempDie:
      // Phi thermal file and NVML expose die temperature; BG/Q exposes
      // temperature only in the rack-level environmental data (§IV);
      // RAPL has no thermal sensor.
      return (platform == P::kXeonPhi || platform == P::kNvml) ? A::kYes : A::kNo;
    case R::kTempMemory:
      return platform == P::kXeonPhi ? A::kYes : A::kNo;
    case R::kTempDevice:
      return (platform == P::kXeonPhi || platform == P::kNvml) ? A::kYes : A::kNo;
    case R::kTempIntake:
    case R::kTempExhaust:
      // Air path sensors exist on the actively cooled accelerators; the
      // water-cooled BG/Q node and a bare CPU socket have no such thing.
      switch (platform) {
        case P::kXeonPhi: return A::kYes;
        case P::kNvml: return row == R::kTempIntake ? A::kNo : A::kNo;
        case P::kBgq: return A::kNotApplicable;
        case P::kRapl: return A::kNotApplicable;
      }
      return A::kNo;
    case R::kMemUsed:
    case R::kMemFree:
      return (platform == P::kXeonPhi || platform == P::kNvml) ? A::kYes : A::kNo;
    case R::kMemSpeed:
      return platform == P::kXeonPhi ? A::kYes : A::kNo;
    case R::kMemFrequency:
    case R::kMemClockRate:
      return (platform == P::kXeonPhi || platform == P::kNvml) ? A::kYes : A::kNo;
    case R::kMemVoltage:
      return platform == P::kBgq ? A::kYes : A::kNo;
    case R::kProcVoltage:
      return (platform == P::kXeonPhi || platform == P::kBgq) ? A::kYes : A::kNo;
    case R::kProcFrequency:
    case R::kProcClockRate:
      return (platform == P::kXeonPhi || platform == P::kNvml) ? A::kYes : A::kNo;
    case R::kFanSpeed:
      switch (platform) {
        case P::kXeonPhi: return A::kYes;
        case P::kNvml: return A::kYes;
        case P::kBgq: return A::kNotApplicable;   // water cooled
        case P::kRapl: return A::kNotApplicable;  // no fan in a socket
      }
      return A::kNo;
    case R::kPowerLimit:
      // Phi (via MPSS), NVML, and RAPL expose limit get/set; BG/Q does not.
      return platform == P::kBgq ? A::kNo : A::kYes;
  }
  return A::kNo;
}

std::vector<SensorRow> all_sensor_rows() {
  std::vector<SensorRow> rows;
  rows.reserve(kSensorRowCount);
  for (std::size_t i = 0; i < kSensorRowCount; ++i) {
    rows.push_back(static_cast<SensorRow>(i));
  }
  return rows;
}

}  // namespace envmon::moneq
