#pragma once
// The Section IV unification prototype.
//
// "Secondly, unification of available data is of the utmost of
// importance if this data is to be used for comparison of platforms."
// (paper §IV).  UnifiedSampler maps every backend's native domains onto
// one cross-platform schema, so two devices can be compared on the same
// metric — with explicit unavailability (kUnsupported) where Table I has
// no check mark, rather than silently missing data.

#include <map>
#include <optional>

#include "moneq/backend.hpp"
#include "tsdb/database.hpp"

namespace envmon::moneq {

enum class UnifiedMetric : std::uint8_t {
  kTotalPowerWatts,      // available everywhere (the paper's one universal)
  kProcessorPowerWatts,  // cores/SMs plane, where separable
  kMemoryPowerWatts,     // DRAM/GDDR plane, where separable
  kDieTempCelsius,
  kMemoryUsedBytes,
  kFanPercentOrRpm,
};

[[nodiscard]] constexpr const char* to_string(UnifiedMetric m) {
  switch (m) {
    case UnifiedMetric::kTotalPowerWatts: return "total_power_w";
    case UnifiedMetric::kProcessorPowerWatts: return "processor_power_w";
    case UnifiedMetric::kMemoryPowerWatts: return "memory_power_w";
    case UnifiedMetric::kDieTempCelsius: return "die_temp_c";
    case UnifiedMetric::kMemoryUsedBytes: return "memory_used_b";
    case UnifiedMetric::kFanPercentOrRpm: return "fan_speed";
  }
  return "?";
}

class UnifiedSampler {
 public:
  explicit UnifiedSampler(Backend& backend) : backend_(&backend) {}

  // Whether the wrapped platform can serve the metric at all (derived
  // from what its collect() emits — the live equivalent of Table I).
  [[nodiscard]] bool supports(UnifiedMetric metric) const;

  // One unified snapshot.  Metrics the platform cannot provide are
  // absent from the map; a metric that is supported but failed to read
  // fails the whole sample (callers must not mix generations).
  [[nodiscard]] Result<std::map<UnifiedMetric, double>> sample(sim::SimTime now,
                                                               sim::CostMeter& meter);

  [[nodiscard]] Backend& backend() { return *backend_; }

 private:
  Backend* backend_;
};

// Lands one unified snapshot in the environmental database through the
// batch-ingest path: one record per metric at the device's location,
// named by to_string(UnifiedMetric).  This is how cross-platform
// comparisons become fleet-scale queries instead of per-run maps.
tsdb::EnvDatabase::BatchResult record_unified(tsdb::EnvDatabase& db,
                                              const tsdb::Location& device, sim::SimTime t,
                                              const std::map<UnifiedMetric, double>& snapshot);

// Marks a collection gap in the unified schema.  A "collection_gap"
// record with value 1 opens a gap, value 0 closes it — so fleet-scale
// queries can tell "the device read zero watts" from "nothing was
// collected", the same distinction GapMarker carries in the node files.
Status record_unified_gap(tsdb::EnvDatabase& db, const tsdb::Location& device,
                          sim::SimTime t, bool is_start);

}  // namespace envmon::moneq
