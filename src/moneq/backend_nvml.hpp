#pragma once
// MonEQ backend for NVIDIA GPUs via NVML.

#include "moneq/backend.hpp"
#include "nvml/api.hpp"

namespace envmon::moneq {

class NvmlBackend final : public Backend {
 public:
  NvmlBackend(nvml::NvmlLibrary& library, nvml::NvmlDeviceHandle handle,
              std::string device_label = "board")
      : library_(&library), handle_(handle), label_(std::move(device_label)) {}

  [[nodiscard]] std::string_view name() const override { return "nvml"; }
  [[nodiscard]] PlatformId platform() const override { return PlatformId::kNvml; }

  // The board sensor refreshes about every 60 ms (paper §II-C).
  [[nodiscard]] sim::Duration min_polling_interval() const override {
    return sim::Duration::millis(60);
  }

  [[nodiscard]] Result<std::vector<Sample>> collect(sim::SimTime now,
                                                    sim::CostMeter& meter) override;

  [[nodiscard]] BackendLimitations limitations() const override;

 private:
  nvml::NvmlLibrary* library_;
  nvml::NvmlDeviceHandle handle_;
  std::string label_;
};

}  // namespace envmon::moneq
