#pragma once
// The MonEQ backend interface.
//
// "One wishing to profile data with MonEQ simply needs to link with the
// appropriate libraries for the hardware which they are running on"
// (paper §III).  A Backend wraps one vendor mechanism behind a uniform
// collect() call; the profiler composes any number of them (a node with
// a GPU and a Xeon Phi profiles both at once).

#include <memory>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "moneq/capability.hpp"
#include "moneq/sample.hpp"
#include "sim/cost.hpp"
#include "sim/time.hpp"

namespace envmon::moneq {

// Machine-readable statement of a mechanism's limitations — the paper's
// first "looking forward" ask (§IV): "The first and perhaps most
// important is stated limitations of the data and the collection of
// this data.  For many of the devices discussed, the limitations in
// collection had to be deduced from careful experimentation."  Here no
// experimentation is needed: every backend publishes them.
struct BackendLimitations {
  // Finest measurable unit ("node card (32 nodes)", "socket", ...).
  std::string scope;
  // How the data is reached ("EMON API", "/dev/cpu/*/msr", ...).
  std::string access_path;
  // Worst-case age of a returned reading (stale generations, holds).
  sim::Duration worst_case_staleness{};
  // Reported accuracy, as a +/- band in the primary unit, if published.
  double accuracy_band = 0.0;
  std::string accuracy_note;
  // Whether collecting disturbs the quantity being measured (the Phi's
  // in-band path) and whether access needs elevated privilege (msr).
  bool perturbs_measurement = false;
  bool requires_privilege = false;
  // Free-form caveats ("counter overfills past 60 s", ...).
  std::string caveats;
};

class Backend {
 public:
  virtual ~Backend() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual PlatformId platform() const = 0;

  // The lowest polling interval the mechanism supports with reliable
  // data (560 ms EMON generations on BG/Q; ~60 ms sensor updates on
  // RAPL/NVML; ~50 ms register refresh on the Phi).  MonEQ's default
  // mode polls at exactly this value.
  [[nodiscard]] virtual sim::Duration min_polling_interval() const = 0;

  // Longest interval before data degrades; only RAPL has one (counter
  // overfill past ~60 s).  Zero duration means "no limit".
  [[nodiscard]] virtual sim::Duration max_polling_interval() const {
    return sim::Duration{};
  }

  // Collects the latest generation of data.  Collection cost (virtual
  // time stolen from the application) accrues on `meter`.
  [[nodiscard]] virtual Result<std::vector<Sample>> collect(sim::SimTime now,
                                                            sim::CostMeter& meter) = 0;

  // The mechanism's stated limitations (§IV's unification ask).
  [[nodiscard]] virtual BackendLimitations limitations() const = 0;
};

}  // namespace envmon::moneq
