#include "moneq/output.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/strings.hpp"

namespace envmon::moneq {

Status DiskOutput::write(const std::string& filename, const std::string& content) {
  const std::string path = directory_.empty() ? filename : directory_ + "/" + filename;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::unavailable("cannot open " + path + " for writing");
  }
  out << content;
  if (!out) {
    return Status::internal("short write to " + path);
  }
  return Status::ok();
}

std::string render_node_file(std::span<const Sample> samples,
                             std::span<const TagMarker> tags,
                             std::span<const GapMarker> gaps) {
  std::string out;
  append_node_file_header(out);
  append_sample_rows(out, samples);
  append_marker_rows(out, tags, gaps);
  return out;
}

void append_node_file_header(std::string& out) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row("time_s", "domain", "quantity", "unit", "value");
  out += os.str();
}

void append_sample_rows(std::string& out, std::span<const Sample> samples) {
  if (samples.empty()) return;
  std::ostringstream os;
  CsvWriter csv(os);
  for (const auto& s : samples) {
    csv.row(format_double(s.t.to_seconds(), 6), s.domain,
            static_cast<int>(s.quantity), unit_string(s.quantity),
            format_double(s.value, 6));
  }
  out += os.str();
}

void append_marker_rows(std::string& out, std::span<const TagMarker> tags,
                        std::span<const GapMarker> gaps) {
  std::ostringstream os;
  CsvWriter csv(os);
  // Tag markers are appended post-run ("the injection happens after the
  // program has completed").
  for (const auto& tag : tags) {
    csv.row(format_double(tag.t.to_seconds(), 6), tag.name,
            tag.is_start ? "#TAG_START" : "#TAG_END", "", "");
  }
  // Gap markers follow the tags, same sentinel scheme.
  for (const auto& gap : gaps) {
    csv.row(format_double(gap.t.to_seconds(), 6), gap.backend,
            gap.is_start ? "#GAP_START" : "#GAP_END", "",
            gap.is_start ? gap.reason : std::string());
  }
  out += os.str();
}

std::string node_file_name(int rank) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "moneq_node_%05d.csv", rank);
  return buf;
}

tsdb::Location node_location(int rank) {
  const int card = rank % 32;
  const int board = (rank / 32) % 16;
  const int midplane = (rank / (32 * 16)) % 2;
  const int rack = rank / (32 * 16 * 2);
  return tsdb::card_location(rack, midplane, board, card);
}

tsdb::EnvDatabase::BatchResult store_node_samples(tsdb::EnvDatabase& db, int rank,
                                                  std::span<const Sample> samples) {
  const tsdb::Location loc = node_location(rank);
  std::vector<tsdb::Record> batch;
  batch.reserve(samples.size());
  for (const Sample& s : samples) {
    batch.push_back({s.t, loc, "moneq_" + s.domain, s.value});
  }
  return db.insert_batch(batch);
}

}  // namespace envmon::moneq
