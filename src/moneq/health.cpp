#include "moneq/health.hpp"

#include <algorithm>

namespace envmon::moneq {

void BackendHealth::quarantine(sim::SimTime now) {
  state_ = BackendState::kQuarantined;
  quarantine_until_ = now + backoff_;
}

void BackendHealth::on_poll_success(sim::SimTime now) {
  (void)now;
  consecutive_failures_ = 0;
  switch (state_) {
    case BackendState::kHealthy:
      break;
    case BackendState::kDegraded:
      state_ = BackendState::kHealthy;
      break;
    case BackendState::kQuarantined:
      // The recovery probe answered; one more clean poll promotes back
      // to healthy and resets the backoff ladder.
      state_ = BackendState::kRecovered;
      break;
    case BackendState::kRecovered:
      state_ = BackendState::kHealthy;
      backoff_ = policy_.backoff_base;
      break;
  }
}

void BackendHealth::on_poll_failure(sim::SimTime now) {
  ++consecutive_failures_;
  switch (state_) {
    case BackendState::kHealthy:
      state_ = BackendState::kDegraded;
      if (consecutive_failures_ >= policy_.polls_to_quarantine) quarantine(now);
      break;
    case BackendState::kDegraded:
      if (consecutive_failures_ >= policy_.polls_to_quarantine) quarantine(now);
      break;
    case BackendState::kQuarantined: {
      // The recovery probe failed: widen the window and go back to sleep.
      const auto widened = static_cast<std::int64_t>(
          static_cast<double>(backoff_.ns()) * policy_.backoff_factor);
      backoff_ = std::min(sim::Duration::nanos(widened), policy_.backoff_cap);
      quarantine(now);
      break;
    }
    case BackendState::kRecovered:
      state_ = BackendState::kDegraded;
      break;
  }
}

}  // namespace envmon::moneq
