#include "moneq/backend_bgq.hpp"

namespace envmon::moneq {

Result<std::vector<Sample>> BgqBackend::collect(sim::SimTime now, sim::CostMeter& meter) {
  const auto cost_before = session_->cost().total();
  auto reading = session_->read(now);
  meter.charge(session_->cost().total() - cost_before);
  if (!reading) return reading.status();

  std::vector<Sample> samples;
  samples.reserve(3 * bgq::kDomainCount + 1);
  Watts total{0.0};
  for (const auto& d : reading.value().domains) {
    const std::string domain{bgq::to_string(d.domain)};
    samples.push_back({now, domain, Quantity::kPowerWatts, d.power().value()});
    samples.push_back({now, domain, Quantity::kVoltageVolts, d.voltage.value()});
    samples.push_back({now, domain, Quantity::kCurrentAmps, d.current.value()});
    total += d.power();
  }
  // The node-card line of Fig 2: the sum of the seven domains.
  samples.push_back({now, "node_card", Quantity::kPowerWatts, total.value()});
  return samples;
}

BackendLimitations BgqBackend::limitations() const {
  BackendLimitations l;
  l.scope = "node card (32 nodes)";
  l.access_path = "EMON API from compute-node code";
  // A read returns the previous generation; worst case the data is two
  // generation periods old.
  l.worst_case_staleness = 2 * session_->options().generation_period;
  l.accuracy_note = "domains sampled at staggered instants within a generation";
  l.caveats =
      "scope limit is structural ('not possible to overcome in software'); "
      "no temperature below rack-level environmental data";
  return l;
}

}  // namespace envmon::moneq
