#pragma once
// Sample and tag types shared by all MonEQ backends.

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace envmon::moneq {

// What a sampled quantity measures; determines the unit column in the
// output files.
enum class Quantity : std::uint8_t {
  kPowerWatts,
  kEnergyJoules,
  kVoltageVolts,
  kCurrentAmps,
  kTemperatureCelsius,
  kMemoryBytes,
  kFanRpm,
  kFanPercent,
  kClockMhz,
};

[[nodiscard]] constexpr const char* unit_string(Quantity q) {
  switch (q) {
    case Quantity::kPowerWatts: return "W";
    case Quantity::kEnergyJoules: return "J";
    case Quantity::kVoltageVolts: return "V";
    case Quantity::kCurrentAmps: return "A";
    case Quantity::kTemperatureCelsius: return "C";
    case Quantity::kMemoryBytes: return "B";
    case Quantity::kFanRpm: return "RPM";
    case Quantity::kFanPercent: return "%";
    case Quantity::kClockMhz: return "MHz";
  }
  return "?";
}

struct Sample {
  sim::SimTime t;
  // Domain/channel name, e.g. "chip_core", "PKG", "board", "die_temp".
  std::string domain;
  Quantity quantity = Quantity::kPowerWatts;
  double value = 0.0;
};

// Code-region tag markers (paper §III: "sections of code ... wrapped in
// start/end tags which inject special markers in the output files").
struct TagMarker {
  sim::SimTime t;
  std::string name;
  bool is_start = true;
};

// Collection-gap markers: a backend produced no data between a start and
// the matching end marker (it was failing or quarantined).  Written into
// the node file so downstream analysis can distinguish "no sample" from
// "zero watts" — absent markers, a dead backend is indistinguishable
// from an idle device.
struct GapMarker {
  sim::SimTime t;
  std::string backend;  // backend name, e.g. "bgq_emon"
  bool is_start = true;
  std::string reason;   // only meaningful on start markers
};

}  // namespace envmon::moneq
