#pragma once
// Reader for MonEQ node output files — the post-processing side the
// paper alludes to ("inject special markers in the output files for
// later processing").  Downstream analysis loads a node file back into
// samples + tag markers.

#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "moneq/sample.hpp"

namespace envmon::moneq {

struct NodeFileData {
  std::vector<Sample> samples;
  std::vector<TagMarker> tags;
  std::vector<GapMarker> gaps;
};

// Parses the CSV produced by render_node_file().  Rejects files with a
// wrong header or unparseable rows.
[[nodiscard]] Result<NodeFileData> parse_node_file(std::string_view text);

// Convenience: the samples of one domain/quantity as (t, value) pairs.
struct SeriesPoint {
  double t_seconds;
  double value;
};
[[nodiscard]] std::vector<SeriesPoint> extract_series(const NodeFileData& data,
                                                      std::string_view domain,
                                                      Quantity quantity);

// Mean of a series between a tag's start and end markers (first matching
// pair); returns kNotFound if the tag is absent or unbalanced.
[[nodiscard]] Result<double> mean_between_tags(const NodeFileData& data,
                                               std::string_view tag,
                                               std::string_view domain, Quantity quantity);

}  // namespace envmon::moneq
