#include "moneq/csv_reader.hpp"

#include <optional>

#include "common/csv.hpp"
#include "common/strings.hpp"

namespace envmon::moneq {

Result<NodeFileData> parse_node_file(std::string_view text) {
  auto table = parse_csv(text);
  if (!table) return table.status();
  const auto& header = table.value().header;
  if (header.size() < 5 || header[0] != "time_s" || header[1] != "domain") {
    return Status::invalid_argument("not a MonEQ node file (bad header)");
  }

  NodeFileData data;
  for (const auto& row : table.value().rows) {
    if (row.size() < 3) {
      return Status::invalid_argument("truncated row in MonEQ node file");
    }
    double t = 0.0;
    if (!parse_double(row[0], t)) {
      return Status::invalid_argument("bad timestamp: " + row[0]);
    }
    if (row[2] == "#TAG_START" || row[2] == "#TAG_END") {
      data.tags.push_back(
          TagMarker{sim::SimTime::from_seconds(t), row[1], row[2] == "#TAG_START"});
      continue;
    }
    if (row[2] == "#GAP_START" || row[2] == "#GAP_END") {
      data.gaps.push_back(GapMarker{sim::SimTime::from_seconds(t), row[1],
                                    row[2] == "#GAP_START",
                                    row.size() > 4 ? row[4] : std::string()});
      continue;
    }
    if (row.size() < 5) {
      return Status::invalid_argument("truncated sample row");
    }
    unsigned long long quantity_raw = 0;
    double value = 0.0;
    if (!parse_u64(row[2], quantity_raw) || !parse_double(row[4], value)) {
      return Status::invalid_argument("bad sample row fields");
    }
    Sample s;
    s.t = sim::SimTime::from_seconds(t);
    s.domain = row[1];
    s.quantity = static_cast<Quantity>(quantity_raw);
    s.value = value;
    data.samples.push_back(std::move(s));
  }
  return data;
}

std::vector<SeriesPoint> extract_series(const NodeFileData& data, std::string_view domain,
                                        Quantity quantity) {
  std::vector<SeriesPoint> out;
  for (const auto& s : data.samples) {
    if (s.domain == domain && s.quantity == quantity) {
      out.push_back(SeriesPoint{s.t.to_seconds(), s.value});
    }
  }
  return out;
}

Result<double> mean_between_tags(const NodeFileData& data, std::string_view tag,
                                 std::string_view domain, Quantity quantity) {
  std::optional<sim::SimTime> start, end;
  for (const auto& marker : data.tags) {
    if (marker.name != tag) continue;
    if (marker.is_start && !start) start = marker.t;
    if (!marker.is_start && start && !end) end = marker.t;
  }
  if (!start || !end) {
    return Status::not_found("tag not found or unbalanced: " + std::string(tag));
  }
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : data.samples) {
    if (s.domain == domain && s.quantity == quantity && s.t >= *start && s.t <= *end) {
      sum += s.value;
      ++n;
    }
  }
  if (n == 0) {
    return Status::not_found("no samples inside the tagged region");
  }
  return sum / static_cast<double>(n);
}

}  // namespace envmon::moneq
