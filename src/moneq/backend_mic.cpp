#include "moneq/backend_mic.hpp"

namespace envmon::moneq {

Result<std::vector<Sample>> MicInbandBackend::collect(sim::SimTime now,
                                                      sim::CostMeter& meter) {
  const auto cost_before = client_->cost().total();
  auto power = client_->power(now);
  if (!power) {
    meter.charge(client_->cost().total() - cost_before);
    return power.status();
  }
  auto temp = client_->die_temperature(now);
  meter.charge(client_->cost().total() - cost_before);

  std::vector<Sample> samples;
  samples.push_back({now, "card", Quantity::kPowerWatts, power.value().value()});
  if (temp) {
    samples.push_back(
        {now, "die_temp", Quantity::kTemperatureCelsius, temp.value().value()});
  }
  return samples;
}

BackendLimitations MicInbandBackend::limitations() const {
  BackendLimitations l;
  l.scope = "whole card";
  l.access_path = "SysMgmt SCIF interface from the host";
  l.worst_case_staleness = sim::Duration::millis(50);  // card sensor refresh
  l.perturbs_measurement = true;  // queries wake cores: the Fig 7 bias
  l.caveats =
      "each query costs ~14.2 ms and raises card power; 'it's not necessarily "
      "intuitive that the API would have a greater base overhead than the daemon'";
  return l;
}

Result<std::vector<Sample>> MicDaemonBackend::collect(sim::SimTime now,
                                                      sim::CostMeter& meter) {
  auto power_text = daemon_->read_file(mic::kPowerFile, now, &meter);
  if (!power_text) return power_text.status();
  auto power = mic::parse_power_file(power_text.value());
  if (!power) return power.status();

  std::vector<Sample> samples;
  samples.push_back({now, "card", Quantity::kPowerWatts, power.value().total.value()});
  samples.push_back({now, "pcie_rail", Quantity::kPowerWatts, power.value().pcie.value()});
  samples.push_back({now, "aux_2x3", Quantity::kPowerWatts, power.value().c2x3.value()});
  samples.push_back({now, "aux_2x4", Quantity::kPowerWatts, power.value().c2x4.value()});

  if (auto thermal_text = daemon_->read_file(mic::kThermalFile, now, &meter); thermal_text) {
    if (auto thermal = mic::parse_thermal_file(thermal_text.value()); thermal) {
      samples.push_back(
          {now, "die_temp", Quantity::kTemperatureCelsius, thermal.value().die.value()});
      samples.push_back(
          {now, "gddr_temp", Quantity::kTemperatureCelsius, thermal.value().gddr.value()});
      samples.push_back({now, "intake_temp", Quantity::kTemperatureCelsius,
                         thermal.value().intake.value()});
      samples.push_back({now, "exhaust_temp", Quantity::kTemperatureCelsius,
                         thermal.value().exhaust.value()});
    }
  }
  return samples;
}

BackendLimitations MicDaemonBackend::limitations() const {
  BackendLimitations l;
  l.scope = "whole card (connector rails broken out)";
  l.access_path = "MICRAS pseudo-files on the card's virtual filesystem";
  l.worst_case_staleness = sim::Duration::millis(50);
  l.caveats =
      "only reachable from code running on the card, so collection contends "
      "with the application; daemon must be running";
  return l;
}

}  // namespace envmon::moneq
