#include "moneq/unified.hpp"

namespace envmon::moneq {

namespace {

// Maps one native sample to its unified metric, if any.
std::optional<UnifiedMetric> classify(PlatformId platform, const Sample& s) {
  using U = UnifiedMetric;
  switch (platform) {
    case PlatformId::kBgq:
      if (s.quantity != Quantity::kPowerWatts) return std::nullopt;
      if (s.domain == "node_card") return U::kTotalPowerWatts;
      if (s.domain == "chip_core") return U::kProcessorPowerWatts;
      if (s.domain == "dram") return U::kMemoryPowerWatts;
      return std::nullopt;
    case PlatformId::kRapl:
      if (s.quantity != Quantity::kPowerWatts) return std::nullopt;
      if (s.domain == "PKG") return U::kTotalPowerWatts;
      if (s.domain == "PP0") return U::kProcessorPowerWatts;
      if (s.domain == "DRAM") return U::kMemoryPowerWatts;
      return std::nullopt;
    case PlatformId::kNvml:
      if (s.domain == "board" && s.quantity == Quantity::kPowerWatts) {
        return U::kTotalPowerWatts;
      }
      if (s.domain == "die_temp") return U::kDieTempCelsius;
      if (s.domain == "mem_used") return U::kMemoryUsedBytes;
      if (s.domain == "fan") return U::kFanPercentOrRpm;
      return std::nullopt;
    case PlatformId::kXeonPhi:
      if (s.domain == "card" && s.quantity == Quantity::kPowerWatts) {
        return U::kTotalPowerWatts;
      }
      if (s.domain == "die_temp") return U::kDieTempCelsius;
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

bool UnifiedSampler::supports(UnifiedMetric metric) const {
  using U = UnifiedMetric;
  switch (backend_->platform()) {
    case PlatformId::kBgq:
      return metric == U::kTotalPowerWatts || metric == U::kProcessorPowerWatts ||
             metric == U::kMemoryPowerWatts;
    case PlatformId::kRapl:
      return metric == U::kTotalPowerWatts || metric == U::kProcessorPowerWatts ||
             metric == U::kMemoryPowerWatts;
    case PlatformId::kNvml:
      return metric == U::kTotalPowerWatts || metric == U::kDieTempCelsius ||
             metric == U::kMemoryUsedBytes || metric == U::kFanPercentOrRpm;
    case PlatformId::kXeonPhi:
      return metric == U::kTotalPowerWatts || metric == U::kDieTempCelsius;
  }
  return false;
}

Result<std::map<UnifiedMetric, double>> UnifiedSampler::sample(sim::SimTime now,
                                                               sim::CostMeter& meter) {
  auto native = backend_->collect(now, meter);
  if (!native) return native.status();

  std::map<UnifiedMetric, double> out;
  for (const auto& s : native.value()) {
    if (const auto metric = classify(backend_->platform(), s)) {
      out[*metric] = s.value;
    }
  }
  // Total power is the universal datum; a snapshot without it means the
  // mechanism is still warming up (e.g. RAPL's first differencing read).
  if (!out.contains(UnifiedMetric::kTotalPowerWatts)) {
    return Status::unavailable("no total-power reading in this generation (warm-up)");
  }
  return out;
}

tsdb::EnvDatabase::BatchResult record_unified(tsdb::EnvDatabase& db,
                                              const tsdb::Location& device, sim::SimTime t,
                                              const std::map<UnifiedMetric, double>& snapshot) {
  std::vector<tsdb::Record> batch;
  batch.reserve(snapshot.size());
  for (const auto& [metric, value] : snapshot) {
    batch.push_back({t, device, to_string(metric), value});
  }
  return db.insert_batch(batch);
}

Status record_unified_gap(tsdb::EnvDatabase& db, const tsdb::Location& device,
                          sim::SimTime t, bool is_start) {
  return db.insert({t, device, "collection_gap", is_start ? 1.0 : 0.0});
}

}  // namespace envmon::moneq
