#pragma once
// The sensor-availability matrix of Table I.
//
// "COMPARISON OF ENVIRONMENTAL DATA AVAILABLE FOR THE INTEL XEON PHI,
// NVIDIA GPUS, BLUE GENE/Q, AND RAPL."  Each cell is available / not
// available / not applicable (e.g. fan sensors on the water-cooled BG/Q,
// PCI Express power for a mechanism scoped to a socket).

#include <array>
#include <string_view>
#include <vector>

namespace envmon::moneq {

enum class PlatformId : std::uint8_t { kXeonPhi = 0, kNvml, kBgq, kRapl };
inline constexpr std::size_t kPlatformCount = 4;

[[nodiscard]] constexpr std::string_view to_string(PlatformId p) {
  switch (p) {
    case PlatformId::kXeonPhi: return "Xeon Phi";
    case PlatformId::kNvml: return "NVML";
    case PlatformId::kBgq: return "Blue Gene/Q";
    case PlatformId::kRapl: return "RAPL";
  }
  return "?";
}

// The rows of Table I, grouped as in the paper.
enum class SensorRow : std::uint8_t {
  // Total Power Consumption (Watts)
  kTotalPower = 0,
  kTotalVoltage,
  kTotalCurrent,
  kPciExpressPower,
  kMainMemoryPower,
  // Temperature
  kTempDie,
  kTempMemory,  // DDR/GDDR
  kTempDevice,
  kTempIntake,   // fan-in
  kTempExhaust,  // fan-out
  // Main Memory
  kMemUsed,
  kMemFree,
  kMemSpeed,      // kT/sec
  kMemFrequency,
  kMemVoltage,
  kMemClockRate,
  // Processor
  kProcVoltage,
  kProcFrequency,
  kProcClockRate,
  // Fans
  kFanSpeed,
  // Limits
  kPowerLimit,  // get/set
};
inline constexpr std::size_t kSensorRowCount = 21;

[[nodiscard]] std::string_view row_group(SensorRow row);
[[nodiscard]] std::string_view row_label(SensorRow row);

enum class Availability : std::uint8_t { kNo = 0, kYes, kNotApplicable };

[[nodiscard]] constexpr std::string_view to_string(Availability a) {
  switch (a) {
    case Availability::kYes: return "yes";
    case Availability::kNo: return "no";
    case Availability::kNotApplicable: return "N/A";
  }
  return "?";
}

// The matrix, reconstructed from Table I and the §II prose.
[[nodiscard]] Availability availability(PlatformId platform, SensorRow row);

// All rows in table order (for the Table I bench renderer).
[[nodiscard]] std::vector<SensorRow> all_sensor_rows();

}  // namespace envmon::moneq
