#include "sim/engine.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace envmon::sim {

void TimerHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool TimerHandle::active() const { return cancelled_ && !*cancelled_; }

Engine::Engine() {
  if (obs::enabled()) {
    auto& registry = obs::default_registry();
    events_metric_ = &registry.counter("envmon_sim_events_total",
                                       "Events dispatched by the discrete-event engine");
    queue_depth_metric_ =
        &registry.gauge("envmon_sim_queue_depth", "Pending events in the engine queue");
  }
}

void Engine::push_event(Event ev) {
  queue_.push(std::move(ev));
  note_queue_depth();
}

void Engine::note_queue_depth() {
  if (queue_depth_metric_ != nullptr) {
    queue_depth_metric_->set(static_cast<double>(queue_.size()));
  }
}

TimerHandle Engine::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    throw std::logic_error("Engine::schedule_at: event scheduled in the past");
  }
  auto cancelled = std::make_shared<bool>(false);
  push_event(Event{when, next_seq_++, std::move(fn), cancelled});
  return TimerHandle{std::move(cancelled)};
}

TimerHandle Engine::schedule_after(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

TimerHandle Engine::schedule_periodic(Duration interval, std::function<void()> fn) {
  if (interval.ns() <= 0) {
    throw std::invalid_argument("Engine::schedule_periodic: interval must be positive");
  }
  auto cancelled = std::make_shared<bool>(false);
  // The repeating closure reschedules itself while not cancelled.  It
  // holds only a weak self-reference — the queued events own the strong
  // ones — so the closure is freed once no rescheduling event remains.
  auto repeat = std::make_shared<std::function<void(SimTime)>>();
  std::weak_ptr<std::function<void(SimTime)>> weak_repeat = repeat;
  *repeat = [this, interval, fn = std::move(fn), cancelled, weak_repeat](SimTime fire_at) {
    if (*cancelled) return;
    fn();
    if (*cancelled) return;  // fn may cancel its own timer
    const SimTime next = fire_at + interval;
    auto self = weak_repeat.lock();  // the running event keeps us alive
    auto chain = Event{next, next_seq_++, [self, next] { (*self)(next); }, cancelled};
    push_event(std::move(chain));
  };
  const SimTime first = now_ + interval;
  push_event(Event{first, next_seq_++, [repeat, first] { (*repeat)(first); }, cancelled});
  return TimerHandle{std::move(cancelled)};
}

void Engine::pop_and_run() {
  Event ev = queue_.top();
  queue_.pop();
  note_queue_depth();
  now_ = ev.when;
  if (ev.cancelled && *ev.cancelled) return;
  ++events_executed_;
  if (events_metric_ != nullptr) events_metric_->inc();
  ev.fn();
}

void Engine::run_until(SimTime until) {
  if (until < now_) {
    throw std::logic_error("Engine::run_until: horizon is in the past");
  }
  while (!queue_.empty() && queue_.top().when <= until) {
    pop_and_run();
  }
  now_ = until;
}

void Engine::run() {
  while (!queue_.empty()) {
    pop_and_run();
  }
}

}  // namespace envmon::sim
