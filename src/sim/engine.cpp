#include "sim/engine.hpp"

#include <stdexcept>
#include <utility>

namespace envmon::sim {

void TimerHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool TimerHandle::active() const { return cancelled_ && !*cancelled_; }

TimerHandle Engine::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    throw std::logic_error("Engine::schedule_at: event scheduled in the past");
  }
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), cancelled});
  return TimerHandle{std::move(cancelled)};
}

TimerHandle Engine::schedule_after(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

TimerHandle Engine::schedule_periodic(Duration interval, std::function<void()> fn) {
  if (interval.ns() <= 0) {
    throw std::invalid_argument("Engine::schedule_periodic: interval must be positive");
  }
  auto cancelled = std::make_shared<bool>(false);
  // The repeating closure reschedules itself while not cancelled.
  auto repeat = std::make_shared<std::function<void(SimTime)>>();
  *repeat = [this, interval, fn = std::move(fn), cancelled, repeat](SimTime fire_at) {
    if (*cancelled) return;
    fn();
    if (*cancelled) return;  // fn may cancel its own timer
    const SimTime next = fire_at + interval;
    auto chain = Event{next, next_seq_++, [repeat, next] { (*repeat)(next); }, cancelled};
    queue_.push(std::move(chain));
  };
  const SimTime first = now_ + interval;
  queue_.push(Event{first, next_seq_++, [repeat, first] { (*repeat)(first); }, cancelled});
  return TimerHandle{std::move(cancelled)};
}

void Engine::pop_and_run() {
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  if (ev.cancelled && *ev.cancelled) return;
  ++events_executed_;
  ev.fn();
}

void Engine::run_until(SimTime until) {
  if (until < now_) {
    throw std::logic_error("Engine::run_until: horizon is in the past");
  }
  while (!queue_.empty() && queue_.top().when <= until) {
    pop_and_run();
  }
  now_ = until;
}

void Engine::run() {
  while (!queue_.empty()) {
    pop_and_run();
  }
}

}  // namespace envmon::sim
