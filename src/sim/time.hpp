#pragma once
// Virtual time for the discrete-event simulation.
//
// Integer nanoseconds since simulation start.  Nanoseconds cover the full
// dynamic range the paper needs in one 64-bit integer: MSR reads of 0.03 ms
// at the small end, BG/Q environmental-database polling intervals of up to
// 1800 s at the large end (~292 years of range).

#include <cstdint>
#include <ostream>

#include "common/units.hpp"

namespace envmon::sim {

class Duration {
 public:
  constexpr Duration() = default;
  [[nodiscard]] static constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
  [[nodiscard]] static constexpr Duration micros(std::int64_t us) { return Duration{us * 1'000}; }
  [[nodiscard]] static constexpr Duration millis(std::int64_t ms) {
    return Duration{ms * 1'000'000};
  }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t s) {
    return Duration{s * 1'000'000'000};
  }
  [[nodiscard]] static constexpr Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9)};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr Seconds as_unit() const { return Seconds{to_seconds()}; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns_ + b.ns_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns_ - b.ns_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.ns_ * k}; }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return a * k; }
  friend constexpr std::int64_t operator/(Duration a, Duration b) { return a.ns_ / b.ns_; }
  constexpr Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  constexpr explicit Duration(std::int64_t n) : ns_(n) {}
  std::int64_t ns_ = 0;
};

class SimTime {
 public:
  constexpr SimTime() = default;
  [[nodiscard]] static constexpr SimTime zero() { return {}; }
  [[nodiscard]] static constexpr SimTime from_ns(std::int64_t n) { return SimTime{n}; }
  [[nodiscard]] static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9)};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }

  friend constexpr SimTime operator+(SimTime t, Duration d) {
    return SimTime{t.ns_ + d.ns()};
  }
  friend constexpr SimTime operator+(Duration d, SimTime t) { return t + d; }
  friend constexpr SimTime operator-(SimTime t, Duration d) {
    return SimTime{t.ns_ - d.ns()};
  }
  friend constexpr Duration operator-(SimTime a, SimTime b) {
    return Duration::nanos(a.ns_ - b.ns_);
  }
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

 private:
  constexpr explicit SimTime(std::int64_t n) : ns_(n) {}
  std::int64_t ns_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.to_seconds() << " s";
}
inline std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << "t=" << t.to_seconds() << " s";
}

}  // namespace envmon::sim
