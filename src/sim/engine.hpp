#pragma once
// The discrete-event engine: a virtual clock plus an event queue.
//
// All vendor mechanisms in this reproduction are modeled against this
// clock: RAPL energy-status registers update on ~1 ms events, the BG/Q
// environmental monitor polls on 60-1800 s events, MonEQ's SIGALRM-driven
// sampler is a periodic timer.  Events at equal timestamps run in
// insertion order (stable), which keeps runs deterministic.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/log.hpp"
#include "sim/time.hpp"

namespace envmon::obs {
class Counter;
class Gauge;
}  // namespace envmon::obs

namespace envmon::sim {

class Engine;

// Cancellable handle for a scheduled or periodic event.
//
// Cancellation is deferred, not immediate: cancel() marks the event, but
// the event stays in the queue and is discarded when its timestamp is
// reached — the clock still advances to that time, and the discarded
// event counts as neither executed nor dispatched (events_executed() is
// unaffected).  Cancelling a periodic timer also stops all future
// repetitions.  cancel() is idempotent and safe to call after the engine
// has drained or been destroyed.
//
// active() reports "not yet cancelled", not "still scheduled": it stays
// true after a one-shot event has fired, and is false only for
// default-constructed or cancelled handles.
class TimerHandle {
 public:
  TimerHandle() = default;
  void cancel();
  [[nodiscard]] bool active() const;

 private:
  friend class Engine;
  explicit TimerHandle(std::shared_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

class Engine {
 public:
  // Registers the engine's self-observability series (events dispatched,
  // queue depth) on obs::default_registry() unless obs is disabled.
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  // One-shot events.
  TimerHandle schedule_at(SimTime when, std::function<void()> fn);
  TimerHandle schedule_after(Duration delay, std::function<void()> fn);

  // Periodic timer; first fires at now + interval.  This is the simulation
  // stand-in for the SIGALRM delivery MonEQ registers for (paper §III).
  TimerHandle schedule_periodic(Duration interval, std::function<void()> fn);

  // Runs events until the queue is empty or the horizon is reached; the
  // clock ends at exactly `until` even if no event lands there.
  void run_until(SimTime until);

  // Runs until the queue drains completely.
  void run();

  // Advances the clock by `d`, dispatching every event that falls inside
  // the window along the way.  Equivalent to run_until(now() + d).
  void advance(Duration d) { run_until(now_ + d); }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-breaker for stable ordering
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void pop_and_run();
  void push_event(Event ev);
  void note_queue_depth();

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;

  // Metric handles; null when obs was disabled at construction.
  obs::Counter* events_metric_ = nullptr;
  obs::Gauge* queue_depth_metric_ = nullptr;
};

// Installs the engine as the logger's virtual-time source for the
// current scope, so ENVMON_LOG lines carry `t=<sim seconds>` stamps.
class ScopedLogClock {
 public:
  explicit ScopedLogClock(const Engine& engine) {
    set_log_time_source([&engine] { return engine.now().to_seconds(); });
  }
  ~ScopedLogClock() { set_log_time_source(nullptr); }
  ScopedLogClock(const ScopedLogClock&) = delete;
  ScopedLogClock& operator=(const ScopedLogClock&) = delete;
};

}  // namespace envmon::sim
