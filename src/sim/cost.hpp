#pragma once
// Collection-cost accounting.
//
// The paper's headline comparison includes the per-query cost of each
// mechanism (EMON 1.10 ms, MSR 0.03 ms, NVML 1.3 ms, SCIF API 14.2 ms,
// MICRAS daemon 0.04 ms) and the resulting overhead percentage against
// application runtime.  A CostMeter accumulates virtual time charged to
// the *application* by monitoring activity so the harness can report
// exactly those numbers.

#include <cstdint>

#include "sim/time.hpp"

namespace envmon::sim {

class CostMeter {
 public:
  void charge(Duration d) {
    total_ += d;
    ++queries_;
  }

  [[nodiscard]] Duration total() const { return total_; }
  [[nodiscard]] std::uint64_t queries() const { return queries_; }
  [[nodiscard]] Duration mean_per_query() const {
    return queries_ == 0 ? Duration{} : Duration::nanos(total_.ns() / static_cast<std::int64_t>(queries_));
  }

  // Overhead as a fraction of the given application runtime.
  [[nodiscard]] double overhead_fraction(Duration app_runtime) const {
    if (app_runtime.ns() <= 0) return 0.0;
    return static_cast<double>(total_.ns()) / static_cast<double>(app_runtime.ns());
  }

  void reset() { *this = CostMeter{}; }

 private:
  Duration total_;
  std::uint64_t queries_ = 0;
};

}  // namespace envmon::sim
