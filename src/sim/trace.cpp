#include "sim/trace.hpp"

namespace envmon::sim {

void TraceSink::record(std::string_view name, SimTime t, double value) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(std::string(name), std::vector<TracePoint>{}).first;
  }
  it->second.push_back(TracePoint{t, value});
}

bool TraceSink::has_series(std::string_view name) const {
  return series_.find(name) != series_.end();
}

std::span<const TracePoint> TraceSink::series(std::string_view name) const {
  const auto it = series_.find(name);
  if (it == series_.end()) return {};
  return it->second;
}

std::vector<std::string> TraceSink::series_names() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, _] : series_) names.push_back(name);
  return names;
}

std::size_t TraceSink::total_points() const {
  std::size_t n = 0;
  for (const auto& [_, pts] : series_) n += pts.size();
  return n;
}

std::vector<double> TraceSink::values(std::string_view name) const {
  std::vector<double> out;
  for (const auto& p : series(name)) out.push_back(p.value);
  return out;
}

void TraceSink::clear() { series_.clear(); }

}  // namespace envmon::sim
