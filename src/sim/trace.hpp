#pragma once
// Trace recording: timestamped (series, value) samples.
//
// Every figure in the paper is a trace of some sensor over time; the bench
// harness records into a TraceSink and the analysis module renders it.

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace envmon::sim {

struct TracePoint {
  SimTime t;
  double value;
};

class TraceSink {
 public:
  void record(std::string_view series, SimTime t, double value);

  [[nodiscard]] bool has_series(std::string_view series) const;
  [[nodiscard]] std::span<const TracePoint> series(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> series_names() const;
  [[nodiscard]] std::size_t total_points() const;

  // Values only, in time order (appends are already time-ordered per series).
  [[nodiscard]] std::vector<double> values(std::string_view series) const;

  void clear();

 private:
  std::map<std::string, std::vector<TracePoint>, std::less<>> series_;
};

}  // namespace envmon::sim
