#include "smpi/smpi.hpp"

#include <cmath>

namespace envmon::smpi {

World::World(int size, CollectiveCosts costs) : size_(size), costs_(costs) {
  if (size <= 0) throw std::invalid_argument("World: size must be positive");
  if (costs_.bandwidth_bytes_per_sec <= 0.0) {
    throw std::invalid_argument("World: bandwidth must be positive");
  }
}

int World::tree_depth() const {
  int depth = 0;
  for (int n = size_ - 1; n > 0; n >>= 1) ++depth;
  return depth;
}

sim::Duration World::barrier_cost() const {
  return 2 * tree_depth() * costs_.per_hop;  // up-sweep + down-sweep
}

sim::Duration World::reduce_cost(Bytes payload) const {
  const double transfer_s = payload.value() / costs_.bandwidth_bytes_per_sec;
  return tree_depth() * (costs_.per_hop + sim::Duration::from_seconds(transfer_s));
}

sim::Duration World::gather_cost(Bytes per_rank_payload) const {
  // Rank 0 ultimately receives size * payload bytes; the tree overlaps
  // transfers, so the root's ingest dominates.
  const double total_bytes = per_rank_payload.value() * static_cast<double>(size_);
  const double transfer_s = total_bytes / costs_.bandwidth_bytes_per_sec;
  return tree_depth() * costs_.per_hop + sim::Duration::from_seconds(transfer_s);
}

void World::for_each_rank(const std::function<void(int)>& fn) const {
  for (int r = 0; r < size_; ++r) fn(r);
}

FileSystemModel::FileSystemModel(FileSystemOptions options) : options_(options) {
  if (options_.concurrent_capacity <= 0) {
    throw std::invalid_argument("FileSystemModel: capacity must be positive");
  }
  if (options_.stream_bandwidth_bytes_per_sec <= 0.0) {
    throw std::invalid_argument("FileSystemModel: bandwidth must be positive");
  }
}

sim::Duration FileSystemModel::time_to_write(int n_files, Bytes per_file_bytes) const {
  if (n_files <= 0) return sim::Duration{};
  const int waves =
      (n_files + options_.concurrent_capacity - 1) / options_.concurrent_capacity;
  double wave_seconds = 0.0;
  double factor = 1.0;
  for (int w = 0; w < waves; ++w) {
    wave_seconds += options_.wave_cost.to_seconds() * factor;
    factor *= options_.wave_contention_factor;
  }
  const double metadata_s =
      options_.per_file_metadata.to_seconds() * static_cast<double>(n_files);
  const double stream_s = per_file_bytes.value() / options_.stream_bandwidth_bytes_per_sec;
  return sim::Duration::from_seconds(wave_seconds + metadata_s + stream_s);
}

}  // namespace envmon::smpi
