#pragma once
// smpi: a simulated MPI facade.
//
// MonEQ's public API is MPI-shaped (paper Listing 1: MPI_Init,
// MPI_Comm_size/rank, MonEQ_Initialize, user code, MonEQ_Finalize,
// MPI_Finalize).  Real MPI is not part of this reproduction's substrate;
// ranks here are actors that share the discrete-event virtual clock, and
// collectives are *cost models* (log-tree latency + payload/bandwidth)
// rather than message exchanges.  That is sufficient — and honest — for
// everything the paper measures: MonEQ's initialization, collection, and
// finalization times as a function of node count (Table III).

#include <cstdint>
#include <functional>
#include <stdexcept>

#include "common/units.hpp"
#include "sim/time.hpp"

namespace envmon::smpi {

struct CollectiveCosts {
  // Per tree level of a barrier/reduction (network hop + software).
  sim::Duration per_hop = sim::Duration::micros(3);
  // Point-to-point payload bandwidth.
  double bandwidth_bytes_per_sec = 1.8e9;
};

class World {
 public:
  explicit World(int size, CollectiveCosts costs = {});

  [[nodiscard]] int size() const { return size_; }

  // Latency of a full barrier (log2 tree, up and down).
  [[nodiscard]] sim::Duration barrier_cost() const;

  // Reduce/gather of `payload` bytes per rank to rank 0.
  [[nodiscard]] sim::Duration reduce_cost(Bytes payload) const;
  [[nodiscard]] sim::Duration gather_cost(Bytes per_rank_payload) const;

  // Convenience for per-rank setup loops in examples.
  void for_each_rank(const std::function<void(int rank)>& fn) const;

 private:
  [[nodiscard]] int tree_depth() const;

  int size_;
  CollectiveCosts costs_;
};

// The shared parallel filesystem MonEQ's finalize writes into (GPFS on
// Mira).  Writing one file per node is metadata-bound: up to
// `concurrent_capacity` creates proceed in one "wave"; beyond that the
// metadata servers serialize additional waves, each slower than the last
// (lock contention) — which reproduces Table III's jump from 512 to
// 1024 nodes while 32 -> 512 stays nearly flat.
struct FileSystemOptions {
  int concurrent_capacity = 512;
  sim::Duration wave_cost = sim::Duration::micros(146'500);  // create+sync
  double wave_contention_factor = 1.25;
  sim::Duration per_file_metadata = sim::Duration::micros(13);
  double stream_bandwidth_bytes_per_sec = 5.0e8;  // per-file write stream
};

class FileSystemModel {
 public:
  explicit FileSystemModel(FileSystemOptions options = {});

  // Time for `n_files` ranks to each create and write one file of
  // `per_file_bytes`, concurrently, measured at the slowest rank.
  [[nodiscard]] sim::Duration time_to_write(int n_files, Bytes per_file_bytes) const;

  [[nodiscard]] const FileSystemOptions& options() const { return options_; }

 private:
  FileSystemOptions options_;
};

}  // namespace envmon::smpi
