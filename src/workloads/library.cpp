#include "workloads/library.hpp"

#include <algorithm>
#include <stdexcept>

namespace envmon::workloads {

using power::ProfileBuilder;
using power::Rail;

UtilizationProfile mmps(const MmpsOptions& options) {
  if (options.sweep_segments <= 0) {
    throw std::invalid_argument("mmps: sweep_segments must be positive");
  }
  ProfileBuilder b;
  const Duration seg = Duration::nanos(options.total.ns() / options.sweep_segments);
  for (int i = 0; i < options.sweep_segments; ++i) {
    // Small message sizes stress injection rate (cores + network equally);
    // larger sizes shift the load toward links and optics.
    const double f = options.sweep_segments == 1
                         ? 0.0
                         : static_cast<double>(i) / (options.sweep_segments - 1);
    b.phase(seg, "mmps_sweep",
            {{Rail::kCpuCore, 0.72 - 0.10 * f},
             {Rail::kDram, 0.35},
             {Rail::kNetwork, 0.80 + 0.15 * f},
             {Rail::kLink, 0.75 + 0.20 * f},
             {Rail::kOptics, 0.70 + 0.25 * f},
             {Rail::kPcie, 0.20},
             {Rail::kSram, 0.50}});
  }
  return std::move(b).build();
}

UtilizationProfile gaussian_elimination(const GaussianEliminationOptions& options) {
  const Duration cycle = options.block + options.dip + options.spike;
  if (cycle.ns() <= 0 || options.total < cycle) {
    throw std::invalid_argument("gaussian_elimination: total shorter than one cycle");
  }
  const auto cycles = static_cast<std::size_t>(options.total / cycle);
  const double dip_cpu = std::max(0.0, 0.95 * (1.0 - options.dip_depth));

  ProfileBuilder b;
  // Elimination block: compute-bound with significant memory traffic.
  b.phase(options.block, "eliminate", {{Rail::kCpuCore, 0.95}, {Rail::kDram, 0.45}});
  // Pivot selection / row swap: the rhythmic ~5 W dip of Fig 3.
  b.phase(options.dip, "pivot", {{Rail::kCpuCore, dip_cpu}, {Rail::kDram, 0.65}});
  // Tiny spike between drops (paper: "tiny spikes in power at regular
  // intervals", cause unknown — we model them as a short burst where the
  // next block's pages are touched).
  b.phase(options.spike, "prefetch", {{Rail::kCpuCore, 0.99}, {Rail::kDram, 0.70}});
  if (cycles > 1) b.repeat_last(3, cycles - 1);
  return std::move(b).build();
}

UtilizationProfile gpu_noop(const GpuNoopOptions& options) {
  // The kernel does nothing, but launching it keeps the SMs clocked up at
  // a light duty cycle; memory stays almost untouched.
  ProfileBuilder b;
  b.phase(options.total, "noop_kernels",
          {{Rail::kCpuCore, 0.18}, {Rail::kDram, 0.05}, {Rail::kPcie, 0.05}});
  return std::move(b).build();
}

UtilizationProfile gpu_vector_add(const GpuVectorAddOptions& options) {
  ProfileBuilder b;
  // Host generates the vectors: the board is idle but kept awake by the
  // process holding the context (slight clock-up, like the noop case).
  b.phase(options.host_generation, "host_datagen",
          {{Rail::kCpuCore, 0.15}, {Rail::kPcie, 0.02}});
  b.phase(options.transfer, "h2d_transfer",
          {{Rail::kCpuCore, 0.25}, {Rail::kDram, 0.40}, {Rail::kPcie, 0.95}});
  // Vector add is bandwidth-bound: GDDR near peak, SMs high.
  b.phase(options.compute, "vecadd_compute",
          {{Rail::kCpuCore, 0.85}, {Rail::kDram, 0.90}, {Rail::kPcie, 0.10}});
  return std::move(b).build();
}

UtilizationProfile offload_gauss(const OffloadGaussOptions& options) {
  ProfileBuilder b;
  b.phase(options.host_generation, "host_datagen", {{Rail::kCpuCore, 0.03}});
  b.phase(options.transfer, "h2d_transfer", {{Rail::kCpuCore, 0.10}, {Rail::kPcie, 0.90}});
  b.phase(options.compute, "ge_compute",
          {{Rail::kCpuCore, 0.92}, {Rail::kDram, 0.55}, {Rail::kPcie, 0.05}});
  return std::move(b).build();
}

UtilizationProfile noop_busyloop(Duration total) {
  ProfileBuilder b;
  b.phase(total, "noop", {{Rail::kCpuCore, 0.10}});
  return std::move(b).build();
}

UtilizationProfile idle(Duration total) {
  ProfileBuilder b;
  b.phase(total, "idle", {});
  return std::move(b).build();
}

UtilizationProfile dgemm(const DgemmOptions& options) {
  ProfileBuilder b;
  b.phase(options.total, "dgemm",
          {{Rail::kCpuCore, options.cpu_util}, {Rail::kDram, options.dram_util}});
  return std::move(b).build();
}

UtilizationProfile stream(const StreamOptions& options) {
  ProfileBuilder b;
  b.phase(options.total, "stream", {{Rail::kCpuCore, 0.45}, {Rail::kDram, 0.95}});
  return std::move(b).build();
}

}  // namespace envmon::workloads
