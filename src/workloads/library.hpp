#pragma once
// The workloads the paper runs on each platform, as utilization profiles.
//
//   * MMPS (million messages per second) — the ALCF MPI messaging-rate
//     benchmark driven on BG/Q (Figs 1-2): interconnect-dominated.
//   * Gaussian elimination — the CPU workload behind Fig 3 (RAPL) and
//     Fig 8 (128 Xeon Phis on Stampede): compute blocks separated by
//     rhythmic pivot/synchronization dips of a few watts with small
//     communication spikes in between.
//   * GPU NOOP — Fig 4: a do-nothing kernel launched repeatedly.
//   * GPU vector add — Fig 5: ~10 s host-side data generation, transfer,
//     then a long device compute plateau.
//   * no-op / idle — the Fig 7 Xeon Phi baseline.
//
// Durations are parameters so the bench harness can match the paper's
// figure time spans exactly while tests use short versions.

#include "power/profile.hpp"
#include "sim/time.hpp"

namespace envmon::workloads {

using power::UtilizationProfile;
using sim::Duration;

struct MmpsOptions {
  Duration total = Duration::seconds(1500);  // Fig 2 spans ~1500 s
  // Messaging-rate tests sweep message sizes; each sweep segment shifts
  // load slightly between the network and the cores.
  int sweep_segments = 6;
};
[[nodiscard]] UtilizationProfile mmps(const MmpsOptions& options = {});

struct GaussianEliminationOptions {
  Duration total = Duration::seconds(50);      // Fig 3 active span
  Duration block = Duration::from_seconds(3.0);   // compute block length
  Duration dip = Duration::from_seconds(0.5);     // pivot/sync dip length
  Duration spike = Duration::from_seconds(0.15);  // comm spike length
  // Fraction of CPU utilization lost during a dip (the ~5 W drop of a
  // ~45 W package shows up as ~0.12 of dynamic range).
  double dip_depth = 0.14;
};
[[nodiscard]] UtilizationProfile gaussian_elimination(
    const GaussianEliminationOptions& options = {});

struct GpuNoopOptions {
  Duration total = Duration::from_seconds(12.5);  // Fig 4 span
};
[[nodiscard]] UtilizationProfile gpu_noop(const GpuNoopOptions& options = {});

struct GpuVectorAddOptions {
  Duration host_generation = Duration::seconds(10);  // host busy, GPU idle
  Duration transfer = Duration::from_seconds(2.0);   // PCIe burst
  Duration compute = Duration::seconds(88);          // device compute
};
[[nodiscard]] UtilizationProfile gpu_vector_add(const GpuVectorAddOptions& options = {});

// Distributed Gaussian elimination as offloaded to accelerator cards on
// Stampede (Fig 8): ~100 s host-side data generation with the cards
// near-idle, then transfer and a compute plateau.
struct OffloadGaussOptions {
  Duration host_generation = Duration::seconds(100);
  Duration transfer = Duration::from_seconds(5.0);
  Duration compute = Duration::seconds(145);
};
[[nodiscard]] UtilizationProfile offload_gauss(const OffloadGaussOptions& options = {});

// Card-resident no-op busy loop (Fig 7): constant light load.
[[nodiscard]] UtilizationProfile noop_busyloop(Duration total);

// True idle for a given span.
[[nodiscard]] UtilizationProfile idle(Duration total);

// Dense matrix multiply: steady high CPU+DRAM (used by extra examples
// and the ablation benches).
struct DgemmOptions {
  Duration total = Duration::seconds(60);
  double cpu_util = 0.97;
  double dram_util = 0.55;
};
[[nodiscard]] UtilizationProfile dgemm(const DgemmOptions& options = {});

// STREAM-like: memory-bound, moderate CPU.
struct StreamOptions {
  Duration total = Duration::seconds(30);
};
[[nodiscard]] UtilizationProfile stream(const StreamOptions& options = {});

}  // namespace envmon::workloads
