#include "rapl/reader.hpp"

#include <algorithm>

namespace envmon::rapl {

Joules EnergyAccountant::advance(std::uint32_t raw) {
  Joules delta{};
  if (last_) {
    std::uint64_t diff;
    if (raw >= *last_) {
      diff = raw - *last_;
    } else {
      diff = (1ULL << 32) - *last_ + raw;  // assume exactly one wrap
      ++wraps_;
    }
    delta = Joules{static_cast<double>(diff) * unit_};
    total_ += delta;
  }
  last_ = raw;
  return delta;
}

MsrRaplReader::MsrRaplReader(CpuPackage& package, Credentials creds, int logical_cpu,
                             MsrReadCost cost)
    : package_(&package), device_(package.make_device(logical_cpu, cost)), creds_(creds) {}

void MsrRaplReader::allow_unprivileged_read() {
  device_.set_mode(DeviceMode{true, true, true});
}

Result<PowerUnits> MsrRaplReader::read_units() {
  if (units_) return *units_;
  auto raw = device_.pread(kMsrRaplPowerUnit, creds_, &meter_);
  if (!raw) return raw.status();
  units_ = PowerUnits::decode(raw.value());
  return *units_;
}

Result<EnergySample> MsrRaplReader::read_energy(RaplDomain domain, sim::SimTime now) {
  auto units = read_units();
  if (!units) return units.status();
  // One scheduled fault per energy-status pread; stalls are paid on the
  // same meter as the read itself.
  const fault::Outcome fo = fault_hook_.intercept();
  if (fo.extra_latency.ns() > 0) meter_.charge(fo.extra_latency);
  if (!fo.ok()) return fo.status;
  package_->refresh(now);  // hardware updates continuously; materialize
  auto raw = device_.pread(energy_status_msr(domain), creds_, &meter_);
  if (!raw) return raw.status();
  auto counter = static_cast<std::uint32_t>(raw.value());
  if (fo.corrupted) {
    const double bad = fo.corrupt_value(static_cast<double>(counter));
    counter = static_cast<std::uint32_t>(std::clamp(bad, 0.0, 4294967295.0));
  }
  return EnergySample{
      Joules{static_cast<double>(counter) * units.value().joules_per_unit()},
      counter,
      now,
  };
}

Result<PerfRaplReader> PerfRaplReader::open(CpuPackage& package, KernelVersion kernel,
                                            sim::Duration per_read_cost) {
  if (!kernel.has_rapl_perf()) {
    return Status::unavailable("perf_event RAPL support requires Linux >= 3.14 (running " +
                      std::to_string(kernel.major) + "." + std::to_string(kernel.minor) + ")");
  }
  return PerfRaplReader(package, per_read_cost);
}

Result<Joules> PerfRaplReader::read_energy(RaplDomain domain, sim::SimTime now) {
  meter_.charge(per_read_);
  // The kernel side reads the MSR on our behalf and extends to 64 bits;
  // the exact analytic integral at the latest update instant models that.
  package_->refresh(now);
  return package_->domain_energy_since_start(domain, now);
}

}  // namespace envmon::rapl
