#pragma once
// The CPU package model behind the RAPL interface.
//
// "The circuitry of the chip is capable of providing estimated energy
// consumption based on hardware counters" (paper §II-B).  We model each
// RAPL domain as an energy integrator over the package's true power:
//
//   * counters hold 32 bits of energy in units of 1/2^ESU J (default
//     15.26 uJ) and silently wrap — the "overfill" that corrupts
//     measurements when sampled less often than ~every minute;
//   * the visible counter value refreshes on an internal ~1 ms cadence
//     with +/-50,000-cycle jitter (few updates deviate beyond 100,000
//     cycles — the accuracy analysis the paper cites);
//   * scope is the whole socket: PKG, PP0 (cores), PP1 (client uncore
//     device), DRAM.  No per-core counters exist, which is the paper's
//     "biggest limitation" of RAPL.
//
// Registers are materialized lazily: the emulated msr device calls
// refresh() before serving a read, computing the exact analytic energy
// integral at the most recent internal update instant.

#include <cstdint>

#include "common/rng.hpp"
#include "power/component.hpp"
#include "rapl/msr.hpp"
#include "rapl/registers.hpp"
#include "sim/engine.hpp"

namespace envmon::rapl {

struct PackageConfig {
  // Core plane (PP0), driven by cpu_core utilization.
  power::RailModel cores{Watts{1.6}, Watts{42.0}, Volts{1.0}};
  // Client uncore plane (PP1) — zero on server parts (Table II's note
  // that PP1 is "not useful in server platforms").
  power::RailModel pp1{Watts{0.0}, Watts{0.0}, Volts{1.0}};
  // Non-PP0/PP1 package logic (LLC, memory controller, IO), driven by
  // DRAM-side utilization.
  power::RailModel uncore{Watts{1.9}, Watts{6.5}, Volts{1.0}};
  // DRAM DIMMs, driven by dram utilization.
  power::RailModel dram{Watts{1.3}, Watts{9.5}, Volts{1.35}};

  PowerUnits units{};
  double frequency_ghz = 2.6;  // converts the cycle jitter to time
  sim::Duration counter_update_period = sim::Duration::micros(976);
  // Update-instant jitter in cycles (uniform in +/- this).
  double update_jitter_cycles = 50'000.0;
  std::uint64_t seed = 0xc0ffee;
};

class CpuPackage {
 public:
  CpuPackage(sim::Engine& engine, PackageConfig config = {});

  // Attach a workload (per-rail utilization) starting at `start`.
  void run_workload(const power::UtilizationProfile* profile, sim::SimTime start) {
    model_.run_workload(profile, start);
  }

  // --- ground truth (what a perfect external meter would see) ---
  [[nodiscard]] Watts domain_power(RaplDomain d, sim::SimTime t) const;
  [[nodiscard]] Joules domain_energy_since_start(RaplDomain d, sim::SimTime t) const;

  // --- the emulated hardware surface ---
  // Creates the /dev/cpu/<cpu>/msr device for one logical CPU.  All
  // logical CPUs resolve to this package's registers.
  [[nodiscard]] MsrDevice make_device(int logical_cpu, MsrReadCost cost = {});

  // Materializes the registers as of the last internal update <= now.
  void refresh(sim::SimTime now);

  // Raw 32-bit counter view after refresh (test hook).
  [[nodiscard]] std::uint32_t raw_counter(RaplDomain d) const;

  // Power-limit plumbing (get/set, Table I's "Get/Set Power Limit" row).
  void set_power_limit(const PowerLimit& limit);
  [[nodiscard]] PowerLimit power_limit() const;

  [[nodiscard]] const PackageConfig& config() const { return config_; }
  [[nodiscard]] MsrFile& msr_file() { return msrs_; }

 private:
  // The update instant grid: instant k is k*period + jitter(k).
  [[nodiscard]] sim::SimTime latest_update_instant(sim::SimTime now) const;

  sim::Engine* engine_;
  PackageConfig config_;
  power::DevicePowerModel model_;
  MsrFile msrs_;
};

}  // namespace envmon::rapl
