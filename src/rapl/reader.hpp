#pragma once
// Userspace RAPL readers.
//
// Two access paths exist (paper §II-B):
//   * the msr driver: read the energy-status MSRs directly from
//     /dev/cpu/*/msr (root-only; ~0.03 ms per query; 32-bit counters
//     that wrap — "overfill" — when sampled too rarely);
//   * perf_event: kernel >= 3.14 exposes RAPL through perf; the kernel
//     accumulates into 64 bits (no wraparound for the client) but each
//     query crosses the kernel boundary, so per-query cost is higher —
//     the paper expected this but had no new-enough kernel to measure.
//
// MsrRaplReader implements the first, PerfRaplReader the second, both
// over the same CpuPackage model.

#include <array>
#include <optional>

#include "common/status.hpp"
#include "fault/injector.hpp"
#include "rapl/package.hpp"
#include "sim/cost.hpp"

namespace envmon::rapl {

// Energy sample decoded to joules, plus the raw counter for diagnostics.
struct EnergySample {
  Joules energy{};          // decoded from the (possibly wrapped) counter
  std::uint32_t raw = 0;
  sim::SimTime at;
};

// Wrap-aware accumulation: turns successive 32-bit counter readings into
// a monotonically increasing energy total.  If more than one wrap occurs
// between readings the result silently undercounts — exactly the failure
// mode the paper warns about for sampling intervals beyond ~60 s; the
// ablation bench quantifies it.
class EnergyAccountant {
 public:
  explicit EnergyAccountant(double joules_per_unit) : unit_(joules_per_unit) {}

  // Feeds a raw counter reading; returns energy since the previous one.
  Joules advance(std::uint32_t raw);

  [[nodiscard]] Joules total() const { return total_; }
  [[nodiscard]] std::uint64_t wraps_assumed() const { return wraps_; }

 private:
  double unit_;
  std::optional<std::uint32_t> last_;
  Joules total_{};
  std::uint64_t wraps_ = 0;
};

class MsrRaplReader {
 public:
  // Opens the device for one logical CPU.  Fails kPermissionDenied at
  // read time when the credentials cannot pass the device mode.
  MsrRaplReader(CpuPackage& package, Credentials creds, int logical_cpu = 0,
                MsrReadCost cost = {});

  // Relax the device node for non-root read access (what an operator
  // does with chmod so tools like MonEQ can run unprivileged).
  void allow_unprivileged_read();

  [[nodiscard]] Result<EnergySample> read_energy(RaplDomain domain, sim::SimTime now);
  [[nodiscard]] Result<PowerUnits> read_units();

  /// Routes every energy-status MSR read through `injector` (site
  /// fault::sites::kRaplMsr by default).  Injected failures surface as
  /// the pread's status; corruption lands on the raw 32-bit counter —
  /// exactly where a flaky msr driver would bite.
  void attach_fault_hook(fault::Injector& injector,
                         std::string site = std::string(fault::sites::kRaplMsr)) {
    fault_hook_.attach(injector, std::move(site));
  }

  [[nodiscard]] const sim::CostMeter& cost() const { return meter_; }

 private:
  CpuPackage* package_;
  MsrDevice device_;
  Credentials creds_;
  std::optional<PowerUnits> units_;
  sim::CostMeter meter_;
  fault::Hook fault_hook_;
};

struct KernelVersion {
  int major = 3;
  int minor = 13;  // one short of RAPL perf support, like the paper's testbed

  [[nodiscard]] bool has_rapl_perf() const {
    return major > 3 || (major == 3 && minor >= 14);
  }
};

class PerfRaplReader {
 public:
  // Fails kUnavailable when the kernel predates 3.14.
  static Result<PerfRaplReader> open(CpuPackage& package, KernelVersion kernel,
                                     sim::Duration per_read_cost = sim::Duration::micros(250));

  // perf accumulates in the kernel: 64-bit, no client-visible wrap.
  [[nodiscard]] Result<Joules> read_energy(RaplDomain domain, sim::SimTime now);

  [[nodiscard]] const sim::CostMeter& cost() const { return meter_; }

 private:
  PerfRaplReader(CpuPackage& package, sim::Duration per_read_cost)
      : package_(&package), per_read_(per_read_cost) {}

  CpuPackage* package_;
  sim::Duration per_read_;
  sim::CostMeter meter_;
};

}  // namespace envmon::rapl
