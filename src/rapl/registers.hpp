#pragma once
// Intel RAPL model-specific register addresses and bitfield layouts
// (Intel SDM vol. 3B, ch. 14.9 — the paper's reference [10]).

#include <cstdint>

namespace envmon::rapl {

// MSR addresses (Sandy Bridge and later).
inline constexpr std::uint32_t kMsrRaplPowerUnit = 0x606;
inline constexpr std::uint32_t kMsrPkgPowerLimit = 0x610;
inline constexpr std::uint32_t kMsrPkgEnergyStatus = 0x611;
inline constexpr std::uint32_t kMsrPkgPowerInfo = 0x614;
inline constexpr std::uint32_t kMsrDramEnergyStatus = 0x619;
inline constexpr std::uint32_t kMsrPp0EnergyStatus = 0x639;
inline constexpr std::uint32_t kMsrPp1EnergyStatus = 0x641;

// MSR_RAPL_POWER_UNIT fields: power unit = 1/2^PU W (bits 3:0), energy
// unit = 1/2^ESU J (bits 12:8), time unit = 1/2^TU s (bits 19:16).
struct PowerUnits {
  unsigned power_exp = 3;    // 1/8 W
  unsigned energy_exp = 16;  // 15.26 uJ — the granularity the paper cites
  unsigned time_exp = 10;    // ~0.98 ms

  [[nodiscard]] double watts_per_unit() const { return 1.0 / static_cast<double>(1u << power_exp); }
  [[nodiscard]] double joules_per_unit() const {
    return 1.0 / static_cast<double>(1u << energy_exp);
  }
  [[nodiscard]] double seconds_per_unit() const {
    return 1.0 / static_cast<double>(1u << time_exp);
  }

  [[nodiscard]] std::uint64_t encode() const {
    return (static_cast<std::uint64_t>(power_exp) & 0xf) |
           ((static_cast<std::uint64_t>(energy_exp) & 0x1f) << 8) |
           ((static_cast<std::uint64_t>(time_exp) & 0xf) << 16);
  }
  [[nodiscard]] static PowerUnits decode(std::uint64_t raw) {
    PowerUnits u;
    u.power_exp = static_cast<unsigned>(raw & 0xf);
    u.energy_exp = static_cast<unsigned>((raw >> 8) & 0x1f);
    u.time_exp = static_cast<unsigned>((raw >> 16) & 0xf);
    return u;
  }
};

// The RAPL domains of Table II.
enum class RaplDomain : std::uint8_t {
  kPackage = 0,  // PKG: whole CPU package
  kPp0,          // Power Plane 0: processor cores
  kPp1,          // Power Plane 1: uncore device (integrated GPU)
  kDram,         // sum of the socket's DIMM power
};

inline constexpr std::size_t kRaplDomainCount = 4;

[[nodiscard]] constexpr const char* to_string(RaplDomain d) {
  switch (d) {
    case RaplDomain::kPackage: return "PKG";
    case RaplDomain::kPp0: return "PP0";
    case RaplDomain::kPp1: return "PP1";
    case RaplDomain::kDram: return "DRAM";
  }
  return "?";
}

[[nodiscard]] constexpr const char* description(RaplDomain d) {
  switch (d) {
    case RaplDomain::kPackage: return "Whole CPU package.";
    case RaplDomain::kPp0: return "Processor cores.";
    case RaplDomain::kPp1:
      return "The power plane of a specific device in the uncore (such as a "
             "integrated GPU--not useful in server platforms).";
    case RaplDomain::kDram: return "Sum of socket's DIMM power(s).";
  }
  return "?";
}

[[nodiscard]] constexpr std::uint32_t energy_status_msr(RaplDomain d) {
  switch (d) {
    case RaplDomain::kPackage: return kMsrPkgEnergyStatus;
    case RaplDomain::kPp0: return kMsrPp0EnergyStatus;
    case RaplDomain::kPp1: return kMsrPp1EnergyStatus;
    case RaplDomain::kDram: return kMsrDramEnergyStatus;
  }
  return 0;
}

// MSR_PKG_POWER_LIMIT: two power limits with enable bits and time
// windows.  We model limit #1 only (bits 14:0 power, 15 enable, 23:17
// time window).
struct PowerLimit {
  double watts = 0.0;
  double window_seconds = 0.0;
  bool enabled = false;
};

[[nodiscard]] std::uint64_t encode_power_limit(const PowerLimit& limit, const PowerUnits& units);
[[nodiscard]] PowerLimit decode_power_limit(std::uint64_t raw, const PowerUnits& units);

}  // namespace envmon::rapl
