#include "rapl/package.hpp"

#include <cmath>

namespace envmon::rapl {

namespace {

// Deterministic per-instant jitter: hash the instant index.
std::int64_t jitter_ns(std::uint64_t k, double jitter_cycles, double freq_ghz,
                       std::uint64_t seed) {
  SplitMix64 sm(seed ^ (k * 0x9e3779b97f4a7c15ULL));
  const double u = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;  // [0,1)
  const double cycles = (2.0 * u - 1.0) * jitter_cycles;
  return static_cast<std::int64_t>(cycles / freq_ghz);  // cycles / (GHz) = ns
}

}  // namespace

CpuPackage::CpuPackage(sim::Engine& engine, PackageConfig config)
    : engine_(&engine), config_(config) {
  using power::Rail;
  model_.set_rail(Rail::kCpuCore, config_.cores);
  model_.set_rail(Rail::kUncore, config_.pp1);
  model_.set_rail(Rail::kBoard, config_.uncore);
  model_.set_rail(Rail::kDram, config_.dram);

  msrs_.write(kMsrRaplPowerUnit, config_.units.encode());
  msrs_.write(kMsrPkgPowerLimit, 0);
  msrs_.write(kMsrPkgEnergyStatus, 0);
  msrs_.write(kMsrPp0EnergyStatus, 0);
  msrs_.write(kMsrPp1EnergyStatus, 0);
  msrs_.write(kMsrDramEnergyStatus, 0);
  // MSR_PKG_POWER_INFO: thermal spec power in power units (bits 14:0).
  const double tdp =
      config_.cores.idle.value() + config_.cores.dynamic.value() +
      config_.uncore.idle.value() + config_.uncore.dynamic.value();
  msrs_.write(kMsrPkgPowerInfo,
              static_cast<std::uint64_t>(tdp / config_.units.watts_per_unit()));
}

Watts CpuPackage::domain_power(RaplDomain d, sim::SimTime t) const {
  using power::Rail;
  switch (d) {
    case RaplDomain::kPp0:
      return model_.rail_power_at(Rail::kCpuCore, t);
    case RaplDomain::kPp1:
      return model_.rail_power_at(Rail::kUncore, t);
    case RaplDomain::kDram:
      return model_.rail_power_at(Rail::kDram, t);
    case RaplDomain::kPackage: {
      // Uncore logic activity tracks memory traffic.
      const double dram_util = model_.util_at(Rail::kDram, t);
      const Watts uncore = config_.uncore.at_util(dram_util);
      return model_.rail_power_at(Rail::kCpuCore, t) +
             model_.rail_power_at(Rail::kUncore, t) + uncore;
    }
  }
  return Watts{0.0};
}

Joules CpuPackage::domain_energy_since_start(RaplDomain d, sim::SimTime t) const {
  using power::Rail;
  const sim::SimTime t0 = sim::SimTime::zero();
  switch (d) {
    case RaplDomain::kPp0:
      return model_.rail_energy_between(Rail::kCpuCore, t0, t);
    case RaplDomain::kPp1:
      return model_.rail_energy_between(Rail::kUncore, t0, t);
    case RaplDomain::kDram: {
      // DRAM rail model lives on the dram rail but with package-config
      // parameters; rail_energy_between already uses them.
      return model_.rail_energy_between(Rail::kDram, t0, t);
    }
    case RaplDomain::kPackage: {
      const double span = (t - t0).to_seconds();
      if (span <= 0.0) return Joules{0.0};
      double mean_dram = 0.0;
      if (model_.has_workload()) {
        mean_dram = model_.workload()->mean_util(Rail::kDram, t0 - model_.workload_start(),
                                                 t - model_.workload_start());
      }
      const Joules uncore = config_.uncore.at_util(mean_dram) * Seconds{span};
      return model_.rail_energy_between(Rail::kCpuCore, t0, t) +
             model_.rail_energy_between(Rail::kUncore, t0, t) + uncore;
    }
  }
  return Joules{0.0};
}

sim::SimTime CpuPackage::latest_update_instant(sim::SimTime now) const {
  const std::int64_t period = config_.counter_update_period.ns();
  std::int64_t k = now.ns() / period;
  // The jittered instant for index k may land after `now`; step back.
  while (k > 0) {
    const std::int64_t instant =
        k * period + jitter_ns(static_cast<std::uint64_t>(k), config_.update_jitter_cycles,
                               config_.frequency_ghz, config_.seed);
    if (instant <= now.ns()) return sim::SimTime::from_ns(instant);
    --k;
  }
  return sim::SimTime::zero();
}

void CpuPackage::refresh(sim::SimTime now) {
  const sim::SimTime effective = latest_update_instant(now);
  const double unit = config_.units.joules_per_unit();
  for (const RaplDomain d :
       {RaplDomain::kPackage, RaplDomain::kPp0, RaplDomain::kPp1, RaplDomain::kDram}) {
    const double joules = domain_energy_since_start(d, effective).value();
    const auto units_total = static_cast<std::uint64_t>(joules / unit);
    msrs_.write(energy_status_msr(d), units_total & 0xffffffffULL);  // 32-bit wrap
  }
}

std::uint32_t CpuPackage::raw_counter(RaplDomain d) const {
  const auto r = msrs_.read(energy_status_msr(d));
  return static_cast<std::uint32_t>(r.value_or(0));
}

MsrDevice CpuPackage::make_device(int logical_cpu, MsrReadCost cost) {
  return MsrDevice("/dev/cpu/" + std::to_string(logical_cpu) + "/msr", msrs_, cost);
}

void CpuPackage::set_power_limit(const PowerLimit& limit) {
  msrs_.write(kMsrPkgPowerLimit, encode_power_limit(limit, config_.units));
}

PowerLimit CpuPackage::power_limit() const {
  return decode_power_limit(msrs_.read(kMsrPkgPowerLimit).value_or(0), config_.units);
}

}  // namespace envmon::rapl
