#pragma once
// The Linux MSR driver emulation.
//
// Paper §II-B: "the only way to get around this problem is to use the
// Linux MSR driver which exports MSR access to userspace.  Once the MSR
// driver is built and loaded, it creates a character device for each
// logical processor under /dev/cpu/*/msr. ... The MSR driver must be
// given the correct read-only, root-only access before it is accessible
// by any process running on the system."
//
// We model: a register file per package, a character device per logical
// CPU routed to its package, POSIX-ish permission bits on the device
// node, and a per-read virtual-time cost (the paper's measured 0.03 ms).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "sim/cost.hpp"
#include "sim/time.hpp"

namespace envmon::rapl {

// A bank of 64-bit model-specific registers.
class MsrFile {
 public:
  [[nodiscard]] Result<std::uint64_t> read(std::uint32_t reg) const;
  void write(std::uint32_t reg, std::uint64_t value);
  [[nodiscard]] bool has(std::uint32_t reg) const { return regs_.contains(reg); }

 private:
  std::map<std::uint32_t, std::uint64_t> regs_;
};

struct Credentials {
  bool root = false;
  int uid = 1000;
};

// Per-device permission bits (only the read bits matter here).
struct DeviceMode {
  bool owner_read = true;   // root
  bool group_read = false;
  bool other_read = false;
};

struct MsrReadCost {
  // The paper's measured direct-MSR access time.
  sim::Duration per_read = sim::Duration::nanos(30'000);  // 0.03 ms
};

// The /dev/cpu/N/msr node for one logical CPU.  All logical CPUs of a
// package share the package's register bank (RAPL counters are
// package-scoped — the paper's "biggest limitation ... that of scope").
class MsrDevice {
 public:
  MsrDevice(std::string path, MsrFile& file, MsrReadCost cost)
      : path_(std::move(path)), file_(&file), cost_(cost) {}

  // chmod 0444-style relaxation ("read-only, root-only access" by
  // default; operators may widen it as the paper describes).
  void set_mode(DeviceMode mode) { mode_ = mode; }

  // pread(fd, &val, 8, reg) equivalent.  Checks permissions first.
  [[nodiscard]] Result<std::uint64_t> pread(std::uint32_t reg, const Credentials& creds,
                                            sim::CostMeter* meter = nullptr) const;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  MsrFile* file_;
  MsrReadCost cost_;
  DeviceMode mode_{};
};

}  // namespace envmon::rapl
