#include "rapl/msr.hpp"

#include "rapl/registers.hpp"

#include <algorithm>
#include <cmath>

namespace envmon::rapl {

Result<std::uint64_t> MsrFile::read(std::uint32_t reg) const {
  const auto it = regs_.find(reg);
  if (it == regs_.end()) {
    return Status::not_found("no such MSR 0x" + std::to_string(reg));
  }
  return it->second;
}

void MsrFile::write(std::uint32_t reg, std::uint64_t value) { regs_[reg] = value; }

Result<std::uint64_t> MsrDevice::pread(std::uint32_t reg, const Credentials& creds,
                                       sim::CostMeter* meter) const {
  const bool allowed = (creds.root && mode_.owner_read) || mode_.other_read ||
                       (creds.uid == 0 && mode_.owner_read);
  if (!allowed) {
    return Status::permission_denied(path_ + ": read requires root (or a relaxed device mode)");
  }
  if (meter != nullptr) meter->charge(cost_.per_read);
  return file_->read(reg);
}

std::uint64_t encode_power_limit(const PowerLimit& limit, const PowerUnits& units) {
  const auto power_raw = static_cast<std::uint64_t>(
      std::clamp(std::lround(limit.watts / units.watts_per_unit()), 0L, 0x7fffL));
  // Time window encoding: SDM uses Y + Z/4 mantissa form; we keep the
  // simpler pure-exponent form (Z=0), which the decoder mirrors.
  std::uint64_t window_raw = 0;
  if (limit.window_seconds > 0.0) {
    const double ratio = limit.window_seconds / units.seconds_per_unit();
    window_raw = static_cast<std::uint64_t>(
                     std::clamp(std::lround(std::log2(std::max(ratio, 1.0))), 0L, 0x1fL))
                 << 17;
  }
  return power_raw | (limit.enabled ? (1ULL << 15) : 0) | window_raw;
}

PowerLimit decode_power_limit(std::uint64_t raw, const PowerUnits& units) {
  PowerLimit limit;
  limit.watts = static_cast<double>(raw & 0x7fff) * units.watts_per_unit();
  limit.enabled = (raw & (1ULL << 15)) != 0;
  const auto window_exp = static_cast<unsigned>((raw >> 17) & 0x1f);
  limit.window_seconds = static_cast<double>(1ULL << window_exp) * units.seconds_per_unit();
  return limit;
}

}  // namespace envmon::rapl
